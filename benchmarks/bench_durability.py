"""Durability benchmark: buffered+compacted ingest vs a naive insert loop.

Measures sustained-write throughput into a *durable* index two ways,
both ending with every write committed to disk:

* **naive** — one key at a time into the index (``insert`` loop), each
  batch persisted immediately as its own run file.  No buffering, no
  compaction: runs pile up and every key pays the per-key insert path.
* **buffered** — the real durability stack: ``IndexService`` with a
  :class:`~repro.store.DurableStore` attached, writes buffered in the
  memtable, flushed to sorted runs at the flush threshold, folded into
  the index through ``bulk_insert_many`` by the background merge, and
  tiered-compacted as runs accumulate.  The timed region ends with
  ``snapshot()`` so the clock includes making everything durable and
  fully compacted.

Both paths must agree: the benchmark reopens the buffered store with
``IndexService.open_snapshot`` and asserts bit-parity between the
recovered index, the live service, and the naive twin over the full
key range before any number is reported.

Results merge into ``BENCH_perf.json`` under the ``"durability"`` key
(other sections are preserved).  CI floors
``durability.buffered.keys_per_s`` via ``check_regression.py
--floors-only`` — a conservative minimum, not a race.

Run directly::

    python benchmarks/bench_durability.py            # full (50k base, 40k writes)
    python benchmarks/bench_durability.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.indexes import INDEX_FAMILIES  # noqa: E402
from repro.serving import IndexService  # noqa: E402
from repro.store import DurableStore, sorted_unique_run, write_run_file  # noqa: E402

FAMILY = "lipp"
N_SHARDS = 4


def _fresh_batches(
    rng: np.random.Generator, base_keys: np.ndarray, n_writes: int, batch: int
) -> list[np.ndarray]:
    """Write batches of keys disjoint from *base_keys* and each other."""
    lo = int(base_keys.max()) + 1
    fresh = lo + rng.choice(n_writes * 8, size=n_writes, replace=False)
    return [fresh[i : i + batch] for i in range(0, n_writes, batch)]


def run_naive(
    data_dir: Path, base_keys: np.ndarray, batches: list[np.ndarray]
) -> tuple[float, object]:
    """Per-key insert loop + one run file per batch; returns (secs, index)."""
    index = INDEX_FAMILIES[FAMILY].build(base_keys, base_keys * 2)
    data_dir.mkdir(parents=True, exist_ok=True)
    t0 = time.perf_counter()
    for i, keys in enumerate(batches):
        for k in keys:
            index.insert(int(k), int(k) * 2)
        s_keys, s_vals = sorted_unique_run(keys, keys * 2)
        write_run_file(data_dir, f"run-{i:06d}.npz", s_keys, s_vals)
    return time.perf_counter() - t0, index


def run_buffered(
    data_dir: Path,
    base_keys: np.ndarray,
    batches: list[np.ndarray],
    flush_threshold: int,
    compaction: str,
) -> tuple[float, IndexService]:
    """The durable service path; returns (secs, service) — still open."""
    service = IndexService.build(
        base_keys,
        values=base_keys * 2,
        family=FAMILY,
        n_shards=N_SHARDS,
        store=DurableStore(data_dir),
        flush_threshold=flush_threshold,
        compaction=compaction,
        staleness_threshold=0.05,
    )
    t0 = time.perf_counter()
    for keys in batches:
        service.insert_many(keys, keys * 2)
    service.snapshot()  # flush + full compaction inside the timed region
    return time.perf_counter() - t0, service


def assert_parity(
    naive_index, service: IndexService, data_dir: Path,
    base_keys: np.ndarray, batches: list[np.ndarray],
) -> int:
    """Recovered, live, and naive views must be bit-identical."""
    all_keys = np.concatenate([base_keys] + list(batches))
    order = np.argsort(all_keys, kind="stable")
    want_keys = all_keys[order]
    want_vals = want_keys * 2

    lo, hi = int(want_keys[0]), int(want_keys[-1])
    views = {"live": service.range_query(lo, hi)}
    reopened = IndexService.open_snapshot(data_dir)
    try:
        views["recovered"] = reopened.range_query(lo, hi)
    finally:
        reopened.close()
    views["naive"] = naive_index.range_query(lo, hi)

    for name, pairs in views.items():
        got = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if not (
            got.shape[0] == want_keys.size
            and np.array_equal(got[:, 0], want_keys)
            and np.array_equal(got[:, 1], want_vals)
        ):
            raise AssertionError(
                f"{name} view diverged: {got.shape[0]} keys vs "
                f"{want_keys.size} expected"
            )
    return int(want_keys.size) * len(views)


def run(quick: bool, out_path: Path, seed: int = 0) -> dict:
    n_base = 8_000 if quick else 50_000
    n_writes = 4_096 if quick else 40_960
    batch = 256 if quick else 512
    flush_threshold = 1_024 if quick else 4_096
    rng = np.random.default_rng(seed)
    base_keys = np.unique(rng.integers(0, n_base * 100, n_base))
    batches = _fresh_batches(rng, base_keys, n_writes, batch)
    n_written = int(sum(b.size for b in batches))

    workdir = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        naive_s, naive_index = run_naive(workdir / "naive", base_keys, batches)
        buffered_s, service = run_buffered(
            workdir / "buffered", base_keys, batches, flush_threshold, "tiered"
        )
        parity_keys = assert_parity(
            naive_index, service, workdir / "buffered", base_keys, batches
        )
        stats = service.stats
        generation = service.durable_generation()
        service.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    section = {
        "config": {
            "quick": quick,
            "family": FAMILY,
            "n_shards": N_SHARDS,
            "n_base": int(base_keys.size),
            "n_writes": n_written,
            "batch": batch,
            "flush_threshold": flush_threshold,
            "compaction": "tiered",
            "cpu_count": os.cpu_count(),
            "seed": seed,
        },
        "naive": {
            "seconds": round(naive_s, 4),
            "keys_per_s": round(n_written / naive_s, 1),
        },
        "buffered": {
            "seconds": round(buffered_s, 4),
            "keys_per_s": round(n_written / buffered_s, 1),
            "flushes": stats.flushes,
            "flushed_keys": stats.flushed_keys,
            "compactions": stats.compactions,
            "final_generation": generation,
        },
        "speedup": round(naive_s / buffered_s, 2),
        "parity": {"checked_keys": parity_keys, "status": "ok"},
    }
    report = {}
    if out_path.exists():
        report = json.loads(out_path.read_text())
    report["durability"] = section
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="JSON report to merge the durability section into",
    )
    args = parser.parse_args(argv)
    section = run(args.quick, args.out, args.seed)
    for mode in ("naive", "buffered"):
        row = section[mode]
        print(f"{mode:9s} {row['keys_per_s']:>12,.0f} keys/s  ({row['seconds']:.2f} s)")
    print(
        f"speedup   {section['speedup']:.2f}x  "
        f"(flushes={section['buffered']['flushes']}, "
        f"compactions={section['buffered']['compactions']}, "
        f"gen={section['buffered']['final_generation']})"
    )
    print(f"parity: {section['parity']['checked_keys']} keys bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
