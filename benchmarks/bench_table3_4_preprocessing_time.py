"""Tables 3 & 4 — CSV pre-processing time for LIPP and ALEX.

Paper shape: pre-processing time grows with α (more virtual points to
search) and varies across datasets with their learning difficulty;
these are one-off costs amortised by query savings.
"""

from __future__ import annotations

from _shared import ALPHAS, DATASET_NAMES, alpha_sweep, emit

from repro.evaluation.reporting import ascii_table


def compute():
    return {
        family: {dataset: alpha_sweep(family, dataset) for dataset in DATASET_NAMES}
        for family in ("lipp", "alex")
    }


def test_table3_4_preprocessing_time(benchmark):
    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    for family, table_name in (("lipp", "table3"), ("alex", "table4")):
        rows = [
            [dataset] + [r.preprocessing_seconds for r in sweeps[family][dataset]]
            for dataset in DATASET_NAMES
        ]
        emit(
            f"{table_name}_preprocessing_time_{family}",
            ascii_table(["dataset"] + [f"a={a}" for a in ALPHAS], rows),
        )

    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            times = [r.preprocessing_seconds for r in series]
            assert all(t > 0 for t in times), (family, dataset)
            # Larger α must not be dramatically cheaper than the
            # smallest α (the paper's growth trend, with slack for
            # early-stopping on easy datasets).
            assert times[-1] >= 0.5 * times[0], (family, dataset, times)
        # Hard datasets cost at least as much as the easiest dataset
        # at the default α (paper: OSM/Genome dominate the tables).
        at_default = {d: s[1].preprocessing_seconds for d, s in per_dataset.items()}
        assert max(at_default["osm"], at_default["genome"]) >= min(
            at_default["facebook"], at_default["covid"]
        ), (family, at_default)
