"""Fig. 10 — read-write workload: time saved, storage, insert time.

Paper shape (LIPP and ALEX, α = 0.1): the query time saved decreases
slightly as inserted keys collide with promoted ones; the storage
overhead shrinks batch by batch because inserts fill the virtual-point
gaps; insertion times stay on par with the original index (within
±~30%).
"""

from __future__ import annotations

from _shared import DATASET_NAMES, bench_n, emit

from repro.evaluation.reporting import ascii_table
from repro.evaluation.runner import run_readwrite_experiment


def compute():
    results = {}
    for family in ("lipp", "alex"):
        for dataset in DATASET_NAMES:
            results[(family, dataset)] = run_readwrite_experiment(
                family, dataset, n=bench_n(), alpha=0.1, n_batches=5
            )
    return results


def test_fig10_readwrite(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for (family, dataset), observations in results.items():
        for obs in observations:
            rows.append(
                [
                    family,
                    dataset,
                    obs.batch_index,
                    obs.total_time_saved_ns,
                    obs.storage_increase_pct,
                    obs.insert_time_increase_pct if obs.batch_index else 0.0,
                ]
            )
    emit(
        "fig10_readwrite",
        ascii_table(
            ["index", "dataset", "batch", "time saved (ns)", "storage +%", "insert +%"],
            rows,
        ),
    )

    for (family, dataset), observations in results.items():
        initial = observations[0]
        final = observations[-1]
        # CSV's advantage on the promoted keys exists before inserts...
        assert initial.total_time_saved_ns >= 0.0, (family, dataset)
        # ...and never turns into a large regression after them.
        assert (
            final.enhanced_profile.avg_simulated_ns
            <= final.original_profile.avg_simulated_ns * 1.15
        ), (family, dataset)
        # Storage: the paper reports the overhead staying at or below
        # ~10% throughout the batches (it shrinks as inserts fill the
        # virtual gaps).  Our slot-frugal LIPP baseline starts near 0%
        # so the *trend* can differ (see EXPERIMENTS.md); the robust
        # claim is that the overhead stays small at every batch.
        for obs in observations:
            assert obs.storage_increase_pct <= 15.0, (
                family,
                dataset,
                obs.batch_index,
                obs.storage_increase_pct,
            )
        # Insert throughput on par (paper: within tens of percent).
        for obs in observations[1:]:
            assert obs.enhanced_insert_seconds <= obs.original_insert_seconds * 3.0, (
                family,
                dataset,
                obs.batch_index,
            )
