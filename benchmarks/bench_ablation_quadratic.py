"""Ablation — quadratic indexing functions (the paper's extension remark).

Section 1: smoothing "can naturally extend to more complex (e.g.,
quadratic) functions".  Claims checked on a curved CDF:

* the quadratic model starts from a lower loss than the linear one;
* both greedy smoothers reduce their own losses;
* the quadratic smoother needs fewer points to reach the linear
  smoother's final loss (richer model ⇒ smaller budget), at the cost
  of a costlier indexing function (the trade-off Section 2.1 cites).
"""

from __future__ import annotations

import numpy as np
from _shared import emit

from repro.core.quadratic_smoothing import smooth_keys_quadratic
from repro.core.smoothing import smooth_keys
from repro.evaluation.reporting import ascii_table


def compute():
    # A curved CDF: quadratic key growth (rank ~ sqrt of the key).
    keys = np.unique((np.linspace(2, 120, 300) ** 2).astype(np.int64))
    budget = 40
    linear = smooth_keys(keys, budget=budget)
    quadratic = smooth_keys_quadratic(keys, budget=budget)
    return keys, linear, quadratic


def test_ablation_quadratic(benchmark):
    keys, linear, quadratic = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "ablation_quadratic",
        ascii_table(
            ["model", "loss before", "loss after", "virtual points", "time (s)"],
            [
                [
                    "linear",
                    linear.original_loss,
                    linear.final_loss,
                    linear.n_virtual,
                    linear.elapsed_seconds,
                ],
                [
                    "quadratic",
                    quadratic.original_loss,
                    quadratic.final_loss,
                    quadratic.n_virtual,
                    quadratic.elapsed_seconds,
                ],
            ],
        ),
    )

    # Richer model fits the curved CDF far better before any smoothing.
    assert quadratic.original_loss < linear.original_loss * 0.5
    # Both smoothers make progress on their own objectives.
    assert linear.final_loss < linear.original_loss
    assert quadratic.final_loss <= quadratic.original_loss
    # And the quadratic run ends below the linear one.
    assert quadratic.final_loss < linear.final_loss
