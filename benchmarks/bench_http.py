"""HTTP serving benchmark: the load driver behind the wire boundary.

Starts the network front door in-process (:class:`~repro.server.
harness.ServerThread` over a freshly built ``IndexService``), asserts
HTTP answers are bit-identical to in-process ``lookup_many`` on a twin
service fed the same batches, then drives closed-loop concurrent
clients (:func:`~repro.server.loadgen.run_load`) against
``POST /v1/lookup`` — and a mixed read/write phase — recording
sustained requests/s, keys/s, and p50/p99 request latency into
``BENCH_perf.json`` under the ``"http_serving"`` key (other sections
are preserved).

CI floors ``http_serving.lookup.requests_per_s`` (and ``keys_per_s``)
via ``check_regression.py --floors-only``: absolute, deliberately
conservative minimums any runner must clear — the point is catching a
server that stops serving, not micro-benchmarking the runner.

Run directly::

    python benchmarks/bench_http.py            # full (n=20k, 5s phases)
    python benchmarks/bench_http.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import MetricsRegistry, scoped_registry  # noqa: E402
from repro.server import HttpIndexClient, ServerThread, run_load  # noqa: E402
from repro.serving import IndexService  # noqa: E402

FAMILY = "lipp"
N_SHARDS = 4


def assert_parity(client: HttpIndexClient, twin: IndexService,
                  keys: np.ndarray, rng: np.random.Generator) -> int:
    """HTTP responses must be bit-identical to the in-process twin."""
    checked = 0
    for size in (1, 64, 512):
        q = rng.choice(keys, size)
        resp = client.lookup(q.tolist())
        ref = twin.lookup_many(q)
        if not (
            resp["found"] == ref.found.tolist()
            and resp["values"] == ref.values.tolist()
            and resp["levels"] == ref.levels.tolist()
            and resp["search_steps"] == ref.search_steps.tolist()
        ):
            raise AssertionError(f"HTTP lookup diverged from in-process (n={size})")
        checked += size
    fresh = int(keys[-1]) + 1 + rng.integers(0, 2**32, 128)
    client.insert(fresh.tolist())
    twin.insert_many(fresh)
    q = np.concatenate([rng.choice(keys, 128), fresh[:64]])
    resp = client.lookup(q.tolist())
    ref = twin.lookup_many(q)
    if not (
        resp["found"] == ref.found.tolist()
        and resp["values"] == ref.values.tolist()
    ):
        raise AssertionError("HTTP post-insert lookup diverged from in-process")
    low, high = int(keys[100]), int(keys[300])
    if client.range(low, high)["pairs"] != [
        [int(k), int(v)] for k, v in twin.range_query(low, high)
    ]:
        raise AssertionError("HTTP range diverged from in-process")
    return checked + q.size


def run(quick: bool, out_path: Path, seed: int = 0) -> dict:
    n = 5_000 if quick else 20_000
    duration_s = 2.0 if quick else 5.0
    clients = 4 if quick else 8
    batch = 256
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 10_000, n))

    registry = MetricsRegistry(enabled=True)
    with scoped_registry(registry):
        service = IndexService.build(keys, family=FAMILY, n_shards=N_SHARDS)
        twin = IndexService.build(keys, family=FAMILY, n_shards=N_SHARDS)
        t0 = time.perf_counter()
        with ServerThread(
            service, registry=registry, max_pending=64, max_inflight=2
        ) as srv:
            startup_s = time.perf_counter() - t0
            with HttpIndexClient(srv.host, srv.port) as client:
                parity_keys = assert_parity(client, twin, keys, rng)
            lookup = run_load(
                srv.host, srv.port, keys,
                clients=clients, batch=batch, duration_s=duration_s, seed=seed,
            )
            mixed = run_load(
                srv.host, srv.port, keys,
                clients=clients, batch=batch, duration_s=duration_s,
                write_fraction=0.2, seed=seed + 1,
            )
        service.close()
        twin.close()

    if lookup.errors or mixed.errors:
        raise AssertionError(
            f"load run hit transport errors: {lookup.errors} + {mixed.errors}"
        )
    section = {
        "config": {
            "quick": quick,
            "n": n,
            "family": FAMILY,
            "n_shards": N_SHARDS,
            "clients": clients,
            "batch": batch,
            "duration_s": duration_s,
            "cpu_count": os.cpu_count(),
            "seed": seed,
        },
        "startup_seconds": round(startup_s, 3),
        "parity": {"checked_keys": int(parity_keys), "status": "ok"},
        "lookup": lookup.to_dict(),
        "mixed": mixed.to_dict(),
    }
    report = {}
    if out_path.exists():
        report = json.loads(out_path.read_text())
    report["http_serving"] = section
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="JSON report to merge the http_serving section into",
    )
    args = parser.parse_args(argv)
    section = run(args.quick, args.out, args.seed)
    for phase in ("lookup", "mixed"):
        row = section[phase]
        print(
            f"{phase:6s}  {row['requests_per_s']:>10,.0f} req/s  "
            f"{row['keys_per_s']:>12,.0f} keys/s  "
            f"p50 {row['p50_ms']:.2f} ms  p99 {row['p99_ms']:.2f} ms  "
            f"({row['requests']} requests, {row['rejected']} rejected)"
        )
    print(f"parity: {section['parity']['checked_keys']} keys bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
