"""Fig. 9 — total query time saved vs dataset cardinality.

Paper shape: the total time saved grows with dataset size on all
indexes (more deep keys exist to promote), growing fastest on the
easy datasets once they are large enough to have deep levels at all.
"""

from __future__ import annotations

from _shared import DATASET_NAMES, FAMILIES, cardinality_sweep, emit

from repro.evaluation.reporting import ascii_table


def compute():
    return {
        family: {dataset: cardinality_sweep(family, dataset) for dataset in DATASET_NAMES}
        for family in FAMILIES
    }


def test_fig09_time_saved_vs_cardinality(benchmark):
    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            rows.append(
                [family, dataset]
                + [f"n={r.n}: {r.total_time_saved_ns:.3g}" for r in series]
            )
    emit(
        "fig09_time_saved_vs_cardinality",
        ascii_table(["index", "dataset", "s1", "s2", "s3", "s4"], rows),
    )

    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            saved = [r.total_time_saved_ns for r in series]
            assert all(s >= 0 for s in saved), (family, dataset)
            # Shape: savings never collapse as n grows (ALEX's merged
            # nodes add search-noise, so allow a bounded dip).
            assert saved[-1] >= 0.4 * saved[0], (family, dataset, saved)
        # Growth with cardinality holds on at least half the datasets
        # per family (the paper's Fig. 9 trend).
        grew = sum(
            series[-1].total_time_saved_ns > series[0].total_time_saved_ns
            for series in per_dataset.values()
        )
        assert grew >= 2, f"{family}: growth on only {grew}/4 datasets"
