"""Ablation — derivative-based candidate filtering (Section 4.2).

Design claim: filtering each sub-sequence to its endpoints/stationary
point leaves orders of magnitude fewer candidates to score than the
full free-value set, without changing the chosen virtual point.
"""

from __future__ import annotations

import numpy as np
from _shared import bench_n, emit

from repro.core.candidates import all_free_values, filtered_candidates, loss_curve
from repro.core.segment_stats import SegmentStats
from repro.datasets import load
from repro.evaluation.reporting import ascii_table


def compute():
    out = {}
    # Facebook analogue at a reduced size plus a synthetic clustered
    # set; both keep the free-value universe small enough to brute
    # force (genome-scale gaps would mean tens of millions of values —
    # exactly why the filter exists).
    keys_fb = load("facebook", min(bench_n(), 2000))
    rng = np.random.default_rng(0)
    clustered = np.unique(
        np.concatenate(
            [c + rng.integers(0, 3000, 400) for c in (0, 10_000, 50_000, 90_000)]
        )
    )
    for dataset, keys in (("facebook", keys_fb), ("clustered", clustered)):
        stats = SegmentStats(keys)
        filtered = filtered_candidates(stats)
        n_free = int(all_free_values(stats).size)
        out[dataset] = (stats, filtered, n_free)
    return out


def test_ablation_candidate_filtering(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for dataset, (stats, filtered, n_free) in results.items():
        rows.append([dataset, n_free, len(filtered), n_free / max(len(filtered), 1)])
    emit(
        "ablation_candidate_filtering",
        ascii_table(
            ["dataset", "all free values", "after filter", "reduction x"], rows
        ),
    )

    for dataset, (stats, filtered, n_free) in results.items():
        # The filter must shrink the candidate set substantially...
        assert len(filtered) < n_free / 2, dataset
        # ...while keeping the optimal single insertion: compare the
        # best filtered loss against the brute-force curve minimum.
        values, losses = loss_curve(stats)
        brute_best = float(losses.min())
        filtered_best = min(loss for __, loss in filtered)
        assert filtered_best <= brute_best * (1 + 1e-9), dataset
