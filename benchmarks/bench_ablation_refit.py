"""Ablation — refitting the model while smoothing (Eq. 4).

Design claim: letting the slope/intercept refit per candidate (the
paper's key deviation from naive rank spreading) reaches a lower loss
for the same budget than inserting points against the frozen original
model.
"""

from __future__ import annotations

from _shared import emit

from repro.core.loss import fit_and_loss
from repro.core.smoothing import smooth_keys, smooth_keys_fixed_model
from repro.datasets import load
from repro.evaluation.reporting import ascii_table


def compute():
    out = {}
    for dataset in ("facebook", "genome"):
        keys = load(dataset, 2000)
        budget = 200
        refit = smooth_keys(keys, budget=budget)
        fixed = smooth_keys_fixed_model(keys, budget=budget)
        __, fixed_refit_loss = fit_and_loss(fixed.points)
        out[dataset] = (refit, fixed, fixed_refit_loss)
    return out


def test_ablation_refit(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for dataset, (refit, fixed, fixed_refit_loss) in results.items():
        rows.append(
            [
                dataset,
                refit.original_loss,
                refit.final_loss,
                fixed_refit_loss,
                refit.n_virtual,
                fixed.n_virtual,
            ]
        )
    emit(
        "ablation_refit",
        ascii_table(
            [
                "dataset",
                "original loss",
                "refit smoothing loss",
                "fixed-model smoothing loss",
                "refit points",
                "fixed points",
            ],
            rows,
        ),
    )

    for dataset, (refit, fixed, fixed_refit_loss) in results.items():
        # Both reduce the loss...
        assert refit.final_loss < refit.original_loss, dataset
        # ...but refitting reaches a (weakly) better optimum for the
        # same budget, measured on the common refit objective.
        assert refit.final_loss <= fixed_refit_loss * (1 + 1e-9), dataset
