"""Perf-regression benchmark: smoothing kernel + batch query engine.

Measures the two hot paths this repo's performance work targets and
records the throughput trajectory to ``BENCH_perf.json`` so later PRs
have numbers to defend:

* **Smoothing** — Algorithm 1 (`smooth_keys`) on uniform keys, current
  incremental/vectorised kernel vs an embedded replica of the original
  ("seed") kernel: per-gap Python suffix comprehension plus
  ``np.insert`` + full recompute per commit.  The replica also serves
  as a behavioural oracle: the virtual-point sequences must match.
* **Lookups** — per backend, the per-key ``lookup_stats`` loop vs the
  vectorised ``lookup_many`` batch engine (results asserted equal).
* **Inserts** — for the updatable backends, the per-key ``insert``
  loop vs ``insert_many``.
* **Bulk inserts** — for the tree backends, the per-key
  ``insert_many`` loop vs the vectorised ``bulk_insert_many``
  sorted-merge path on a large sorted batch (lookup parity asserted
  over the full merged key set).
* **Flat view** (``lipp_flat``/``sali_flat``) — LIPP/SALI batch
  lookups and sparse gapped bulk merges through the compiled
  level-ordered flat representation vs the node-object oracle
  (``use_flat=False``), exact parity asserted.
* **Metrics overhead** (``metrics_overhead``) — sharded-service
  ``lookup_many`` throughput with instrumentation fully enabled vs
  disabled (bit-identical results asserted); the recorded
  ``throughput_ratio`` (off/on, ~1.0) is floor-gated in CI so the
  observability layer stays under its <5% overhead budget.

Run directly::

    python benchmarks/bench_perf_regression.py           # full (n=10k)
    python benchmarks/bench_perf_regression.py --quick   # CI smoke

The quick mode is what ``tests/test_bench_scripts.py`` invokes under
the ``slow`` marker.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.segment_stats import (  # noqa: E402
    SegmentStats,
    sum_of_rank_squares,
    sum_of_ranks,
)
from repro.core.smoothing import smooth_keys  # noqa: E402
from repro.indexes import INDEX_FAMILIES  # noqa: E402

UPDATABLE = ("sorted_array", "btree", "alex", "lipp", "sali")

#: Backends with a structural (tree) bulk-ingest path worth recording.
BULK_FAMILIES = ("btree", "alex", "lipp", "sali")


# ----------------------------------------------------------------------
# Seed-kernel replica (the pre-optimisation implementation)
# ----------------------------------------------------------------------
class _SeedStats(SegmentStats):
    """SegmentStats with the seed's commit: ``np.insert`` + full float
    recompute, no incremental statistics."""

    def commit(self, value: int) -> int:  # type: ignore[override]
        value = int(value)
        rank = self.insertion_rank(value)
        merged = np.insert(self.points, rank, value)
        self.__init__(merged)
        return rank


def _seed_best_candidate(stats: SegmentStats) -> tuple[int, float] | None:
    """The seed's greedy step: per-gap Python suffix comprehension and
    a concatenated candidate array through ``evaluate_many``."""
    points = stats.points
    lows = points[:-1] + 1
    highs = points[1:] - 1
    gap_mask = highs >= lows
    if not np.any(gap_mask):
        return None
    lows = lows[gap_mask]
    highs = highs[gap_mask]
    ranks = np.nonzero(gap_mask)[0] + 1
    n = stats.n
    big_n = n + 1
    sy = sum_of_ranks(big_n)
    ybar = sy / big_n
    sk, skk, sky = stats.centered_sums()
    suffix = np.array([stats.suffix_key_sum(int(r)) for r in ranks])  # the hot loop
    c0 = (sky + suffix) - sk * ybar
    c1 = ranks - ybar
    v0 = skk - sk * sk / big_n
    v1 = -2.0 * sk / big_n
    v2 = 1.0 - 1.0 / big_n
    denom = c1 * v1 - 2.0 * c0 * v2
    with np.errstate(divide="ignore", invalid="ignore"):
        t_star = np.where(denom != 0.0, (c0 * v1 - 2.0 * c1 * v0) / denom, np.nan)
    star = t_star + stats.reference
    cand_values = [lows, highs]
    cand_ranks = [ranks, ranks]
    interior = np.isfinite(star) & (star > lows) & (star < highs)
    if np.any(interior):
        floor_v = np.floor(star[interior]).astype(np.int64)
        lo_i = lows[interior]
        hi_i = highs[interior]
        cand_values.append(np.clip(floor_v, lo_i, hi_i))
        cand_ranks.append(ranks[interior])
        cand_values.append(np.clip(floor_v + 1, lo_i, hi_i))
        cand_ranks.append(ranks[interior])
    values = np.concatenate(cand_values)
    value_ranks = np.concatenate(cand_ranks)
    losses = stats.evaluate_many(values, value_ranks)
    best = int(np.argmin(losses))
    return int(values[best]), float(losses[best])


def _seed_smooth(keys: np.ndarray, budget: int) -> list[int]:
    """The seed greedy loop (virtual points only)."""
    stats = _SeedStats(keys)
    previous = stats.base_loss()
    virtual: list[int] = []
    while len(virtual) < budget:
        found = _seed_best_candidate(stats)
        if found is None or found[1] >= previous:
            break
        value, loss = found
        stats.commit(value)
        virtual.append(value)
        previous = loss
    return virtual


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------
def _best_of(fn, repeats: int = 3):
    """``(last_result, best_seconds)`` over *repeats* timed calls.

    Taking the minimum suppresses GC pauses and scheduler
    preemption on shared CI runners — a single spiked loop timing
    otherwise inflates the recorded speedup ratio, which the
    regression gate then compares against honest later runs.  Only
    valid for non-mutating *fn*.
    """
    best = float("inf")
    result = None
    for __ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_smoothing(n: int, alpha: float, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 1000, n))
    budget = max(1, int(alpha * keys.size))

    start = time.perf_counter()
    result = smooth_keys(keys, budget=budget)
    current_s = time.perf_counter() - start

    start = time.perf_counter()
    seed_virtual = _seed_smooth(keys, budget)
    seed_s = time.perf_counter() - start

    if result.virtual_points != seed_virtual:
        raise AssertionError("optimised smoothing diverged from the seed kernel")
    committed = max(result.n_virtual, 1)
    return {
        "n_keys": int(keys.size),
        "alpha": alpha,
        "virtual_points": result.n_virtual,
        "seed_seconds": round(seed_s, 4),
        "current_seconds": round(current_s, 4),
        "seed_points_per_s": round(committed / seed_s, 1),
        "current_points_per_s": round(committed / current_s, 1),
        "speedup": round(seed_s / current_s, 2),
    }


def bench_lookups(n: int, n_queries: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 10_000, n))
    queries = rng.choice(keys, n_queries)
    out = {}
    for family, cls in INDEX_FAMILIES.items():
        loop_index = cls.build(keys)
        scalar, loop_s = _best_of(
            lambda: [loop_index.lookup_stats(int(k)) for k in queries]
        )

        batch_index = cls.build(keys)
        # Warm-up probe: one-time lazy work (LIPP/SALI compile their
        # flat view on first batch query) stays out of the steady-state
        # timing, mirroring how the serving layer prewarms shards.
        batch_index.lookup_many(queries[:1])
        batch, batch_s = _best_of(lambda: batch_index.lookup_many(queries))

        for i in range(0, batch.n_queries, max(1, batch.n_queries // 200)):
            s, b = scalar[i], batch.stat(i)
            if (s.found, s.value, s.levels, s.search_steps) != (
                b.found, b.value, b.levels, b.search_steps,
            ):
                raise AssertionError(f"{family}: batch lookup diverged at query {i}")
        out[family] = {
            "loop_lookups_per_s": round(n_queries / loop_s, 1),
            "batch_lookups_per_s": round(n_queries / batch_s, 1),
            "speedup": round(loop_s / batch_s, 2),
        }
    return out


def bench_inserts(n: int, n_inserts: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    universe = np.unique(rng.integers(0, n * 10_000, n + 2 * n_inserts))
    rng.shuffle(universe)
    build_keys = np.sort(universe[:n])
    fresh = universe[n : n + n_inserts]
    out = {}
    for family in UPDATABLE:
        cls = INDEX_FAMILIES[family]
        loop_index = cls.build(build_keys)
        start = time.perf_counter()
        for k in fresh.tolist():
            loop_index.insert(int(k), int(k))
        loop_s = time.perf_counter() - start

        batch_index = cls.build(build_keys)
        start = time.perf_counter()
        batch_index.insert_many(fresh)
        batch_s = time.perf_counter() - start
        out[family] = {
            "loop_inserts_per_s": round(n_inserts / loop_s, 1),
            "batch_inserts_per_s": round(n_inserts / batch_s, 1),
            "speedup": round(loop_s / batch_s, 2),
        }
    return out


def bench_bulk_inserts(n: int, n_bulk: int, seed: int) -> dict:
    """Per-key ``insert_many`` loop vs ``bulk_insert_many`` on a
    sorted batch of *n_bulk* fresh keys into an *n*-key index.

    Parity is asserted over the full merged key set: both indexes must
    find every key with identical values.
    """
    rng = np.random.default_rng(seed)
    universe = np.unique(rng.integers(0, (n + n_bulk) * 100, n + 2 * n_bulk))
    rng.shuffle(universe)
    build_keys = np.sort(universe[:n])
    batch = np.sort(universe[n : n + n_bulk])
    n_batch = int(batch.size)
    out = {}
    for family in BULK_FAMILIES:
        cls = INDEX_FAMILIES[family]
        # Ingest mutates the index, so best-of-2 rebuilds a fresh pair
        # per repeat instead of re-timing the same call.
        loop_s = bulk_s = float("inf")
        for __ in range(2):
            loop_index = cls.build(build_keys)
            start = time.perf_counter()
            loop_index.insert_many(batch)
            loop_s = min(loop_s, time.perf_counter() - start)

            bulk_index = cls.build(build_keys)
            start = time.perf_counter()
            bulk_index.bulk_insert_many(batch)
            bulk_s = min(bulk_s, time.perf_counter() - start)

        all_keys = np.fromiter(loop_index.iter_keys(), dtype=np.int64)
        loop_batch = loop_index.lookup_many(all_keys)
        bulk_batch = bulk_index.lookup_many(all_keys)
        if not (
            bool(np.all(loop_batch.found))
            and bool(np.all(bulk_batch.found))
            and np.array_equal(loop_batch.values, bulk_batch.values)
            and loop_index.n_keys == bulk_index.n_keys
        ):
            raise AssertionError(f"{family}: bulk ingest diverged from the loop")
        out[family] = {
            "loop_inserts_per_s": round(n_batch / loop_s, 1),
            "bulk_inserts_per_s": round(n_batch / bulk_s, 1),
            "speedup": round(loop_s / bulk_s, 2),
        }
    return out


def bench_flat(n: int, n_queries: int, seed: int) -> dict:
    """Flat level-ordered view vs the node-object oracle (LIPP/SALI).

    Two comparisons per family, same built tree:

    * ``lookups`` — ``lookup_many`` through the compiled flat view
      (vectorised per-level gathers) vs the ``use_flat=False`` grouped
      frontier sweep, with exact per-key stats parity asserted;
    * ``sparse_bulk`` — a fresh batch sized below the dense-rebuild
      threshold, merged via the in-place gapped path vs the oracle's
      recursive sorted-merge, with content parity asserted.

    Returns ``{"lipp_flat": {...}, "sali_flat": {...}}`` top-level
    sections.
    """
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 10_000, n))
    queries = rng.choice(keys, n_queries)
    n_sparse = max(8, n // 8)  # well under the 25% wholesale threshold
    sparse = np.setdiff1d(
        rng.integers(0, n * 10_000, 4 * n_sparse), keys
    )[:n_sparse]
    out = {}
    for family in ("lipp", "sali"):
        cls = INDEX_FAMILIES[family]
        flat_index = cls.build(keys)
        flat_index.prewarm_flat()
        node_index = cls.build(keys, use_flat=False)

        node_stats, node_s = _best_of(lambda: node_index.lookup_many(queries))
        flat_stats, flat_s = _best_of(lambda: flat_index.lookup_many(queries))

        if not (
            np.array_equal(flat_stats.found, node_stats.found)
            and np.array_equal(flat_stats.values, node_stats.values)
            and np.array_equal(flat_stats.levels, node_stats.levels)
            and np.array_equal(flat_stats.search_steps, node_stats.search_steps)
        ):
            raise AssertionError(f"{family}: flat lookup diverged from the node oracle")

        # Bulk merge mutates the tree, so best-of-2 rebuilds a fresh
        # pair per repeat instead of re-timing the same call.
        node_bulk_s = flat_bulk_s = float("inf")
        for __ in range(2):
            node_index = cls.build(keys, use_flat=False)
            start = time.perf_counter()
            node_index.bulk_insert_many(sparse)
            node_bulk_s = min(node_bulk_s, time.perf_counter() - start)

            flat_index = cls.build(keys)
            flat_index.prewarm_flat()
            start = time.perf_counter()
            flat_index.bulk_insert_many(sparse)
            flat_bulk_s = min(flat_bulk_s, time.perf_counter() - start)

        merged = np.fromiter(node_index.iter_keys(), dtype=np.int64)
        if not (
            np.array_equal(merged, np.fromiter(flat_index.iter_keys(), dtype=np.int64))
            and flat_index.n_keys == node_index.n_keys
            and bool(np.all(flat_index.lookup_many(merged).found))
        ):
            raise AssertionError(f"{family}: gapped merge diverged from the node oracle")

        out[f"{family}_flat"] = {
            "lookups": {
                "node_batch_lookups_per_s": round(n_queries / node_s, 1),
                "flat_batch_lookups_per_s": round(n_queries / flat_s, 1),
                "speedup": round(node_s / flat_s, 2),
            },
            "sparse_bulk": {
                "node_bulk_inserts_per_s": round(sparse.size / node_bulk_s, 1),
                "flat_bulk_inserts_per_s": round(sparse.size / flat_bulk_s, 1),
                "speedup": round(node_bulk_s / flat_bulk_s, 2),
            },
        }
    return out


def bench_metrics_overhead(n: int, n_queries: int, seed: int) -> dict:
    """Instrumented vs uninstrumented batched lookups on a 4-shard service.

    Both passes run the same query batch against the same service; the
    only difference is whether the installed global registry is
    enabled.  Results must be bit-identical (the no-op-guard
    contract), and ``throughput_ratio = off_s / on_s`` records the
    cost of instrumentation — 1.0 is free, CI floors it at 0.95
    (<5% overhead).
    """
    from repro.obs.metrics import MetricsRegistry, scoped_registry
    from repro.serving import IndexService

    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 10_000, n))
    queries = rng.choice(keys, n_queries)
    # One registry, installed globally AND handed to the service, so
    # flipping its ``enabled`` bit toggles every layer's guards —
    # service mirrors, router, and index counters alike.
    registry = MetricsRegistry(enabled=False)
    with scoped_registry(registry), IndexService.build(
        keys, family="lipp", n_shards=4, metrics=registry
    ) as service:
        # Warm-up probe: flat-view compiles and allocator warm-up stay
        # out of both timings.
        service.lookup_many(queries[:1])

        registry.enabled = False
        off_batch, off_s = _best_of(
            lambda: service.lookup_many(queries), repeats=5
        )
        registry.enabled = True
        on_batch, on_s = _best_of(
            lambda: service.lookup_many(queries), repeats=5
        )

    if not (
        np.array_equal(off_batch.found, on_batch.found)
        and np.array_equal(off_batch.values, on_batch.values)
        and np.array_equal(off_batch.levels, on_batch.levels)
        and np.array_equal(off_batch.search_steps, on_batch.search_steps)
    ):
        raise AssertionError("metrics-on lookups diverged from metrics-off")
    return {
        "lookup_many": {
            "metrics_off_lookups_per_s": round(n_queries / off_s, 1),
            "metrics_on_lookups_per_s": round(n_queries / on_s, 1),
            "throughput_ratio": round(off_s / on_s, 3),
        }
    }


def _measure(quick: bool, seed: int) -> dict:
    n = 2_000 if quick else 10_000
    alpha = 0.2
    n_queries = 4_000 if quick else 20_000
    n_inserts = 500 if quick else 2_000
    n_bulk = 5_000 if quick else 100_000
    report = {
        "config": {"quick": quick, "n": n, "alpha": alpha,
                   "n_queries": n_queries, "n_inserts": n_inserts,
                   "n_bulk": n_bulk, "seed": seed},
        "smoothing": bench_smoothing(n, alpha, seed),
        "lookups": bench_lookups(n, n_queries, seed),
        "inserts": bench_inserts(n, n_inserts, seed),
        "bulk_inserts": bench_bulk_inserts(n, n_bulk, seed),
        "metrics_overhead": bench_metrics_overhead(n, n_queries, seed),
    }
    report.update(bench_flat(n, n_queries, seed))
    return report


def run(quick: bool, out_path: Path, seed: int = 0) -> dict:
    report = _measure(quick, seed)
    if not quick:
        # A full (baseline) run also records a quick pass: the CI
        # perf gate compares its own quick run against this
        # like-for-like section (speedup ratios, which cancel machine
        # speed) instead of against the full run's absolute numbers.
        report["quick_baseline"] = _measure(True, seed)
    # Merge into an existing trajectory file instead of clobbering
    # sections other benches own (bench_serving's "serving").
    merged: dict = {}
    if out_path.exists():
        try:
            merged = json.loads(out_path.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(report)
    out_path.write_text(json.dumps(merged, indent=2) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.quick and args.out.resolve() == (REPO_ROOT / "BENCH_perf.json").resolve():
        # A quick run merged into the committed baseline would leave
        # stale full-run sections behind and flip the CI gate into
        # machine-dependent strict mode; quick numbers belong in a
        # scratch file.
        parser.error(
            "--quick must not overwrite the committed baseline; "
            "pass an explicit --out (e.g. --out /tmp/BENCH_fresh.json)"
        )
    report = run(args.quick, args.out, args.seed)
    smoothing = report["smoothing"]
    print(f"smoothing  n={smoothing['n_keys']}  seed {smoothing['seed_seconds']}s  "
          f"current {smoothing['current_seconds']}s  ({smoothing['speedup']}x)")
    for family, row in report["lookups"].items():
        print(f"lookup {family:12s} loop {row['loop_lookups_per_s']:>12.0f}/s  "
              f"batch {row['batch_lookups_per_s']:>12.0f}/s  ({row['speedup']}x)")
    for family, row in report["inserts"].items():
        print(f"insert {family:12s} loop {row['loop_inserts_per_s']:>12.0f}/s  "
              f"batch {row['batch_inserts_per_s']:>12.0f}/s  ({row['speedup']}x)")
    for family, row in report["bulk_inserts"].items():
        print(f"bulk   {family:12s} loop {row['loop_inserts_per_s']:>12.0f}/s  "
              f"bulk  {row['bulk_inserts_per_s']:>12.0f}/s  ({row['speedup']}x)")
    for section in ("lipp_flat", "sali_flat"):
        for sub, row in report[section].items():
            per_s = [v for k, v in row.items() if k.endswith("_per_s")]
            print(f"flat   {section}.{sub:12s} node {per_s[0]:>12.0f}/s  "
                  f"flat  {per_s[1]:>12.0f}/s  ({row['speedup']}x)")
    obs = report["metrics_overhead"]["lookup_many"]
    print(f"metrics overhead      off {obs['metrics_off_lookups_per_s']:>12.0f}/s  "
          f"on    {obs['metrics_on_lookups_per_s']:>12.0f}/s  "
          f"(ratio {obs['throughput_ratio']})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
