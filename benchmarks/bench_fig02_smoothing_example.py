"""Fig. 2 — the running smoothing example.

Paper numbers: 10 keys, α = 0.5 (5 virtual points); loss drops from
8.33 to 2.04 over the original keys (2.29 over keys + virtual
points).  Our toy set (the paper does not publish its keys) matches:
8.36 → ~1.8 / ~2.21.
"""

from __future__ import annotations

from _shared import emit

from repro.core.smoothing import smooth_keys
from repro.datasets import FIG2_TOY_KEYS
from repro.evaluation.reporting import ascii_table


def compute():
    return smooth_keys(FIG2_TOY_KEYS, alpha=0.5)


def test_fig02_smoothing_example(benchmark):
    result = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "fig02_smoothing_example",
        ascii_table(
            ["quantity", "paper", "measured"],
            [
                ["loss before smoothing", 8.33, result.original_loss],
                ["loss after (keys + virtual)", 2.29, result.final_loss],
                ["loss after (original keys)", 2.04, result.loss_over_original_keys()],
                ["virtual points inserted", 5, result.n_virtual],
            ],
        )
        + f"\nvirtual points: {sorted(result.virtual_points)}",
    )

    assert result.n_virtual == 5
    assert abs(result.original_loss - 8.33) < 0.2
    assert abs(result.final_loss - 2.29) < 0.3
    assert result.loss_improvement_pct > 70.0
