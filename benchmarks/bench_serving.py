"""Serving-layer benchmark: shard-scaling throughput and latency.

Measures the sharded :class:`~repro.serving.service.IndexService`
against the monolithic batch engine over a shard-count sweep — wall
clock lookups/s (routing overhead included), threaded variant, mixed
read/write workload throughput, and the simulated-ns latency the cost
model assigns — and merges the results into ``BENCH_perf.json`` under
the ``"serving"`` key (the smoothing/lookup/insert sections written by
``bench_perf_regression.py`` are preserved).

Run directly::

    python benchmarks/bench_serving.py            # full (n=20k)
    python benchmarks/bench_serving.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving import IndexService  # noqa: E402
from repro.workloads import run_service_workload  # noqa: E402

#: Families benched: the CSV flagship (lipp), the classical oracle
#: (btree) and the fastest static batch backend (pgm).
FAMILIES = ("lipp", "btree", "pgm")
SHARD_COUNTS = (1, 2, 4, 8)


def bench_family(
    family: str,
    keys: np.ndarray,
    queries: np.ndarray,
    n_ops: int,
    max_workers: int,
    seed: int,
) -> dict:
    out = {}
    for k in SHARD_COUNTS:
        row: dict = {"n_shards": k}
        with IndexService.build(keys, family=family, n_shards=k) as service:
            start = time.perf_counter()
            batch = service.lookup_many(queries)
            wall = time.perf_counter() - start
            ns = batch.simulated_ns(service.constants)
            row["lookups_per_s"] = round(queries.size / wall, 1)
            row["avg_sim_ns"] = round(float(ns.mean()), 1)
            row["p99_sim_ns"] = round(float(np.percentile(ns, 99)), 1)
        with IndexService.build(
            keys, family=family, n_shards=k, max_workers=max_workers
        ) as service:
            start = time.perf_counter()
            threaded_batch = service.lookup_many(queries)
            wall = time.perf_counter() - start
            row["threaded_lookups_per_s"] = round(queries.size / wall, 1)
            if not (
                np.array_equal(threaded_batch.found, batch.found)
                and np.array_equal(threaded_batch.values, batch.values)
                and np.array_equal(threaded_batch.levels, batch.levels)
                and np.array_equal(threaded_batch.search_steps, batch.search_steps)
            ):
                raise AssertionError(f"{family} K={k}: threaded gather diverged")
        with IndexService.build(
            keys, family=family, n_shards=k, staleness_threshold=0.2
        ) as service:
            report = run_service_workload(
                service, keys, n_ops=n_ops, read_fraction=0.9, seed=seed
            )
            row["mixed_ops_per_s"] = round(report.ops_per_second, 1)
            row["merges"] = service.stats.merges
        out[f"K{k}"] = row
    return out


def run(quick: bool, out_path: Path, seed: int = 0) -> dict:
    n = 4_000 if quick else 20_000
    n_queries = 8_000 if quick else 40_000
    n_ops = 5_000 if quick else 30_000
    max_workers = 4
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 10_000, n))
    queries = rng.choice(keys, n_queries)

    serving = {
        "config": {
            "quick": quick,
            "n": n,
            "n_queries": n_queries,
            "n_ops": n_ops,
            "max_workers": max_workers,
            "shard_counts": list(SHARD_COUNTS),
            "seed": seed,
        },
        "scaling": {
            family: bench_family(family, keys, queries, n_ops, max_workers, seed)
            for family in FAMILIES
        },
    }

    report = {}
    if out_path.exists():
        report = json.loads(out_path.read_text())
    report["serving"] = serving
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return serving


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="JSON report to merge the serving section into",
    )
    args = parser.parse_args(argv)
    serving = run(args.quick, args.out, args.seed)
    for family, sweep in serving["scaling"].items():
        for label, row in sweep.items():
            print(
                f"{family:8s} {label:3s} lookups {row['lookups_per_s']:>12,.0f}/s  "
                f"threaded {row['threaded_lookups_per_s']:>12,.0f}/s  "
                f"mixed {row['mixed_ops_per_s']:>10,.0f} ops/s  "
                f"avg {row['avg_sim_ns']:>6.0f} sim-ns"
            )
    print(f"wrote serving section to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
