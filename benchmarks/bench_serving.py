"""Serving-layer benchmark: shard-scaling throughput and latency.

Measures the sharded :class:`~repro.serving.service.IndexService`
against the monolithic batch engine over a shard-count sweep — wall
clock lookups/s (routing overhead included), threaded variant, mixed
read/write workload throughput, and the simulated-ns latency the cost
model assigns — and merges the results into ``BENCH_perf.json`` under
the ``"serving"`` key (the smoothing/lookup/insert sections written by
``bench_perf_regression.py`` are preserved).

A second sweep, ``process_scaling``, runs the shared-memory process
executor over K shards/workers and records
``k4_over_k1_ratio`` — the K=4 over K=1 process-mode throughput
ratio, the dimensionless signal that process serving actually scales
past the GIL.  On a single-core runner the ratio hovers near or
below 1 (IPC overhead, no parallelism to win back); CI only floors
it on runners with 4+ cores.  Every process batch is asserted
bit-identical to the serial answer.

Run directly::

    python benchmarks/bench_serving.py            # full (n=20k)
    python benchmarks/bench_serving.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serving import ExecutorSpec, IndexService  # noqa: E402
from repro.workloads import run_service_workload  # noqa: E402

#: Families benched: the CSV flagship (lipp), the classical oracle
#: (btree) and the fastest static batch backend (pgm).
FAMILIES = ("lipp", "btree", "pgm")
SHARD_COUNTS = (1, 2, 4, 8)

#: Families and shard counts of the process-executor scaling sweep
#: (smaller: each K spawns K worker processes).
PROCESS_FAMILIES = ("lipp", "btree")
PROCESS_SHARD_COUNTS = (1, 2, 4)


def bench_family(
    family: str,
    keys: np.ndarray,
    queries: np.ndarray,
    n_ops: int,
    max_workers: int,
    seed: int,
) -> dict:
    out = {}
    for k in SHARD_COUNTS:
        row: dict = {"n_shards": k}
        with IndexService.build(keys, family=family, n_shards=k) as service:
            start = time.perf_counter()
            batch = service.lookup_many(queries)
            wall = time.perf_counter() - start
            ns = batch.simulated_ns(service.constants)
            row["lookups_per_s"] = round(queries.size / wall, 1)
            row["avg_sim_ns"] = round(float(ns.mean()), 1)
            row["p99_sim_ns"] = round(float(np.percentile(ns, 99)), 1)
        with IndexService.build(
            keys, family=family, n_shards=k, max_workers=max_workers
        ) as service:
            start = time.perf_counter()
            threaded_batch = service.lookup_many(queries)
            wall = time.perf_counter() - start
            row["threaded_lookups_per_s"] = round(queries.size / wall, 1)
            if not (
                np.array_equal(threaded_batch.found, batch.found)
                and np.array_equal(threaded_batch.values, batch.values)
                and np.array_equal(threaded_batch.levels, batch.levels)
                and np.array_equal(threaded_batch.search_steps, batch.search_steps)
            ):
                raise AssertionError(f"{family} K={k}: threaded gather diverged")
        with IndexService.build(
            keys, family=family, n_shards=k, staleness_threshold=0.2
        ) as service:
            report = run_service_workload(
                service, keys, n_ops=n_ops, read_fraction=0.9, seed=seed
            )
            row["mixed_ops_per_s"] = round(report.ops_per_second, 1)
            row["merges"] = service.stats.merges
        out[f"K{k}"] = row
    return out


def bench_process_family(
    family: str, keys: np.ndarray, queries: np.ndarray, repeats: int
) -> dict:
    """Process-executor throughput over a shard sweep, parity-checked.

    Serves each K with K worker processes over shared-memory shard
    views; the best of *repeats* timed passes per K smooths out
    worker warm-up.  Returns per-K rows plus the K=4/K=1 ratio.
    """
    out: dict = {}
    reference = None
    per_k: dict[int, float] = {}
    for k in PROCESS_SHARD_COUNTS:
        spec = ExecutorSpec(kind="process", n_workers=k)
        with IndexService.build(keys, family=family, n_shards=k,
                                executor=spec) as service:
            service.lookup_many(queries[:256])  # warm the IPC path
            best = 0.0
            for __ in range(repeats):
                start = time.perf_counter()
                batch = service.lookup_many(queries)
                wall = time.perf_counter() - start
                best = max(best, queries.size / wall if wall > 0 else 0.0)
            if reference is None:
                with IndexService.build(keys, family=family, n_shards=k) as ser:
                    reference = ser.lookup_many(queries)
            if not (
                np.array_equal(batch.found, reference.found)
                and np.array_equal(batch.values, reference.values)
            ):
                raise AssertionError(f"{family} K={k}: process batch diverged")
            per_k[k] = best
            out[f"K{k}"] = {
                "n_shards": k,
                "process_lookups_per_s": round(best, 1),
            }
    if 1 in per_k and 4 in per_k and per_k[1] > 0:
        out["k4_over_k1_ratio"] = round(per_k[4] / per_k[1], 3)
    return out


def run(quick: bool, out_path: Path, seed: int = 0) -> dict:
    n = 4_000 if quick else 20_000
    n_queries = 8_000 if quick else 40_000
    n_ops = 5_000 if quick else 30_000
    max_workers = 4
    rng = np.random.default_rng(seed)
    keys = np.unique(rng.integers(0, n * 10_000, n))
    queries = rng.choice(keys, n_queries)

    process_repeats = 2 if quick else 3
    serving = {
        "config": {
            "quick": quick,
            "n": n,
            "n_queries": n_queries,
            "n_ops": n_ops,
            "max_workers": max_workers,
            "shard_counts": list(SHARD_COUNTS),
            "process_shard_counts": list(PROCESS_SHARD_COUNTS),
            "cpu_count": os.cpu_count(),
            "seed": seed,
        },
        "scaling": {
            family: bench_family(family, keys, queries, n_ops, max_workers, seed)
            for family in FAMILIES
        },
        "process_scaling": {
            family: bench_process_family(family, keys, queries, process_repeats)
            for family in PROCESS_FAMILIES
        },
    }

    report = {}
    if out_path.exists():
        report = json.loads(out_path.read_text())
    report["serving"] = serving
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return serving


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="JSON report to merge the serving section into",
    )
    args = parser.parse_args(argv)
    serving = run(args.quick, args.out, args.seed)
    for family, sweep in serving["scaling"].items():
        for label, row in sweep.items():
            print(
                f"{family:8s} {label:3s} lookups {row['lookups_per_s']:>12,.0f}/s  "
                f"threaded {row['threaded_lookups_per_s']:>12,.0f}/s  "
                f"mixed {row['mixed_ops_per_s']:>10,.0f} ops/s  "
                f"avg {row['avg_sim_ns']:>6.0f} sim-ns"
            )
    for family, sweep in serving["process_scaling"].items():
        for label, row in sweep.items():
            if not label.startswith("K"):
                continue
            print(
                f"{family:8s} {label:3s} process "
                f"{row['process_lookups_per_s']:>12,.0f}/s"
            )
        ratio = sweep.get("k4_over_k1_ratio")
        if ratio is not None:
            print(f"{family:8s} K4/K1 process scaling ratio {ratio:.2f}")
    print(f"wrote serving section to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
