"""Fig. 6 — total query time saved vs smoothing threshold α.

Paper shape: more virtual points save more total time; the easy
datasets (Facebook/Covid) saturate once their CDF is already straight,
while the hard datasets keep gaining; LIPP and SALI behave alike.
"""

from __future__ import annotations

from _shared import ALPHAS, DATASET_NAMES, FAMILIES, alpha_sweep, emit

from repro.evaluation.reporting import ascii_table


def compute():
    return {
        family: {dataset: alpha_sweep(family, dataset) for dataset in DATASET_NAMES}
        for family in FAMILIES
    }


def test_fig06_time_saved_vs_alpha(benchmark):
    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            rows.append(
                [family, dataset] + [r.total_time_saved_ns for r in series]
            )
    emit(
        "fig06_time_saved_vs_alpha",
        ascii_table(
            ["index", "dataset"] + [f"a={a}" for a in ALPHAS], rows
        ),
    )

    for family, per_dataset in sweeps.items():
        saved_any = False
        for dataset, series in per_dataset.items():
            saved = [r.total_time_saved_ns for r in series]
            # Time saved is non-negative at every α.
            assert all(s >= 0.0 for s in saved), (family, dataset, saved)
            if max(saved) > 0:
                saved_any = True
                # Larger budgets never collapse the savings to a
                # fraction of the small-budget result (allow noise).
                assert saved[-1] >= 0.3 * saved[0], (family, dataset, saved)
        assert saved_any, f"{family}: CSV saved no time on any dataset"

    # LIPP and SALI behave alike (SALI is LIPP-based; Section 6.2.1).
    for dataset in DATASET_NAMES:
        lipp_saved = sum(r.total_time_saved_ns for r in sweeps["lipp"][dataset])
        sali_saved = sum(r.total_time_saved_ns for r in sweeps["sali"][dataset])
        if lipp_saved > 0:
            assert sali_saved > 0, dataset
