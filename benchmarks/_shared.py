"""Shared infrastructure for the benchmark harness.

Every bench file reproduces one table or figure of the paper.  The α
sweep behind Figs. 6-8 and Tables 3-4 is expensive, so it is computed
once per (family, dataset) and memoised here for all consumers.

Scale: ``REPRO_BENCH_N`` keys per dataset (default 10 000 — scaled
down from the paper's 200M for pure-Python runtimes; see DESIGN.md).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.evaluation.runner import (
    CsvExperimentRow,
    run_alpha_sweep,
    run_cardinality_sweep,
)

#: The paper's smoothing-threshold grid (Section 6.1).
ALPHAS = (0.05, 0.1, 0.2, 0.4, 0.8)

#: Index families CSV integrates with.
FAMILIES = ("lipp", "sali", "alex")

#: The four evaluation datasets (synthetic analogues).
DATASET_NAMES = ("facebook", "covid", "osm", "genome")


def bench_n() -> int:
    """Keys per dataset for the benchmark runs."""
    return int(os.environ.get("REPRO_BENCH_N", "10000"))


@lru_cache(maxsize=None)
def alpha_sweep(family: str, dataset: str) -> tuple[CsvExperimentRow, ...]:
    """Memoised α sweep for one (family, dataset) cell."""
    return tuple(run_alpha_sweep(family, dataset, alphas=ALPHAS, n=bench_n()))


@lru_cache(maxsize=None)
def cardinality_sweep(family: str, dataset: str) -> tuple[CsvExperimentRow, ...]:
    """Memoised Fig. 9 sweep for one (family, dataset) cell."""
    return tuple(
        run_cardinality_sweep(
            family,
            dataset,
            fractions=(0.125, 0.25, 0.5, 1.0),
            full_n=bench_n(),
        )
    )


def emit(name: str, content: str) -> None:
    """Print a reproduced table and tee it to ``results/<name>.txt``."""
    from repro.evaluation.reporting import write_result

    banner = f"===== {name} ====="
    print(f"\n{banner}\n{content}")
    write_result(name, content)
