"""Benchmark-suite configuration.

Benches run with ``pytest benchmarks/ --benchmark-only``.  Each test
wraps its figure/table computation in ``benchmark.pedantic(...,
rounds=1)`` — the computation *is* the measured workload — and prints
plus persists the reproduced table under ``results/``.
"""

import sys
from pathlib import Path

# Make the sibling `_shared` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))
