"""Ablation — workload-aware (weighted) smoothing extension.

SALI (Section 2.2) motivates workload awareness: frequently queried
keys matter more.  Claims checked:

* under a skewed workload, weighting the hot keys yields a lower
  *weighted* loss than the same budget spent uniformly;
* uniform weights reproduce the unweighted objective's behaviour.
"""

from __future__ import annotations

import numpy as np
from _shared import emit

from repro.core.weighted_smoothing import smooth_keys_weighted, weighted_loss
from repro.datasets import load
from repro.evaluation.reporting import ascii_table


def compute():
    keys = load("genome", 3000)
    rng = np.random.default_rng(5)
    # Zipf-flavoured workload: 10% of keys get 90% of the queries.
    weights = np.ones(keys.size)
    hot = rng.choice(keys.size, keys.size // 10, replace=False)
    weights[hot] = 50.0

    budget = 300
    aware = smooth_keys_weighted(keys, weights, budget=budget)
    uniform = smooth_keys_weighted(keys, np.ones(keys.size), budget=budget)
    # Evaluate the uniform run under the true (skewed) workload.
    __, uniform_under_workload = weighted_loss(keys, weights, ranks=uniform.key_ranks)
    return aware, uniform, uniform_under_workload


def test_ablation_workload_aware(benchmark):
    aware, uniform, uniform_under_workload = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    emit(
        "ablation_workload_aware",
        ascii_table(
            ["setting", "weighted loss before", "weighted loss after"],
            [
                ["workload-aware", aware.original_loss, aware.final_loss],
                ["uniform budget, same workload", aware.original_loss, uniform_under_workload],
            ],
        ),
    )

    # Both runs improve their own objectives.
    assert aware.final_loss < aware.original_loss
    assert uniform.final_loss < uniform.original_loss
    # Awareness pays: under the skewed workload the aware placement is
    # at least as good as spending the same budget uniformly.
    assert aware.final_loss <= uniform_under_workload * (1 + 1e-9)
