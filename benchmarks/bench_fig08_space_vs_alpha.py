"""Fig. 8 — promoted data %, storage increase %, node reduction % vs α.

Paper shape: promoted share grows with α (up to ~60% on Facebook);
storage overhead grows with α but stays modest; node reduction tracks
the promoted share.
"""

from __future__ import annotations

from _shared import ALPHAS, DATASET_NAMES, FAMILIES, alpha_sweep, emit

from repro.evaluation.reporting import ascii_table


def compute():
    return {
        family: {dataset: alpha_sweep(family, dataset) for dataset in DATASET_NAMES}
        for family in FAMILIES
    }


def test_fig08_space_vs_alpha(benchmark):
    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            for row in series:
                rows.append(
                    [
                        family,
                        dataset,
                        row.alpha,
                        row.promoted_pct,
                        row.storage_increase_pct,
                        row.node_reduction_pct,
                        row.virtual_points,
                    ]
                )
    emit(
        "fig08_space_vs_alpha",
        ascii_table(
            [
                "index",
                "dataset",
                "alpha",
                "promoted %",
                "storage +%",
                "node reduction %",
                "virtual points",
            ],
            rows,
        ),
    )

    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            promoted = [r.promoted_pct for r in series]
            virtual = [r.virtual_points for r in series]
            # More budget → more virtual points (monotone in α).
            assert virtual == sorted(virtual), (family, dataset, virtual)
            # Promoted share at the largest α at least matches the
            # smallest α (within noise).
            assert promoted[-1] >= promoted[0] - 5.0, (family, dataset, promoted)
            # Storage overhead stays bounded (paper: < 31% worst case;
            # our slot-frugal LIPP can even shrink — see EXPERIMENTS.md).
            for r in series:
                assert r.storage_increase_pct < 60.0, (family, dataset, r.alpha)

    # The headline claim: some dataset promotes a large share of its
    # promotable keys on the LIPP-family indexes.
    for family in ("lipp", "sali"):
        best = max(
            r.promoted_pct
            for per in sweeps[family].values()
            for r in per
        )
        assert best > 25.0, f"{family}: best promoted share only {best:.1f}%"
