"""Fig. 4 — first-order partial derivative of the loss per candidate.

Paper shape: within the sub-sequence containing the optimal virtual
point the derivative crosses zero (negative then positive); the
filter therefore keeps only the crossing point for such gaps and only
the endpoints elsewhere.
"""

from __future__ import annotations

import numpy as np
from _shared import emit

from repro.core.candidates import derivative_curve, loss_curve
from repro.core.segment_stats import SegmentStats
from repro.datasets import FIG2_TOY_KEYS
from repro.evaluation.reporting import ascii_table


def compute():
    stats = SegmentStats(FIG2_TOY_KEYS)
    dvalues, derivs = derivative_curve(stats)
    lvalues, losses = loss_curve(stats)
    return dvalues, derivs, lvalues, losses


def test_fig04_derivative_curve(benchmark):
    dvalues, derivs, lvalues, losses = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "fig04_derivative_curve",
        ascii_table(
            ["virtual point value", "dLoss/dValue"],
            [[int(v), float(d)] for v, d in zip(dvalues, derivs)],
        ),
    )

    assert np.array_equal(dvalues, lvalues)
    best = int(lvalues[np.argmin(losses)])
    # Sign change brackets the optimum inside its gap (14..22).
    gap_mask = (dvalues >= 14) & (dvalues <= 22)
    gap_derivs = derivs[gap_mask]
    assert gap_derivs.min() < 0 < gap_derivs.max()
    # The derivative is negative just before the minimum and
    # non-negative after it.
    before = derivs[(dvalues >= 14) & (dvalues < best)]
    after = derivs[(dvalues > best) & (dvalues <= 22)]
    assert np.all(before <= 0)
    assert np.all(after >= 0)
