"""Table 2 — greedy (CSV) vs exhaustive smoothing quality and time.

Paper numbers on the 10-key example at α = 0.5: loss 8.327 → 2.293
(greedy) vs 2.118 (exhaustive); the exhaustive search takes ~3 orders
of magnitude longer.  Shape: greedy within a few percent of optimal,
exhaustive vastly slower.
"""

from __future__ import annotations

from _shared import emit

from repro.core.smoothing import smooth_keys, smooth_keys_exhaustive
from repro.datasets import FIG2_TOY_KEYS
from repro.evaluation.reporting import ascii_table


def compute():
    greedy = smooth_keys(FIG2_TOY_KEYS, alpha=0.5)
    exhaustive = smooth_keys_exhaustive(FIG2_TOY_KEYS, alpha=0.5)
    return greedy, exhaustive


def test_table2_approximation_quality(benchmark):
    greedy, exhaustive = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "table2_approximation_quality",
        ascii_table(
            ["", "Exhaustive", "CSV (greedy)", "Original"],
            [
                ["Loss", exhaustive.final_loss, greedy.final_loss, greedy.original_loss],
                [
                    "Time (s)",
                    exhaustive.elapsed_seconds,
                    greedy.elapsed_seconds,
                    "N/A",
                ],
            ],
        ),
    )

    # Shape checks mirroring the paper's Table 2:
    assert exhaustive.final_loss <= greedy.final_loss + 1e-9
    greedy_improvement = greedy.loss_improvement_pct
    exhaustive_improvement = exhaustive.loss_improvement_pct
    assert greedy_improvement > 70.0          # paper: 72.34 %
    assert exhaustive_improvement > greedy_improvement - 1e-9  # paper: 74.44 %
    assert exhaustive_improvement - greedy_improvement < 10.0  # near-optimal greedy
    # Exhaustive is orders of magnitude slower (paper: ~330x; we
    # require >= 30x to stay robust across machines).
    assert exhaustive.elapsed_seconds > 30 * max(greedy.elapsed_seconds, 1e-6)
