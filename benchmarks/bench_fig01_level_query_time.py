"""Fig. 1 — average query time per LIPP level on the four datasets.

Paper shape: query time grows with the level at which a key is
stored; deeper levels (created for harder key-space regions) are
slower on every dataset.
"""

from __future__ import annotations

from _shared import DATASET_NAMES, bench_n, emit

from repro.evaluation.reporting import ascii_table
from repro.evaluation.runner import run_level_query_times


def compute():
    rows = {}
    for dataset in DATASET_NAMES:
        rows[dataset] = run_level_query_times("lipp", dataset, n=bench_n())
    return rows


def test_fig01_level_query_time(benchmark):
    per_dataset = benchmark.pedantic(compute, rounds=1, iterations=1)

    table_rows = []
    for dataset, rows in per_dataset.items():
        for row in rows:
            table_rows.append(
                [dataset, row.level, row.n_keys_at_level, row.avg_simulated_ns]
            )
    emit(
        "fig01_level_query_time",
        ascii_table(
            ["dataset", "level", "keys at level", "avg query (sim ns)"], table_rows
        ),
    )

    for dataset, rows in per_dataset.items():
        costs = [r.avg_simulated_ns for r in rows]
        # Paper shape: deeper level → strictly higher average time.
        assert costs == sorted(costs), f"{dataset}: levels not monotone {costs}"
        assert len(rows) >= 2, f"{dataset}: index should have >= 2 levels"
