"""Ablation — CSV vs Gap Insertion vs poisoning direction (Table 1).

Claims checked:
* GI straightens the layout but pays with overflow keys and a large
  storage expansion (the paper cites up to 87%); CSV's virtual points
  keep the overhead a controllable α fraction.
* The poisoning machinery CSV inverts really does move the loss the
  other way from the same starting set.
* The learned indexes beat the classical B+-tree on traversal depth,
  motivating the learned-index substrate choice.
"""

from __future__ import annotations

import numpy as np
from _shared import emit

from repro.core.gap_insertion import build_gap_insertion
from repro.core.poisoning import poison_keys
from repro.core.smoothing import smooth_keys
from repro.datasets import load
from repro.evaluation.reporting import ascii_table
from repro.indexes import BPlusTree, LippIndex
from repro.workloads import profile_queries, sample_queries


def compute():
    keys = load("facebook", 4000)
    budget = 400
    smoothed = smooth_keys(keys, budget=budget)
    poisoned = poison_keys(keys, budget=budget)
    gi = build_gap_insertion(keys, gap_factor=1.0 + budget / keys.size)

    rng = np.random.default_rng(0)
    queries = sample_queries(keys, 800, rng)
    lipp = profile_queries(LippIndex.build(keys), queries)
    btree = profile_queries(BPlusTree.build(keys), queries)
    return keys, smoothed, poisoned, gi, lipp, btree


def test_ablation_baselines(benchmark):
    keys, smoothed, poisoned, gi, lipp, btree = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    smoothed_overhead = 100.0 * smoothed.n_virtual / keys.size
    emit(
        "ablation_baselines",
        ascii_table(
            ["approach", "loss / cost", "storage overhead %", "notes"],
            [
                ["original", smoothed.original_loss, 0.0, ""],
                ["CSV smoothing", smoothed.final_loss, smoothed_overhead, "refit model"],
                ["poisoning", poisoned.final_loss, smoothed_overhead, "adversarial"],
                [
                    "gap insertion",
                    "n/a",
                    gi.storage_expansion_pct,
                    f"overflow {gi.overflow_rate_pct:.1f}%",
                ],
            ],
        )
        + f"\nLIPP avg levels {lipp.avg_levels:.2f} vs B+-tree {btree.avg_levels:.2f}",
    )

    # Smoothing and poisoning move the loss in opposite directions.
    assert smoothed.final_loss < smoothed.original_loss < poisoned.final_loss
    # CSV's storage overhead is the controllable α fraction...
    assert smoothed_overhead <= 10.0 + 1e-9
    # ...while GI pays both storage and an overflow search penalty.
    assert gi.storage_expansion_pct >= smoothed_overhead - 1.0
    # Learned substrate motivation: LIPP traverses fewer levels than
    # the B+-tree on the same data.
    assert lipp.avg_levels < btree.avg_levels
