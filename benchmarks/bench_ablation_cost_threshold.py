"""Ablation — cost threshold sensitivity for ALEX (Section 5.1).

Design claim: lowering the threshold ``c`` below zero makes CSV more
selective — fewer rebuilds and fewer promoted keys, but the rebuilds
that do happen are the most profitable ones, so the per-key
improvement does not degrade.
"""

from __future__ import annotations

from _shared import bench_n, emit

from repro.core.csv_algorithm import CsvConfig
from repro.evaluation.reporting import ascii_table
from repro.evaluation.runner import run_csv_experiment


THRESHOLDS = (0.0, -20.0, -60.0)


def compute():
    rows = []
    for threshold in THRESHOLDS:
        row = run_csv_experiment(
            "alex",
            "genome",
            n=bench_n(),
            csv_config=CsvConfig(alpha=0.1, cost_threshold=threshold),
        )
        rows.append((threshold, row))
    return rows


def test_ablation_cost_threshold(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "ablation_cost_threshold",
        ascii_table(
            ["threshold c", "nodes rebuilt", "promoted keys", "improvement %"],
            [
                [t, row.nodes_rebuilt, row.promoted_keys, row.query_improvement_pct]
                for t, row in results
            ],
        ),
    )

    rebuilds = [row.nodes_rebuilt for __, row in results]
    promoted = [row.promoted_keys for __, row in results]
    # Stricter thresholds rebuild (weakly) fewer subtrees and promote
    # (weakly) fewer keys.
    assert rebuilds == sorted(rebuilds, reverse=True), rebuilds
    assert promoted == sorted(promoted, reverse=True), promoted
    # The permissive default must achieve something on genome.
    assert rebuilds[0] > 0
