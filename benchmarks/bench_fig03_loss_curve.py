"""Fig. 3 — loss value for every candidate virtual-point value.

Paper shape: the loss curve over the free values forms per-gap
sub-sequences; every candidate beats no-insertion in some gaps and
the global minimum sits inside the largest sparse gap (value 23 in
the paper's example, the 14-22 gap in our toy set).
"""

from __future__ import annotations

import numpy as np
from _shared import emit

from repro.core.candidates import loss_curve
from repro.core.loss import fit_and_loss
from repro.core.segment_stats import SegmentStats
from repro.datasets import FIG2_TOY_KEYS
from repro.evaluation.reporting import ascii_table


def compute():
    stats = SegmentStats(FIG2_TOY_KEYS)
    values, losses = loss_curve(stats)
    __, base_loss = fit_and_loss(FIG2_TOY_KEYS)
    return values, losses, base_loss


def test_fig03_loss_curve(benchmark):
    values, losses, base_loss = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "fig03_loss_curve",
        ascii_table(
            ["virtual point value", "loss if inserted"],
            [[int(v), float(l)] for v, l in zip(values, losses)],
        )
        + f"\noriginal key set loss: {base_loss:.3f}",
    )

    best = int(values[np.argmin(losses)])
    # Global minimum inside the large sparse gap (Fig. 3's kv1).
    assert 14 <= best <= 22
    # The best insertion strictly reduces the loss.
    assert losses.min() < base_loss
    # Curve covers every free value between min and max key:
    # (29 - 2 - 1) interior integers minus the 8 interior keys.
    assert values.size == 18
