"""Fig. 5 — dataset CDFs, global and zoomed-in.

Paper shape: all datasets except OSM are close to globally linear;
zoomed in, Covid stays linear while Facebook shows variability and
OSM/Genome deviate strongly (Genome most step-like locally).
"""

from __future__ import annotations

from _shared import DATASET_NAMES, bench_n, emit

from repro.datasets import load, local_linearity_profile, summarize, zoomed_window
from repro.evaluation.reporting import ascii_table


def compute():
    summaries = {}
    zoomed = {}
    for name in DATASET_NAMES:
        keys = load(name, bench_n())
        summaries[name] = summarize(name, keys, window=min(1000, bench_n() // 10))
        window = zoomed_window(keys, start_fraction=0.5, width=min(1000, bench_n() // 10))
        zoomed[name] = float(local_linearity_profile(window, window=window.size).mean())
    return summaries, zoomed


def test_fig05_dataset_cdfs(benchmark):
    summaries, zoomed = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit(
        "fig05_dataset_cdfs",
        ascii_table(
            ["dataset", "global R2", "local R2 (mean)", "local R2 (min)", "PLA segments", "zoomed R2"],
            [
                [
                    name,
                    s.global_r2,
                    s.local_r2_mean,
                    s.local_r2_min,
                    s.pla_segments,
                    zoomed[name],
                ]
                for name, s in summaries.items()
            ],
        ),
    )

    # Global: OSM is the least linear dataset (Fig. 5c).
    assert summaries["osm"].global_r2 == min(s.global_r2 for s in summaries.values())
    # All others are near-linear globally (Figs. 5a/5b/5d).
    for name in ("facebook", "covid", "genome"):
        assert summaries[name].global_r2 > 0.98, name
    # Local: Covid stays linear; the hard datasets deviate (Figs. 5e-5h).
    assert summaries["covid"].local_r2_mean > 0.99
    assert summaries["osm"].local_r2_mean < summaries["covid"].local_r2_mean
    assert summaries["genome"].local_r2_mean < summaries["facebook"].local_r2_mean
    # Hardness ranking by PLA segments: easy < hard.
    easy_max = max(summaries["facebook"].pla_segments, summaries["covid"].pla_segments)
    hard_min = min(summaries["osm"].pla_segments, summaries["genome"].pla_segments)
    assert easy_max < hard_min
