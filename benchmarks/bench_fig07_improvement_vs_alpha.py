"""Fig. 7 — query time improvement (%) over the promoted keys vs α.

Paper shape: CSV yields consistent improvements up to 34%, strongest
on LIPP/SALI (pure traversal reduction), smaller but positive on ALEX
(its leaf search offsets part of the gain).
"""

from __future__ import annotations

from _shared import ALPHAS, DATASET_NAMES, FAMILIES, alpha_sweep, emit

from repro.evaluation.reporting import ascii_table


def compute():
    return {
        family: {dataset: alpha_sweep(family, dataset) for dataset in DATASET_NAMES}
        for family in FAMILIES
    }


def test_fig07_improvement_vs_alpha(benchmark):
    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for family, per_dataset in sweeps.items():
        for dataset, series in per_dataset.items():
            rows.append(
                [family, dataset] + [r.query_improvement_pct for r in series]
            )
    emit(
        "fig07_improvement_vs_alpha",
        ascii_table(["index", "dataset"] + [f"a={a}" for a in ALPHAS], rows),
    )

    best = {}
    for family, per_dataset in sweeps.items():
        improvements = [
            r.query_improvement_pct
            for series in per_dataset.values()
            for r in series
            if r.promoted_keys > 0
        ]
        assert improvements, f"{family}: nothing promoted anywhere"
        # Promoted keys are consistently faster (paper: consistent
        # improvements on all three indexes).
        assert max(improvements) > 5.0, family
        assert min(improvements) > -5.0, family  # never materially worse
        best[family] = max(improvements)

    # Strongest gains on the traversal-only indexes (paper: LIPP/SALI
    # benefit more than ALEX).
    assert max(best["lipp"], best["sali"]) >= best["alex"] * 0.8
