"""CI perf-regression gate: compare a fresh ``BENCH_perf.json``
against the committed baseline.

Both reports are flattened to metric leaves: *throughput* metrics
(numeric keys ending in ``_per_s``, higher is better) and *ratio*
metrics (keys named ``speedup`` or ending in ``_ratio`` —
dimensionless same-machine timing ratios, so machine speed cancels
out of them).  The gate then picks the strictest comparison the two
reports support:

* **strict** — the configs match (e.g. a full rerun against the
  committed full baseline): every throughput metric, and every
  speedup at or above ``--min-ratio-speedup``, may drop at most
  ``--max-drop`` (default 30%).
* **ratio** — the configs differ but the baseline embeds a
  ``quick_baseline`` section whose config matches the fresh report
  (the CI case: the committed full run carries a quick pass, CI
  reruns ``--quick`` on a machine of unknown speed): speedup metrics
  whose baseline value is at least ``--min-ratio-speedup`` (default
  1.5) are gated at ``--max-drop``; near-unity speedups are the ratio
  of two nearly identical timings (pure scheduling noise on a shared
  runner) and are demoted to information, as are absolute
  throughputs, which a slower runner shifts uniformly without any
  code regressing.
* **grace** — no like-for-like section exists: throughputs are gated
  with an extra ``--cross-config-grace`` (default 20%) on top of
  ``--max-drop``, a best-effort fallback.

Metrics present in only one report are listed but never fail the run.

Independently of the baseline comparison, ``--floor PATH=VALUE``
(repeatable) imposes an *absolute* minimum on a fresh metric: the run
fails when the metric is missing or below the floor.  Floors are for
dimensionless speedups that must hold on any runner (e.g. the flat
LIPP/SALI lookup path must stay several times faster than the
per-key loop), where a relative gate against a drifting baseline is
not strong enough.

Usage::

    python benchmarks/bench_perf_regression.py --quick --out /tmp/fresh.json
    python benchmarks/check_regression.py --fresh /tmp/fresh.json \
        --floor lookups.lipp.speedup=5

To bless an intentional slowdown, regenerate the baseline with a full
run (which re-records the embedded quick baseline too) and commit it::

    python benchmarks/bench_perf_regression.py   # rewrites BENCH_perf.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Leaf-key suffix marking a throughput metric (higher is better).
THROUGHPUT_SUFFIX = "_per_s"
#: Leaf key of the dimensionless loop-vs-vectorised ratio.
SPEEDUP_KEY = "speedup"
#: Leaf-key suffix of other dimensionless same-machine ratios (e.g.
#: ``metrics_overhead``'s ``throughput_ratio``); classified like
#: ``speedup`` — machine speed cancels, floors gate them absolutely.
RATIO_SUFFIX = "_ratio"


def _is_ratio_key(key: str) -> bool:
    return key == SPEEDUP_KEY or key.endswith(RATIO_SUFFIX)


def collect_metrics(report: dict, prefix: str = "") -> dict[str, float]:
    """Flatten to ``{dotted.path: value}`` over gated metric leaves."""
    out: dict[str, float] = {}
    for key, value in report.items():
        if key == "quick_baseline":
            continue  # embedded section is compared separately
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(collect_metrics(value, path))
        elif isinstance(value, (int, float)) and (
            key.endswith(THROUGHPUT_SUFFIX) or _is_ratio_key(key)
        ):
            out[path] = float(value)
    return out


def pick_mode(baseline: dict, fresh: dict) -> tuple[str, dict]:
    """Choose the comparison mode and the effective baseline report."""
    if baseline.get("config") == fresh.get("config"):
        return "strict", baseline
    quick = baseline.get("quick_baseline")
    if isinstance(quick, dict) and quick.get("config") == fresh.get("config"):
        return "ratio", quick
    return "grace", baseline


def compare(
    baseline: dict,
    fresh: dict,
    max_drop: float,
    cross_config_grace: float,
    min_ratio_speedup: float = 1.5,
) -> tuple[str, float, list[tuple[str, float, float, float, bool]], list[str]]:
    """Return ``(mode, allowed_drop, rows, skipped_paths)``.

    Each row is ``(path, baseline_value, fresh_value, drop, gated)``
    with ``drop = 1 - fresh/baseline`` (negative means faster) and
    *gated* False for information-only rows.  Near-unity speedups
    (baseline below *min_ratio_speedup*) are never gated in any mode:
    they are the ratio of two nearly identical timings, i.e. noise.
    """
    mode, base_report = pick_mode(baseline, fresh)
    if mode == "grace":
        allowed = min(0.95, max_drop + cross_config_grace)
    else:
        allowed = max_drop
    base_metrics = collect_metrics(base_report)
    fresh_metrics = collect_metrics(fresh)
    rows = []
    for path in sorted(base_metrics):
        if path not in fresh_metrics:
            continue
        base_v = base_metrics[path]
        fresh_v = fresh_metrics[path]
        drop = 1.0 - (fresh_v / base_v) if base_v > 0 else 0.0
        leaf = path.rsplit(".", 1)[-1]
        if _is_ratio_key(leaf):
            gated = mode != "grace" and base_v >= min_ratio_speedup
        else:
            gated = mode != "ratio"
        rows.append((path, base_v, fresh_v, drop, gated))
    skipped = sorted(set(base_metrics).symmetric_difference(fresh_metrics))
    return mode, allowed, rows, skipped


def parse_floor(spec: str) -> tuple[str, float]:
    """Parse one ``PATH=VALUE`` floor spec into ``(path, value)``."""
    path, sep, raw = spec.partition("=")
    if not sep or not path:
        raise argparse.ArgumentTypeError(
            f"floor {spec!r} is not of the form PATH=VALUE"
        )
    try:
        value = float(raw)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"floor {spec!r} has a non-numeric value"
        ) from exc
    return path, value


def check_floors(
    fresh_metrics: dict[str, float], floors: list[tuple[str, float]]
) -> list[tuple[str, float, float | None, bool]]:
    """``(path, floor, fresh_value_or_None, ok)`` per requested floor."""
    rows = []
    for path, floor in floors:
        fresh_v = fresh_metrics.get(path)
        rows.append((path, floor, fresh_v, fresh_v is not None and fresh_v >= floor))
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=REPO_ROOT / "BENCH_perf.json",
        help="committed baseline JSON (default: repo BENCH_perf.json)",
    )
    parser.add_argument(
        "--fresh", type=Path, required=True,
        help="freshly produced JSON to gate",
    )
    parser.add_argument(
        "--max-drop", type=float, default=0.30,
        help="fail when a gated metric drops more than this fraction "
             "below baseline (default 0.30)",
    )
    parser.add_argument(
        "--cross-config-grace", type=float, default=0.20,
        help="extra tolerated drop in the grace fallback, when no "
             "like-for-like baseline section exists (default 0.20)",
    )
    parser.add_argument(
        "--min-ratio-speedup", type=float, default=1.5,
        help="in ratio mode, gate only speedups whose baseline is at "
             "least this (near-unity ratios are noise; default 1.5)",
    )
    parser.add_argument(
        "--floor", type=parse_floor, action="append", default=[],
        metavar="PATH=VALUE",
        help="absolute minimum for a fresh metric (dotted path); a "
             "missing metric or one below the floor fails the gate "
             "(repeatable)",
    )
    parser.add_argument(
        "--floors-only", action="store_true",
        help="skip the baseline comparison entirely and check only the "
             "--floor minimums against the fresh report — for absolute "
             "same-machine gates (e.g. process-executor scaling ratios) "
             "where no committed baseline is comparable",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    if args.floors_only:
        if not args.floor:
            print("error: --floors-only requires at least one --floor")
            return 2
        failures = 0
        print(f"perf gate [floors-only]: {len(args.floor)} floor(s)")
        for path, floor, fresh_v, ok in check_floors(
            collect_metrics(fresh), args.floor
        ):
            if not ok:
                failures += 1
            shown = "missing" if fresh_v is None else f"{fresh_v:,.2f}"
            print(
                f"  [{'ok' if ok else 'FAIL':4s}] floor {path:49s} "
                f">= {floor:,.2f}  ({shown})"
            )
        if failures:
            print(f"\n{failures} floor(s) violated.")
            return 1
        print("\nperf gate passed")
        return 0

    baseline = json.loads(args.baseline.read_text())
    mode, allowed, rows, skipped = compare(
        baseline, fresh, args.max_drop, args.cross_config_grace,
        args.min_ratio_speedup,
    )
    gated_rows = [r for r in rows if r[4]]
    if not gated_rows:
        print("error: no overlapping gated metrics to compare")
        return 2

    print(
        f"perf gate [{mode}]: {len(gated_rows)} gated metrics "
        f"({len(rows) - len(gated_rows)} informational), allowed drop {allowed:.0%}"
    )
    failures = 0
    for path, base_v, fresh_v, drop, gated in rows:
        if not gated:
            status = "info"
        elif drop > allowed:
            status = "FAIL"
            failures += 1
        else:
            status = "ok"
        print(
            f"  [{status:4s}] {path:55s} {base_v:>14,.1f} -> {fresh_v:>14,.1f}"
            f"  ({-drop:+.1%})"
        )
    for path in skipped:
        print(f"  [skip] {path} (present in only one report)")
    floor_rows = check_floors(collect_metrics(fresh), args.floor)
    for path, floor, fresh_v, ok in floor_rows:
        if not ok:
            failures += 1
        shown = "missing" if fresh_v is None else f"{fresh_v:,.2f}"
        print(f"  [{'ok' if ok else 'FAIL':4s}] floor {path:49s} >= {floor:,.2f}  ({shown})")
    if failures:
        print(
            f"\n{failures} metric(s) regressed beyond the {allowed:.0%} gate. "
            "If intentional, regenerate the baseline: "
            "python benchmarks/bench_perf_regression.py"
        )
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
