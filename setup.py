"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so that editable
installs (`pip install -e .`) work on offline machines whose pip cannot
bootstrap PEP 660 build isolation.
"""

from setuptools import setup

setup()
