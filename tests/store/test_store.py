"""DurableStore lifecycle: initialize → flush → compact → rebuild.

The load-bearing invariant everywhere: ``load_shard_arrays`` (the
logical state) never changes across a compaction, and ``build_shard``
reconstructs an index whose answers match those arrays bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import IndexStateError
from repro.indexes import INDEX_FAMILIES
from repro.store import (
    DurableStore,
    StoreCorruptionError,
    make_strategy,
)

from .conftest import FAMILY, base_arrays, flush_batch, logical_state


class TestInitialize:
    def test_commits_generation_one(self, store):
        assert store.is_initialized()
        assert store.generation == 1
        assert store.runs_outstanding() == 0
        manifest = store.manifest
        assert manifest.n_shards == 2
        assert all(m.kind == "base" for m in manifest.artefacts)
        assert store.verify() == 2

    def test_reinitialize_rejected(self, store, rng):
        with pytest.raises(IndexStateError, match="already initialized"):
            store.initialize(FAMILY, [0], [None, None], "equi_depth", base_arrays(rng))

    def test_uninitialized_store_refuses_io(self, tmp_path):
        s = DurableStore(tmp_path / "empty")
        assert not s.is_initialized()
        with pytest.raises(IndexStateError, match="not initialized"):
            s.append_run(0, np.arange(3), np.arange(3))
        with pytest.raises(IndexStateError, match="not initialized"):
            s.load_shard_arrays(0)


class TestFlush:
    def test_append_runs_is_one_generation(self, store, rng):
        batches = {0: flush_batch(rng, 0), 1: flush_batch(rng, 1)}
        gen = store.append_runs(batches)
        assert gen == store.generation == 2
        assert store.runs_outstanding() == 2  # one run per shard, same gen

    def test_flushed_keys_visible_last_write_wins(self, store, rng):
        keys, vals = flush_batch(rng, 0)
        store.append_run(0, keys, vals)
        store.append_run(0, keys, vals + 1)  # overwrite same keys
        got_k, got_v = store.load_shard_arrays(0)
        idx = np.searchsorted(got_k, keys)
        assert np.array_equal(got_k[idx], keys)
        assert np.array_equal(got_v[idx], vals + 1)

    def test_empty_batches_commit_nothing(self, store):
        gen = store.generation
        empty = np.empty(0, np.int64)
        assert store.append_runs({0: (empty, empty)}) == gen
        assert store.generation == gen

    def test_unknown_shard_rejected(self, store):
        with pytest.raises(IndexStateError, match="unknown shard"):
            store.append_run(7, np.arange(3), np.arange(3))


class TestCompact:
    @pytest.mark.parametrize("spec", ["tiered:2", "sortmerge"])
    def test_preserves_logical_state(self, store, rng, spec):
        for _ in range(4):
            store.append_runs({0: flush_batch(rng, 0), 1: flush_batch(rng, 1)})
        before = logical_state(store)
        executed = store.compact(make_strategy(spec))
        assert executed > 0
        assert logical_state(store) == before
        assert store.verify() == len(store.manifest.artefacts)

    def test_sortmerge_leaves_zero_runs(self, store, rng):
        for _ in range(3):
            store.append_run(0, *flush_batch(rng, 0))
        store.compact(make_strategy("sortmerge"))
        assert store.runs_outstanding() == 0
        assert store.manifest.base_for(0) is not None

    def test_stale_inputs_deleted_after_commit(self, store, rng, tmp_path):
        for _ in range(3):
            store.append_run(0, *flush_batch(rng, 0))
        live_before = store.manifest.file_names()
        store.compact(make_strategy("sortmerge"))
        on_disk = {p.name for p in store.data_dir.glob("*.npz")}
        assert on_disk == store.manifest.file_names()
        assert not (live_before & on_disk & {  # superseded runs are gone
            n for n in live_before if n.startswith("run-")
        })

    def test_shard_filter(self, store, rng):
        for _ in range(3):
            store.append_runs({0: flush_batch(rng, 0), 1: flush_batch(rng, 1)})
        store.compact(make_strategy("sortmerge"), shard=0)
        assert len(store.manifest.runs_for(0)) == 0
        assert len(store.manifest.runs_for(1)) == 3


class TestRebuild:
    def test_build_shard_matches_arrays(self, store, rng):
        for _ in range(3):
            store.append_run(0, *flush_batch(rng, 0))
        keys, vals = store.load_shard_arrays(0)
        index = store.build_shard(0, INDEX_FAMILIES[FAMILY])
        pairs = index.range_query(int(keys[0]), int(keys[-1]))
        got = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        assert np.array_equal(got[:, 0], keys)
        assert np.array_equal(got[:, 1], vals)

    def test_reopen_same_directory(self, store, rng):
        store.append_runs({0: flush_batch(rng, 0), 1: flush_batch(rng, 1)})
        before = logical_state(store)
        reopened = DurableStore(store.data_dir)
        assert reopened.generation == store.generation
        assert logical_state(reopened) == before


class TestHygiene:
    def test_sweep_removes_orphans(self, store):
        (store.data_dir / "stray.npz").write_bytes(b"junk")
        (store.data_dir / "half.npz.tmp").write_bytes(b"junk")
        removed = store.sweep_orphans()
        assert sorted(removed) == ["half.npz.tmp", "stray.npz"]
        assert store.verify() == 2  # live artefacts untouched

    def test_open_sweeps_automatically(self, store):
        (store.data_dir / "stray.npz").write_bytes(b"junk")
        DurableStore(store.data_dir)
        assert not (store.data_dir / "stray.npz").exists()

    def test_verify_catches_bit_rot(self, store):
        victim = store.manifest.artefacts[0].name
        path = store.data_dir / victim
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(StoreCorruptionError):
            store.verify()
