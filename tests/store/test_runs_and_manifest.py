"""Run files and the manifest: the two primitives everything rests on.

A run file must round-trip bit-exactly and refuse to load when its
bytes drift from the manifest checksum; the manifest must serialise
losslessly, reject foreign format versions, and only ever commit with
a strictly growing generation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.exceptions import IndexStateError
from repro.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    Manifest,
    RunMeta,
    StoreCorruptionError,
    commit_manifest,
    load_manifest,
    read_run_file,
    sorted_unique_run,
    write_run_file,
)


class TestSortedUniqueRun:
    def test_sorts_ascending(self, rng):
        keys = rng.permutation(np.arange(100, dtype=np.int64))
        k, v = sorted_unique_run(keys, keys * 2)
        assert np.array_equal(k, np.arange(100))
        assert np.array_equal(v, k * 2)

    def test_last_write_wins_duplicates(self):
        keys = np.array([5, 3, 5, 3, 9], dtype=np.int64)
        vals = np.array([50, 30, 51, 31, 90], dtype=np.int64)
        k, v = sorted_unique_run(keys, vals)
        assert k.tolist() == [3, 5, 9]
        assert v.tolist() == [31, 51, 90]  # later occurrence won

    def test_empty_batch(self):
        k, v = sorted_unique_run(np.empty(0, np.int64), np.empty(0, np.int64))
        assert k.size == 0 and v.size == 0

    def test_mismatched_shapes_raise(self):
        with pytest.raises(IndexStateError):
            sorted_unique_run(np.arange(3), np.arange(4))


class TestRunFiles:
    def test_roundtrip_bit_exact(self, tmp_path, rng):
        keys = np.unique(rng.integers(-(2**62), 2**62, 500))
        vals = rng.integers(-(2**62), 2**62, keys.size)
        checksum, size = write_run_file(tmp_path, "r.npz", keys, vals)
        assert checksum.startswith("sha256:")
        assert size == (tmp_path / "r.npz").stat().st_size
        k, v = read_run_file(tmp_path, "r.npz", checksum)
        assert np.array_equal(k, keys) and np.array_equal(v, vals)
        assert k.dtype == np.int64 and v.dtype == np.int64

    def test_no_tmp_straggler_after_write(self, tmp_path):
        write_run_file(tmp_path, "r.npz", np.arange(5), np.arange(5))
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupted_bytes_rejected(self, tmp_path):
        checksum, _ = write_run_file(tmp_path, "r.npz", np.arange(5), np.arange(5))
        payload = bytearray((tmp_path / "r.npz").read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (tmp_path / "r.npz").write_bytes(bytes(payload))
        with pytest.raises(StoreCorruptionError, match="checksum mismatch"):
            read_run_file(tmp_path, "r.npz", checksum)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(StoreCorruptionError, match="unreadable"):
            read_run_file(tmp_path, "absent.npz", "sha256:00")


def _meta(name="run-g00000002-s0000.npz", kind="run", shard=0, generation=2):
    return RunMeta(
        name=name,
        kind=kind,
        shard=shard,
        generation=generation,
        n_keys=10,
        min_key=1,
        max_key=99,
        checksum="sha256:deadbeef",
        size_bytes=1234,
    )


def _manifest(artefacts=(), generation=1):
    return Manifest(
        generation=generation,
        family="lipp",
        n_shards=2,
        boundaries=(500,),
        alphas=(0.1, None),
        mode="equi_depth",
        artefacts=tuple(artefacts),
        updated_ts=1.5,
    )


class TestManifest:
    def test_json_roundtrip_lossless(self):
        manifest = _manifest([_meta(), _meta(name="b", kind="base", generation=1)])
        again = Manifest.from_json(json.loads(json.dumps(manifest.to_json())))
        assert again == manifest

    def test_foreign_format_version_rejected(self):
        obj = _manifest().to_json()
        obj["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(IndexStateError, match="format_version"):
            Manifest.from_json(obj)

    def test_views(self):
        base = _meta(name="base", kind="base", shard=1, generation=1)
        young = _meta(name="young", generation=5, shard=1)
        old = _meta(name="old", generation=3, shard=1)
        manifest = _manifest([young, base, old], generation=5)
        assert manifest.base_for(1) == base
        assert manifest.base_for(0) is None
        assert manifest.runs_for(1) == (old, young)  # replay order
        assert manifest.runs_outstanding() == 2
        assert manifest.file_names() == {"base", "young", "old"}

    def test_with_artefacts_bumps_generation(self):
        manifest = _manifest([_meta(name="a"), _meta(name="b")], generation=4)
        nxt = manifest.with_artefacts(
            add=(_meta(name="c"),), remove_names={"a"}
        )
        assert nxt.generation == 5
        assert nxt.file_names() == {"b", "c"}
        assert manifest.generation == 4  # transition is pure

    def test_commit_then_load(self, tmp_path):
        manifest = _manifest([_meta()])
        commit_manifest(tmp_path, manifest)
        loaded = load_manifest(tmp_path)
        assert loaded is not None
        assert loaded.generation == manifest.generation
        assert loaded.artefacts == manifest.artefacts
        assert not list(tmp_path.glob("*.tmp"))

    def test_load_uninitialised_dir_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_commit_rejects_non_growing_generation(self, tmp_path):
        commit_manifest(tmp_path, _manifest(generation=3))
        with pytest.raises(IndexStateError, match="must grow"):
            commit_manifest(tmp_path, _manifest(generation=3))
        with pytest.raises(IndexStateError, match="must grow"):
            commit_manifest(tmp_path, _manifest(generation=2))
        assert load_manifest(tmp_path).generation == 3

    def test_committed_file_is_stable_json(self, tmp_path):
        commit_manifest(tmp_path, _manifest([_meta()]))
        obj = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert obj["format_version"] == FORMAT_VERSION
        assert obj["service"]["family"] == "lipp"
        assert obj["artefacts"][0]["checksum"].startswith("sha256:")
