"""Shared fixtures for the durable-store suite.

Every test here drives a :class:`~repro.store.DurableStore` rooted in
a pytest ``tmp_path``; the helpers build small deterministic two-shard
stores so crash/compaction assertions can name exact keys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import DurableStore

FAMILY = "btree"
N_SHARDS = 2
SPLIT = 50_000


def shard_of(keys: np.ndarray) -> np.ndarray:
    """The store fixture's routing rule: one boundary at SPLIT."""
    return (np.asarray(keys) >= SPLIT).astype(np.int64)


def base_arrays(rng: np.random.Generator, n: int = 400):
    """Two sorted-unique shard (keys, values) pairs below/above SPLIT."""
    lo = np.unique(rng.integers(0, SPLIT, n))
    hi = np.unique(rng.integers(SPLIT, SPLIT * 2, n))
    return [(lo, lo * 3), (hi, hi * 3)]


@pytest.fixture()
def store(tmp_path, rng) -> DurableStore:
    """An initialized two-shard store at generation 1."""
    s = DurableStore(tmp_path / "data")
    s.initialize(
        family=FAMILY,
        boundaries=[SPLIT],
        alphas=[None, None],
        mode="equi_depth",
        shard_arrays=base_arrays(rng),
    )
    return s


def flush_batch(rng: np.random.Generator, shard: int, n: int = 50):
    """A fresh (keys, values) write batch landing in *shard*."""
    lo = 0 if shard == 0 else SPLIT
    keys = np.unique(rng.integers(lo, lo + SPLIT, n))
    return keys, keys * 7


def logical_state(store: DurableStore) -> list[tuple[bytes, bytes]]:
    """Every shard's merged arrays as raw bytes — bit-parity currency."""
    out = []
    for shard in range(store.manifest.n_shards):
        k, v = store.load_shard_arrays(shard)
        out.append((k.tobytes(), v.tobytes()))
    return out
