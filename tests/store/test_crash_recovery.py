"""Crash recovery: kill -9 at every named step, reopen, demand parity.

Each test launches a subprocess that runs a deterministic workload
with ``REPRO_STORE_CRASH`` armed immediately before its final
operation, so SIGKILL lands *inside* a flush or a compaction.  The
parent then reopens the half-written directory and asserts bit-parity
— per-shard merged arrays and manifest generation — against an
uninterrupted twin stopped at the boundary the crash point implies:
points before the manifest commit recover to the state *without* the
final op, points after it to the state *with* it.  There is no third
outcome.

The hypothesis test pins the generalisation: for a random op
sequence, *every* prefix of completed generations (each committed
directory state, snapshotted via copytree) reopens cleanly, passes
``verify()``, and reads back the exact logical state it was
snapshotted with.
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import DurableStore, make_strategy

from .conftest import FAMILY, logical_state

SRC = str(Path(__file__).resolve().parents[2] / "src")

# The same workload body runs in the crashing subprocess (via -c) and
# in-process for the uninterrupted twin — one source of truth.
WORKLOAD = """
import numpy as np
from repro.store import DurableStore, make_strategy

def batch(i, shard):
    rng = np.random.default_rng(100 + 10 * i + shard)
    lo = shard * 50_000
    keys = np.unique(rng.integers(lo, lo + 50_000, 60))
    return keys, keys * 10 + i

def run_workload(data_dir, n_flushes, compact, arm=None):
    import os
    store = DurableStore(data_dir)
    if not store.is_initialized():
        base0 = batch(0, 0)
        base1 = batch(0, 1)
        store.initialize(
            family={family!r}, boundaries=[50_000], alphas=[None, None],
            mode="equi_depth", shard_arrays=[base0, base1],
        )
    for i in range(1, n_flushes + 1):
        if arm and arm[0] == "flush" and i == n_flushes:
            os.environ["REPRO_STORE_CRASH"] = arm[1]
        store.append_runs({{0: batch(i, 0), 1: batch(i, 1)}})
    if compact != "none":
        if arm and arm[0] == "compact":
            os.environ["REPRO_STORE_CRASH"] = arm[1]
        store.compact(make_strategy(compact))
    return store
""".format(family=FAMILY)

_NS = {}
exec(WORKLOAD, _NS)
run_workload = _NS["run_workload"]


def crash_child(data_dir: Path, n_flushes: int, compact: str, arm) -> int:
    """Run the workload in a subprocess armed to die; returns returncode."""
    code = (
        "import sys\n"
        f"sys.path.insert(0, {SRC!r})\n"
        + WORKLOAD
        + f"\nrun_workload({str(data_dir)!r}, {n_flushes}, {compact!r}, {tuple(arm)!r})\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, timeout=120
    )
    return proc.returncode


def parity(data_dir: Path, twin: DurableStore) -> None:
    recovered = DurableStore(data_dir)  # reopen sweeps orphans itself
    assert recovered.generation == twin.generation
    assert logical_state(recovered) == logical_state(twin)
    assert recovered.verify() == len(recovered.manifest.artefacts)
    on_disk = {p.name for p in Path(data_dir).glob("*")} - {"MANIFEST.json"}
    assert on_disk == recovered.manifest.file_names()  # no stragglers


# Crash points inside a flush, split by which side of the manifest
# commit they land on (the commit IS the os.replace of MANIFEST.json).
FLUSH_BEFORE_COMMIT = [
    "run.after_tmp", "run.after_rename",
    "flush.before_commit", "manifest.before_rename",
]
FLUSH_AFTER_COMMIT = ["manifest.after_rename", "flush.after_commit"]


class TestCrashMidFlush:
    @pytest.mark.parametrize("point", FLUSH_BEFORE_COMMIT)
    def test_pre_commit_crash_recovers_previous_generation(self, tmp_path, point):
        rc = crash_child(tmp_path / "crash", 3, "none", ("flush", point))
        assert rc == -9, f"expected SIGKILL at {point}, got rc={rc}"
        twin = run_workload(tmp_path / "twin", 2, "none")  # final flush lost
        parity(tmp_path / "crash", twin)

    @pytest.mark.parametrize("point", FLUSH_AFTER_COMMIT)
    def test_post_commit_crash_recovers_new_generation(self, tmp_path, point):
        rc = crash_child(tmp_path / "crash", 3, "none", ("flush", point))
        assert rc == -9
        twin = run_workload(tmp_path / "twin", 3, "none")  # final flush durable
        parity(tmp_path / "crash", twin)


class TestCrashMidCompaction:
    @pytest.mark.parametrize("point", ["compact.after_write", "manifest.before_rename"])
    def test_pre_commit_crash_leaves_inputs_live(self, tmp_path, point):
        rc = crash_child(tmp_path / "crash", 4, "sortmerge", ("compact", point))
        assert rc == -9
        twin = run_workload(tmp_path / "twin", 4, "none")  # compaction lost
        parity(tmp_path / "crash", twin)
        assert DurableStore(tmp_path / "crash").runs_outstanding() == 4 * 2

    @pytest.mark.parametrize(
        "point", ["manifest.after_rename", "compact.after_commit"]
    )
    def test_post_commit_crash_keeps_first_plan(self, tmp_path, point):
        # Each plan is its own commit, and the crash fires on the first
        # one (shard 0): its fold stands — even though the superseded
        # inputs were never unlinked — while shard 1's never ran.
        rc = crash_child(tmp_path / "crash", 4, "sortmerge", ("compact", point))
        assert rc == -9
        twin = run_workload(tmp_path / "twin", 4, "none")
        recovered = DurableStore(tmp_path / "crash")
        assert recovered.generation == twin.generation + 1
        assert logical_state(recovered) == logical_state(twin)
        assert recovered.verify() == len(recovered.manifest.artefacts)
        assert len(recovered.manifest.runs_for(0)) == 0  # fold committed
        assert len(recovered.manifest.runs_for(1)) == 4  # fold lost
        on_disk = {p.name for p in (tmp_path / "crash").glob("*")}
        assert on_disk - {"MANIFEST.json"} == recovered.manifest.file_names()

    def test_tiered_crash_mid_pass(self, tmp_path):
        # Tiered compaction of 4 equal-size runs per shard: dying after
        # the first plan's commit keeps that merge and loses the rest.
        rc = crash_child(tmp_path / "crash", 4, "tiered:2", ("compact", "compact.after_commit"))
        assert rc == -9
        recovered = DurableStore(tmp_path / "crash")
        twin = run_workload(tmp_path / "twin", 4, "none")
        assert logical_state(recovered) == logical_state(twin)
        assert recovered.verify() == len(recovered.manifest.artefacts)


class TestUninterruptedControl:
    def test_workload_without_arming_just_runs(self, tmp_path):
        store = run_workload(tmp_path / "d", 3, "sortmerge")
        assert store.generation >= 4
        assert store.runs_outstanding() == 0


OPS = st.lists(
    st.sampled_from(["flush0", "flush1", "flushboth", "tiered", "sortmerge"]),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=OPS)
def test_any_prefix_of_completed_generations_reopens_cleanly(ops):
    """Every committed directory state is a valid recovery target."""
    batch = _NS["batch"]
    with tempfile.TemporaryDirectory(prefix="store_prefix_") as root:
        root = Path(root)
        live = root / "live"
        store = run_workload(live, 0, "none")  # initialize only
        prefixes = []  # (snapshot_dir, expected generation, expected state)

        def snap():
            dst = root / f"gen-{store.generation:04d}-{len(prefixes)}"
            shutil.copytree(live, dst)
            prefixes.append((dst, store.generation, logical_state(store)))

        snap()
        for i, op in enumerate(ops, start=1):
            if op == "flush0":
                store.append_runs({0: batch(i, 0)})
            elif op == "flush1":
                store.append_runs({1: batch(i, 1)})
            elif op == "flushboth":
                store.append_runs({0: batch(i, 0), 1: batch(i, 1)})
            elif op == "tiered":
                store.compact(make_strategy("tiered:2"))
            else:
                store.compact(make_strategy("sortmerge"))
            snap()

        for snap_dir, generation, expected in prefixes:
            reopened = DurableStore(snap_dir)
            assert reopened.generation == generation
            assert reopened.verify() == len(reopened.manifest.artefacts)
            assert logical_state(reopened) == expected
