"""Compaction planners: what gets folded, and the adjacency invariant.

Runs carry no per-key timestamps — last-write-wins lives entirely in
replay order — so the size-tiered planner may only group runs that are
*consecutive* in a shard's generation order.  These tests pin that
invariant with a hand-built manifest where naive size-bucketing would
merge around a surviving younger run.
"""

from __future__ import annotations

import pytest

from repro.store import (
    Manifest,
    RunMeta,
    SizeTieredStrategy,
    SortMergeStrategy,
    make_strategy,
)


def run_meta(generation: int, size: int, shard: int = 0, kind: str = "run"):
    return RunMeta(
        name=f"{kind}-g{generation:08d}-s{shard:04d}.npz",
        kind=kind,
        shard=shard,
        generation=generation,
        n_keys=size // 16,
        min_key=0,
        max_key=10**6,
        checksum="sha256:ff",
        size_bytes=size,
    )


def manifest_of(*artefacts: RunMeta, n_shards: int = 1) -> Manifest:
    return Manifest(
        generation=max((m.generation for m in artefacts), default=1),
        family="lipp",
        n_shards=n_shards,
        boundaries=(),
        alphas=(None,) * n_shards,
        mode="equi_depth",
        artefacts=artefacts,
    )


SMALL, BIG = 1_000, 1_000_000  # different log2 tiers


class TestSizeTiered:
    def test_groups_consecutive_same_tier_runs(self):
        manifest = manifest_of(*(run_meta(g, SMALL) for g in range(2, 7)))
        plans = SizeTieredStrategy(min_runs=4).plan(manifest)
        assert len(plans) == 1
        assert plans[0].output_kind == "run"
        assert [m.generation for m in plans[0].inputs] == [2, 3, 4, 5, 6]

    def test_never_merges_around_a_surviving_run(self):
        # g2,g3 small | g4 BIG | g5,g6 small: the four small runs share
        # a tier but merging them would replay g2/g3 after g4.  Only
        # consecutive groups are eligible, and both are under min_runs.
        manifest = manifest_of(
            run_meta(2, SMALL),
            run_meta(3, SMALL),
            run_meta(4, BIG),
            run_meta(5, SMALL),
            run_meta(6, SMALL),
        )
        assert SizeTieredStrategy(min_runs=3).plan(manifest) == []

    def test_below_min_runs_no_plan(self):
        manifest = manifest_of(*(run_meta(g, SMALL) for g in range(2, 5)))
        assert SizeTieredStrategy(min_runs=4).plan(manifest) == []

    def test_bases_never_touched(self):
        manifest = manifest_of(
            run_meta(1, BIG, kind="base"),
            *(run_meta(g, SMALL) for g in range(2, 7)),
        )
        (plan,) = SizeTieredStrategy(min_runs=4).plan(manifest)
        assert all(m.kind == "run" for m in plan.inputs)

    def test_plans_per_shard(self):
        manifest = manifest_of(
            *(run_meta(g, SMALL, shard=0) for g in range(2, 6)),
            *(run_meta(g, SMALL, shard=1) for g in range(2, 6)),
            n_shards=2,
        )
        plans = SizeTieredStrategy(min_runs=4).plan(manifest)
        assert sorted(p.shard for p in plans) == [0, 1]

    def test_min_runs_validated(self):
        with pytest.raises(ValueError):
            SizeTieredStrategy(min_runs=1)


class TestSortMerge:
    def test_folds_base_and_all_runs(self):
        base = run_meta(1, BIG, kind="base")
        manifest = manifest_of(base, run_meta(2, SMALL), run_meta(3, SMALL))
        (plan,) = SortMergeStrategy(max_runs=1).plan(manifest)
        assert plan.output_kind == "base"
        assert plan.inputs[0] == base
        assert [m.generation for m in plan.inputs] == [1, 2, 3]

    def test_respects_max_runs_bound(self):
        manifest = manifest_of(run_meta(2, SMALL), run_meta(3, SMALL))
        assert SortMergeStrategy(max_runs=3).plan(manifest) == []
        assert len(SortMergeStrategy(max_runs=2).plan(manifest)) == 1

    def test_shard_with_no_runs_skipped(self):
        manifest = manifest_of(run_meta(1, BIG, kind="base"))
        assert SortMergeStrategy(max_runs=1).plan(manifest) == []

    def test_max_runs_validated(self):
        with pytest.raises(ValueError):
            SortMergeStrategy(max_runs=0)


class TestMakeStrategy:
    def test_parses_names_and_bounds(self):
        assert isinstance(make_strategy("tiered"), SizeTieredStrategy)
        assert isinstance(make_strategy("sortmerge"), SortMergeStrategy)
        assert make_strategy("tiered:8").min_runs == 8
        assert make_strategy("sortmerge:4").max_runs == 4
        assert make_strategy(" Tiered ").min_runs == 4  # default bound

    def test_rejects_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown compaction strategy"):
            make_strategy("leveled")
