"""Tests for dataset generators, loader, and CDF utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.datasets import (
    DATASETS,
    EASY_DATASETS,
    FIG2_TOY_KEYS,
    HARD_DATASETS,
    cardinality_series,
    clear_cache,
    downsample,
    empirical_cdf,
    generate,
    linearity_r2,
    load,
    local_linearity_profile,
    pla_segment_count,
    summarize,
    zoomed_window,
)

N = 4000


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_size_sorted_unique(self, name):
        keys = generate(name, N)
        assert keys.size == N
        assert np.all(np.diff(keys) > 0)
        assert keys.dtype == np.int64

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_deterministic(self, name):
        assert np.array_equal(generate(name, N, seed=7), generate(name, N, seed=7))

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_seed_changes_data(self, name):
        assert not np.array_equal(generate(name, N, seed=1), generate(name, N, seed=2))

    def test_unknown_name(self):
        with pytest.raises(InvalidKeysError):
            generate("nope", N)

    def test_minimum_size_guard(self):
        with pytest.raises(InvalidKeysError):
            generate("covid", 5)

    def test_shape_classes_match_paper(self):
        """Fig. 5: Covid most linear; OSM globally non-linear; Genome
        locally hardest among the globally-linear sets."""
        summaries = {name: summarize(name, generate(name, N)) for name in DATASETS}
        assert summaries["covid"].local_r2_mean > 0.99
        assert summaries["osm"].global_r2 == min(
            s.global_r2 for s in summaries.values()
        )
        for easy in EASY_DATASETS:
            for hard in HARD_DATASETS:
                assert (
                    summaries[easy].local_r2_mean > summaries[hard].local_r2_mean
                ), (easy, hard)

    def test_toy_keys_are_fig2(self):
        assert FIG2_TOY_KEYS.size == 10
        assert FIG2_TOY_KEYS.min() >= 0 and FIG2_TOY_KEYS.max() <= 30


class TestLoader:
    def test_cache_returns_same_object(self):
        clear_cache()
        a = load("covid", 1000)
        b = load("covid", 1000)
        assert a is b

    def test_cached_array_readonly(self):
        keys = load("covid", 1000)
        with pytest.raises(ValueError):
            keys[0] = 1

    def test_different_n_different_entries(self):
        assert load("covid", 1000).size != load("covid", 2000).size

    def test_downsample_size_and_order(self):
        keys = load("facebook", 4000)
        out = downsample(keys, 1000)
        assert out.size <= 1000 * 1.01 and out.size >= 990
        assert np.all(np.diff(out) > 0)

    def test_downsample_subset(self):
        keys = load("facebook", 2000)
        out = downsample(keys, 500)
        assert set(out.tolist()) <= set(keys.tolist())

    def test_downsample_noop_when_small(self):
        keys = np.arange(10)
        assert downsample(keys, 100).size == 10

    def test_downsample_rejects_bad_target(self):
        with pytest.raises(InvalidKeysError):
            downsample(np.arange(10), 0)

    def test_cardinality_series_ladder(self):
        series = cardinality_series("covid", full_size=3200)
        sizes = sorted(series)
        assert len(sizes) == 5
        assert sizes[-1] == 3200
        for size, keys in series.items():
            assert abs(keys.size - size) <= size * 0.02

    def test_env_scale(self, monkeypatch):
        from repro.datasets.loader import default_scale

        monkeypatch.setenv("REPRO_SCALE", "5000")
        assert default_scale() == 5000
        monkeypatch.setenv("REPRO_SCALE", "abc")
        with pytest.raises(InvalidKeysError):
            default_scale()
        monkeypatch.setenv("REPRO_SCALE", "5")
        with pytest.raises(InvalidKeysError):
            default_scale()


class TestCdfUtilities:
    def test_empirical_cdf_range(self):
        keys = load("covid", 2000)
        xs, ys = empirical_cdf(keys, points=100)
        assert xs.size == ys.size == 100
        assert ys[0] == 0.0 and ys[-1] == pytest.approx(1.0)
        assert np.all(np.diff(xs) >= 0)

    def test_empirical_cdf_rejects_empty(self):
        with pytest.raises(InvalidKeysError):
            empirical_cdf(np.empty(0, dtype=np.int64))

    def test_zoomed_window(self):
        keys = load("covid", 4000)
        window = zoomed_window(keys, start_fraction=0.5, width=1000)
        assert window.size == 1000
        assert window[0] == keys[2000]

    def test_zoomed_window_clamps(self):
        keys = np.arange(100)
        window = zoomed_window(keys, start_fraction=0.99, width=1000)
        assert window.size <= 100

    def test_linearity_r2_perfect_line(self):
        assert linearity_r2(np.arange(0, 1000, 7)) == pytest.approx(1.0)

    def test_linearity_r2_bounds(self):
        keys = load("osm", 2000)
        assert 0.0 <= linearity_r2(keys) <= 1.0

    def test_local_profile_shape(self):
        keys = load("genome", 4000)
        profile = local_linearity_profile(keys, window=500, samples=16)
        assert profile.size == 16

    def test_pla_segment_count_hardness_order(self):
        easy = pla_segment_count(load("covid", N))
        hard = pla_segment_count(load("genome", N))
        assert easy < hard
