"""Tests for the distribution building blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.datasets.distributions import (
    block_process,
    cluster_mixture,
    dedupe_to_size,
    gap_process,
)


class TestDedupeToSize:
    def test_exact_size(self, rng):
        raw = rng.integers(0, 10**7, 5000)
        out = dedupe_to_size(raw, 1000)
        assert out.size == 1000

    def test_sorted_unique(self, rng):
        out = dedupe_to_size(rng.integers(0, 10**7, 5000), 800)
        assert np.all(np.diff(out) > 0)

    def test_raises_when_insufficient(self, rng):
        with pytest.raises(InvalidKeysError):
            dedupe_to_size(np.array([1, 2, 3]), 10)

    def test_exact_fit_passthrough(self):
        raw = np.array([5, 1, 3])
        assert dedupe_to_size(raw, 3).tolist() == [1, 3, 5]


class TestGapProcess:
    def test_size_and_order(self, rng):
        keys = gap_process(rng, 2000, mean_gap=50.0)
        assert keys.size == 2000
        assert np.all(np.diff(keys) > 0)

    def test_pure_geometric_is_locally_linear(self, rng):
        from repro.datasets.cdf import local_linearity_profile

        keys = gap_process(rng, 5000, mean_gap=100.0, heavy_tail=0.0)
        profile = local_linearity_profile(keys, window=500)
        assert profile.mean() > 0.99

    def test_heavy_tail_adds_local_variability(self, rng):
        from repro.datasets.cdf import local_linearity_profile

        smooth = gap_process(np.random.default_rng(1), 5000, 100.0, heavy_tail=0.0)
        rough = gap_process(np.random.default_rng(1), 5000, 100.0, heavy_tail=0.1)
        assert (
            local_linearity_profile(rough, window=500).mean()
            < local_linearity_profile(smooth, window=500).mean()
        )


class TestClusterMixture:
    def test_size_and_order(self, rng):
        keys = cluster_mixture(rng, 3000, n_clusters=10)
        assert keys.size == 3000
        assert np.all(np.diff(keys) > 0)

    def test_rejects_zero_clusters(self, rng):
        with pytest.raises(InvalidKeysError):
            cluster_mixture(rng, 100, n_clusters=0)

    def test_clustering_reduces_global_linearity(self, rng):
        from repro.datasets.cdf import linearity_r2

        uniform = gap_process(np.random.default_rng(2), 3000, 1000.0)
        clustered = cluster_mixture(np.random.default_rng(2), 3000, n_clusters=8)
        assert linearity_r2(clustered) < linearity_r2(uniform)


class TestBlockProcess:
    def test_size_and_order(self, rng):
        keys = block_process(rng, 3000, block_size_mean=100, intra_gap_mean=3.0, inter_gap_mean=10**6)
        assert keys.size == 3000
        assert np.all(np.diff(keys) > 0)

    def test_blocks_create_bimodal_gaps(self, rng):
        keys = block_process(rng, 5000, block_size_mean=200, intra_gap_mean=3.0, inter_gap_mean=10**6)
        gaps = np.diff(keys)
        small = np.sum(gaps < 100)
        large = np.sum(gaps > 10**4)
        assert small > large > 0
