"""Stress tests and failure injection across the public API.

These tests widen coverage beyond the per-module suites: mixed
insert/lookup fuzzing against a dict oracle, adversarial key
distributions, and systematic bad-input sweeps over every public entry
point (errors must be this package's exception types, never silent
corruption or foreign tracebacks).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CsvConfig,
    InvalidKeysError,
    ReproError,
    SmoothingBudgetError,
    adapter_for,
    apply_csv,
    smooth_keys,
)
from repro.indexes import AlexIndex, BPlusTree, LippIndex, SaliIndex

operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "lookup", "lookup_missing"]),
        st.integers(min_value=0, max_value=50_000),
    ),
    min_size=10,
    max_size=250,
)


@pytest.mark.parametrize("cls", [LippIndex, AlexIndex, SaliIndex, BPlusTree])
class TestMixedWorkloadFuzz:
    @settings(max_examples=20, deadline=None)
    @given(ops=operations)
    def test_mixed_ops_match_oracle(self, cls, ops):
        base = np.asarray([10, 1_000, 40_000, 90_000], dtype=np.int64)
        index = cls.build(base)
        oracle = {int(k): int(k) for k in base}
        for op, key in ops:
            if op == "insert":
                index.insert(key, key * 3)
                oracle[key] = key * 3
            elif op == "lookup":
                probe = key if key in oracle else next(iter(oracle))
                assert index.lookup(probe) == oracle[probe]
            else:
                if key not in oracle:
                    assert index.lookup(key) is None
        assert index.n_keys == len(oracle)
        assert list(index.iter_keys()) == sorted(oracle)


class TestAdversarialDistributions:
    def test_two_extreme_clusters(self):
        """Min/max keys 2^62 apart with dense clusters at both ends."""
        left = np.arange(0, 3000, 3, dtype=np.int64)
        right = (2**62) + np.arange(0, 3000, 3, dtype=np.int64)
        keys = np.concatenate([left, right])
        for cls in (LippIndex, AlexIndex):
            index = cls.build(keys)
            for key in keys[::97].tolist():
                assert index.lookup(int(key)) == int(key), cls.name

    def test_geometric_key_growth(self):
        """Exponentially growing keys: worst case for one linear model."""
        keys = np.unique((2.0 ** np.arange(1, 60, 0.5)).astype(np.int64))
        for cls in (LippIndex, AlexIndex, SaliIndex):
            index = cls.build(keys)
            index.verify_against(keys, keys)

    def test_smoothing_on_extreme_span(self):
        keys = np.asarray([0, 1, 2, 2**61, 2**61 + 1, 2**61 + 7], dtype=np.int64)
        result = smooth_keys(keys, budget=3)
        assert result.final_loss <= result.original_loss + 1e-6
        assert all(0 < v < 2**61 + 7 for v in result.virtual_points)

    def test_csv_on_extreme_span(self):
        rng = np.random.default_rng(0)
        keys = np.unique(
            np.concatenate(
                [
                    rng.integers(0, 10_000, 1500),
                    2**60 + rng.integers(0, 10_000, 1500),
                ]
            )
        )
        index = LippIndex.build(keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
        index.verify_against(keys, keys)


class TestBadInputSweep:
    """Every public entry point must fail loudly with a ReproError."""

    BAD_KEY_ARRAYS = (
        [],
        [3, 1, 2],
        [1, 1, 2],
        np.zeros((2, 2), dtype=np.int64),
        [1.5, 2.5],
    )

    @pytest.mark.parametrize("bad", BAD_KEY_ARRAYS, ids=["empty", "unsorted", "dup", "2d", "frac"])
    def test_smooth_keys_rejects(self, bad):
        with pytest.raises(ReproError):
            smooth_keys(bad, alpha=0.1)

    @pytest.mark.parametrize("bad", BAD_KEY_ARRAYS, ids=["empty", "unsorted", "dup", "2d", "frac"])
    def test_index_build_rejects(self, bad):
        for cls in (LippIndex, AlexIndex, SaliIndex, BPlusTree):
            with pytest.raises(ReproError):
                cls.build(bad)

    def test_smoothing_rejects_conflicting_budget(self, small_keys):
        with pytest.raises(SmoothingBudgetError):
            smooth_keys(small_keys, alpha=0.1, budget=5)

    def test_csv_config_rejects_bad_alpha(self):
        with pytest.raises(SmoothingBudgetError):
            CsvConfig(alpha=1.5)

    def test_dataset_generator_rejects_tiny_n(self):
        from repro.datasets import generate

        with pytest.raises(InvalidKeysError):
            generate("osm", 3)

    def test_errors_are_also_builtin_types(self):
        """Library errors subclass the matching builtin for ergonomics."""
        assert issubclass(InvalidKeysError, ValueError)
        assert issubclass(SmoothingBudgetError, ValueError)


class TestScaleSmoke:
    """One larger run to catch quadratic blow-ups early."""

    def test_smoothing_50k_keys_under_budget(self):
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, 10**9, 50_000))
        result = smooth_keys(keys, budget=100)
        assert result.elapsed_seconds < 30.0
        assert result.final_loss < result.original_loss

    def test_lipp_build_and_query_50k(self):
        rng = np.random.default_rng(2)
        keys = np.unique(rng.integers(0, 10**10, 50_000))
        index = LippIndex.build(keys)
        for key in keys[::499].tolist():
            assert index.lookup(key) == key
