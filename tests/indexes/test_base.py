"""Tests for the shared index interface pieces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import CostConstants
from repro.core.exceptions import IndexStateError, KeyNotFoundError
from repro.indexes.base import QueryStats, prepare_key_values
from repro.indexes.sorted_array import SortedArrayIndex


class TestQueryStats:
    def test_simulated_ns_uses_constants(self):
        stats = QueryStats(key=1, found=True, value=1, levels=2, search_steps=3)
        consts = CostConstants(traversal_ns=10.0, search_ns=5.0, base_ns=1.0)
        assert stats.simulated_ns(consts) == pytest.approx(1 + 20 + 15)

    def test_default_constants(self):
        stats = QueryStats(key=1, found=False, value=None, levels=1, search_steps=0)
        assert stats.simulated_ns() == pytest.approx(
            CostConstants().base_ns + CostConstants().traversal_ns
        )

    def test_frozen(self):
        stats = QueryStats(key=1, found=True, value=1, levels=1, search_steps=0)
        with pytest.raises(AttributeError):
            stats.levels = 5  # type: ignore[misc]


class TestPrepareKeyValues:
    def test_default_values_are_keys(self):
        keys, values = prepare_key_values([1, 5, 9])
        assert values.tolist() == [1, 5, 9]

    def test_explicit_values(self):
        __, values = prepare_key_values([1, 2], [10, 20])
        assert values.tolist() == [10, 20]

    def test_rejects_mismatched_values(self):
        with pytest.raises(IndexStateError):
            prepare_key_values([1, 2], [10])


class TestBaseHelpers:
    def test_lookup_strict_raises_on_miss(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        with pytest.raises(KeyNotFoundError):
            index.lookup_strict(int(small_keys[0]) - 1)

    def test_contains(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        assert int(small_keys[3]) in index
        assert (int(small_keys[0]) - 1) not in index

    def test_verify_against_passes(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        index.verify_against(small_keys, small_keys)

    def test_verify_against_detects_corruption(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        wrong = small_keys.copy() + 1
        with pytest.raises(IndexStateError):
            index.verify_against(small_keys, wrong)

    def test_key_levels_vectorises(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        levels = index.key_levels(small_keys[:5])
        assert levels.tolist() == [1] * 5

    def test_batch_stats_order(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        stats = index.batch_stats(small_keys[:4])
        assert [s.key for s in stats] == small_keys[:4].tolist()
