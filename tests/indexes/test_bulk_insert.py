"""Parity suite for the vectorised bulk-ingest path.

``bulk_insert_many`` is *content*-equivalent to the per-key
``insert_many`` loop: after both, an index holds exactly the same key
set and every key looks up to the same value.  The physical layout may
differ (bulk rebuilds produce fresh, well-packed nodes), so parity is
asserted through the lookup interface — found flags and values over
the full merged key set, plus agreeing misses — not through structural
counters.  Covers duplicate keys (within the batch and against stored
keys), boundary-straddling batches, and the empty-index bulk-load
case.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes import INDEX_FAMILIES
from repro.indexes.alex.data_node import AlexDataNode
from repro.indexes.alex.index import AlexIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.lipp.index import LippIndex
from repro.indexes.lipp.node import DEFAULT_SLOT_FACTOR, LippNode
from repro.indexes.sali.index import SaliIndex
from repro.indexes.sorted_array import SortedArrayIndex

BULK_FAMILIES = ("sorted_array", "btree", "alex", "lipp", "sali")
TREE_FAMILIES = ("btree", "alex", "lipp", "sali")

_EMPTY = np.empty(0, dtype=np.int64)


def _empty_index(family):
    """An empty index of *family* (build() requires non-empty keys)."""
    if family == "sorted_array":
        return SortedArrayIndex(_EMPTY.copy(), _EMPTY.copy())
    if family == "btree":
        return BPlusTree()
    if family == "alex":
        return AlexIndex(AlexDataNode.from_sorted(_EMPTY, _EMPTY, level=1))
    root = LippNode.from_keys(_EMPTY, _EMPTY, level=1)
    if family == "lipp":
        return LippIndex(root, DEFAULT_SLOT_FACTOR)
    assert family == "sali"
    return SaliIndex(root, DEFAULT_SLOT_FACTOR)


def assert_content_parity(loop_index, bulk_index, miss_probes=None):
    """Both indexes must hold identical (key, value) contents."""
    loop_keys = np.fromiter(loop_index.iter_keys(), dtype=np.int64)
    bulk_keys = np.fromiter(bulk_index.iter_keys(), dtype=np.int64)
    assert np.array_equal(loop_keys, bulk_keys)
    assert loop_index.n_keys == bulk_index.n_keys == loop_keys.size
    if loop_keys.size:
        loop_batch = loop_index.lookup_many(loop_keys)
        bulk_batch = bulk_index.lookup_many(loop_keys)
        assert bool(np.all(loop_batch.found))
        assert bool(np.all(bulk_batch.found))
        assert np.array_equal(loop_batch.values, bulk_batch.values)
    if miss_probes is not None and miss_probes.size:
        assert not np.any(loop_index.lookup_many(miss_probes).found)
        assert not np.any(bulk_index.lookup_many(miss_probes).found)


@pytest.fixture()
def base_keys(rng):
    return np.unique(rng.integers(10_000, 1_000_000, 2_000))


class TestBulkParity:
    @pytest.mark.parametrize("family", BULK_FAMILIES)
    def test_fresh_sorted_batch(self, family, base_keys, rng):
        fresh = np.setdiff1d(rng.integers(10_000, 1_000_000, 3_000), base_keys)
        loop_index = INDEX_FAMILIES[family].build(base_keys)
        bulk_index = INDEX_FAMILIES[family].build(base_keys)
        loop_index.insert_many(fresh, fresh * 3)
        bulk_index.bulk_insert_many(fresh, fresh * 3)
        miss = np.setdiff1d(
            rng.integers(0, 2_000_000, 200), np.concatenate([base_keys, fresh])
        )
        assert_content_parity(loop_index, bulk_index, miss)

    @pytest.mark.parametrize("family", BULK_FAMILIES)
    def test_unsorted_batch_with_duplicates(self, family, base_keys, rng):
        """Internal duplicates resolve last-wins; stored keys are
        overwritten — exactly as the sequential loop does it."""
        fresh = np.setdiff1d(rng.integers(10_000, 1_000_000, 800), base_keys)
        overwrite = rng.choice(base_keys, 300)
        batch = np.concatenate([fresh, overwrite, fresh[:200], fresh[:50]])
        rng.shuffle(batch)
        values = rng.integers(0, 1 << 40, batch.size)
        loop_index = INDEX_FAMILIES[family].build(base_keys)
        bulk_index = INDEX_FAMILIES[family].build(base_keys)
        loop_index.insert_many(batch, values)
        bulk_index.bulk_insert_many(batch, values)
        assert_content_parity(loop_index, bulk_index)
        # Spot-check last-wins directly: the final occurrence of a
        # duplicated key in batch order is the stored value.
        dup_key = int(batch[-1])
        last_value = int(values[np.nonzero(batch == dup_key)[0][-1]])
        assert bulk_index.lookup(dup_key) == last_value

    @pytest.mark.parametrize("family", BULK_FAMILIES)
    def test_boundary_straddling_batch(self, family, base_keys, rng):
        """Keys strictly below the stored minimum and above the stored
        maximum (plus the extremes themselves) must merge cleanly."""
        lo, hi = int(base_keys[0]), int(base_keys[-1])
        batch = np.concatenate([
            np.arange(lo - 40, lo + 3),          # straddles the minimum
            np.arange(hi - 2, hi + 40),          # straddles the maximum
            rng.integers(lo, hi, 100),           # interior (may collide)
        ])
        rng.shuffle(batch)
        loop_index = INDEX_FAMILIES[family].build(base_keys)
        bulk_index = INDEX_FAMILIES[family].build(base_keys)
        loop_index.insert_many(batch)
        bulk_index.bulk_insert_many(batch)
        assert_content_parity(loop_index, bulk_index)
        assert bulk_index.lookup(lo - 40) == lo - 40
        assert bulk_index.lookup(hi + 39) == hi + 39

    @pytest.mark.parametrize("family", BULK_FAMILIES)
    def test_empty_index_bulk_load(self, family, rng):
        """Bulk into an empty index is a pure bulk load."""
        batch = rng.integers(0, 10**7, 4_000)
        values = rng.integers(0, 1 << 40, batch.size)
        bulk_index = _empty_index(family)
        bulk_index.bulk_insert_many(batch, values)
        loop_index = _empty_index(family)
        loop_index.insert_many(batch, values)
        assert_content_parity(loop_index, bulk_index)

    @pytest.mark.parametrize("family", BULK_FAMILIES)
    def test_empty_batch_is_noop(self, family, base_keys):
        index = INDEX_FAMILIES[family].build(base_keys)
        index.bulk_insert_many(np.empty(0, dtype=np.int64))
        assert index.n_keys == base_keys.size

    @pytest.mark.parametrize("family", BULK_FAMILIES)
    def test_repeated_bulk_is_stable(self, family, base_keys, rng):
        """Re-ingesting the same batch only overwrites values."""
        batch = rng.choice(base_keys, 500)
        index = INDEX_FAMILIES[family].build(base_keys)
        index.bulk_insert_many(batch, batch + 1)
        n_after_first = index.n_keys
        index.bulk_insert_many(batch, batch + 2)
        assert index.n_keys == n_after_first == base_keys.size
        probe = index.lookup_many(np.unique(batch))
        assert bool(np.all(probe.found))
        assert np.array_equal(probe.values, np.unique(batch) + 2)

    @pytest.mark.parametrize("family", TREE_FAMILIES)
    def test_large_dense_batch(self, family, rng):
        """A batch several times the index size (the merge-heavy
        regime the bulk path exists for) keeps exact content parity."""
        universe = np.unique(rng.integers(0, 10**8, 14_000))
        rng.shuffle(universe)
        base = np.sort(universe[:2_000])
        batch = np.sort(universe[2_000:12_000])
        loop_index = INDEX_FAMILIES[family].build(base)
        bulk_index = INDEX_FAMILIES[family].build(base)
        loop_index.insert_many(batch)
        bulk_index.bulk_insert_many(batch)
        assert_content_parity(loop_index, bulk_index)


def _force_flatten(index, limit=3) -> int:
    """Deterministically flatten up to *limit* root-child subtrees
    (what ``flatten_hot_subtrees`` does, minus the access tracker)."""
    from repro.indexes.sali.flatten import FlattenedNode

    root = index.root
    count = 0
    for slot, child in sorted(root.children.items()):
        if isinstance(child, LippNode) and child.has_subtree and child.n_subtree_keys >= 8:
            keys, values = child.collect_arrays()
            flat = FlattenedNode(keys, values, child.level, index._flatten_epsilon)
            flat.parent = root
            flat.parent_slot = slot
            root.children[slot] = flat
            count += 1
            if count >= limit:
                break
    return count


class TestSaliFlattenedBulk:
    def test_bulk_into_flattened_subtree(self, clustered_keys, rng):
        """Bulk ingest through flattened SALI subtrees keeps content
        parity with the per-key loop."""
        loop_index = INDEX_FAMILIES["sali"].build(clustered_keys)
        bulk_index = INDEX_FAMILIES["sali"].build(clustered_keys)
        assert _force_flatten(loop_index) == _force_flatten(bulk_index) > 0
        # Sparse enough that the root descends instead of rebuilding.
        fresh = np.setdiff1d(
            rng.integers(int(clustered_keys[0]), int(clustered_keys[-1]), 500),
            clustered_keys,
        )[:400]
        loop_index.insert_many(fresh)
        bulk_index.bulk_insert_many(fresh)
        assert_content_parity(loop_index, bulk_index)

    def test_flattened_node_survives_sparse_bulk(self, clustered_keys, rng):
        """A sparse batch routed into a flattened leaf rebuilds it *as
        a flattened node* (the adaptation is preserved, its
        segmentation refreshed in one pass)."""
        index = INDEX_FAMILIES["sali"].build(clustered_keys)
        before = _force_flatten(index)
        assert before > 0
        flat = index.flattened_nodes()[0]
        gaps = np.nonzero(np.diff(flat.keys) > 1)[0]
        assert gaps.size, "flattened span has no free keys to insert"
        new_keys = np.asarray(
            [int(flat.keys[g]) + 1 for g in gaps[:3]], dtype=np.int64
        )
        index.bulk_insert_many(new_keys)
        assert len(index.flattened_nodes()) == before
        probe = index.lookup_many(new_keys)
        assert bool(np.all(probe.found))
        # The rebuilt flattened node covers the new keys.
        refreshed = [
            f for f in index.flattened_nodes() if f.parent_slot == flat.parent_slot
        ]
        assert refreshed and all(
            int(k) in set(refreshed[0].keys.tolist()) for k in new_keys
        )
