"""Property-based flat-vs-node parity for LIPP/SALI.

The flat level-ordered representation (:mod:`repro.indexes.lipp.flat`)
must be observationally identical to the node-object oracle
(``use_flat=False``) for every query the index answers.  Hypothesis
drives the comparison across random key distributions, duplicates,
inserts, sparse and dense bulk merges, CSV-smoothed builds and SALI's
hot-subtree flattening.

Parity contract:

* ``lookup_many`` — exact per-key stats parity (found / value / level /
  search_steps) for any build + ``insert`` history, and for CSV-smoothed
  trees (quadratic models);
* ``bulk_insert_many`` — *content* parity (same sorted key set, same
  values, same total key count).  The physical layouts legitimately
  diverge: the flat path runs the in-place gapped merge while the
  oracle sorted-merge-rebuilds whole subtrees, and rebuilt subtrees
  reset their conflict counters;
* ``range_query`` and the structural introspection helpers — exact
  parity on identical (non-bulk-diverged) trees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.csv_algorithm import CsvConfig, apply_csv
from repro.indexes.adapters import adapter_for
from repro.indexes.lipp.index import LippIndex
from repro.indexes.sali.index import SaliIndex

INDEX_CLASSES = [LippIndex, SaliIndex]

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

key_lists = st.lists(
    st.integers(min_value=0, max_value=1 << 44), min_size=2, max_size=400
)


def _build_pair(cls, raw_keys):
    keys = np.unique(np.asarray(raw_keys, dtype=np.int64))
    values = np.arange(keys.size, dtype=np.int64) * 3
    return keys, cls.build(keys, values), cls.build(keys, values, use_flat=False)


def _assert_stats_parity(flat_stats, oracle_stats):
    assert np.array_equal(flat_stats.found, oracle_stats.found)
    assert np.array_equal(
        flat_stats.values[flat_stats.found], oracle_stats.values[oracle_stats.found]
    )
    assert np.array_equal(flat_stats.levels, oracle_stats.levels)
    assert np.array_equal(flat_stats.search_steps, oracle_stats.search_steps)


def _assert_content_parity(flat_index, oracle_index):
    flat_keys = np.fromiter(flat_index.iter_keys(), dtype=np.int64)
    oracle_keys = np.fromiter(oracle_index.iter_keys(), dtype=np.int64)
    assert np.array_equal(flat_keys, oracle_keys)
    assert flat_index.n_keys == oracle_index.n_keys == flat_keys.size
    if flat_keys.size:
        fs = flat_index.lookup_many(flat_keys)
        os_ = oracle_index.lookup_many(oracle_keys)
        assert bool(np.all(fs.found))
        assert np.array_equal(fs.values, os_.values)


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestLookupParity:
    @SETTINGS
    @given(raw=key_lists, probes=key_lists)
    def test_lookup_many_matches_oracle(self, cls, raw, probes):
        keys, flat, oracle = _build_pair(cls, raw)
        q = np.concatenate([keys, np.asarray(probes, dtype=np.int64)])
        _assert_stats_parity(flat.lookup_many(q), oracle.lookup_many(q))

    @SETTINGS
    @given(raw=key_lists)
    def test_batch_matches_scalar(self, cls, raw):
        keys, flat, __ = _build_pair(cls, raw)
        q = np.concatenate([keys, keys + 1])
        batch = flat.lookup_many(q)
        for j, key in enumerate(q.tolist()):
            scalar = flat.lookup_stats(key)
            assert scalar.found == bool(batch.found[j])
            if scalar.found:
                assert scalar.value == int(batch.values[j])
            assert scalar.levels == int(batch.levels[j])
            assert scalar.search_steps == int(batch.search_steps[j])

    @SETTINGS
    @given(raw=key_lists, extra=key_lists)
    def test_insert_history_parity(self, cls, raw, extra):
        keys, flat, oracle = _build_pair(cls, raw)
        for i, key in enumerate(extra):
            flat.insert(key, i)
            oracle.insert(key, i)
        q = np.concatenate([keys, np.asarray(extra, dtype=np.int64)])
        _assert_stats_parity(flat.lookup_many(q), oracle.lookup_many(q))
        _assert_content_parity(flat, oracle)


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestBulkParity:
    @SETTINGS
    @given(raw=key_lists, batch=key_lists)
    def test_bulk_content_parity(self, cls, raw, batch):
        __, flat, oracle = _build_pair(cls, raw)
        bkeys = np.asarray(batch, dtype=np.int64)
        bvals = np.arange(bkeys.size, dtype=np.int64) + 10_000
        flat.bulk_insert_many(bkeys, bvals)
        oracle.bulk_insert_many(bkeys, bvals)
        _assert_content_parity(flat, oracle)

    @SETTINGS
    @given(raw=key_lists, b1=key_lists, b2=key_lists)
    def test_repeated_bulk_content_parity(self, cls, raw, b1, b2):
        __, flat, oracle = _build_pair(cls, raw)
        for i, batch in enumerate((b1, b2)):
            bkeys = np.asarray(batch, dtype=np.int64)
            bvals = np.full(bkeys.size, 77 + i, dtype=np.int64)
            flat.bulk_insert_many(bkeys, bvals)
            oracle.bulk_insert_many(bkeys, bvals)
        _assert_content_parity(flat, oracle)

    @SETTINGS
    @given(raw=key_lists)
    def test_bulk_duplicates_last_wins(self, cls, raw):
        keys, flat, oracle = _build_pair(cls, raw)
        # Re-insert every existing key (duplicate overwrite) plus its
        # successor (gap/conflict), duplicated within the batch.
        bkeys = np.concatenate([keys, keys, keys + 1])
        bvals = np.concatenate(
            [
                np.zeros(keys.size, dtype=np.int64),
                np.ones(keys.size, dtype=np.int64),
                np.full(keys.size, 2, dtype=np.int64),
            ]
        )
        flat.bulk_insert_many(bkeys, bvals)
        oracle.bulk_insert_many(bkeys, bvals)
        _assert_content_parity(flat, oracle)
        stats = flat.lookup_many(keys)
        # Last wins: an existing key k ends at 1 (second keys section),
        # unless k-1 is also stored — then k == (k-1) + 1 reappears in
        # the successor section, which comes last, and ends at 2.
        expected = np.where(np.isin(keys - 1, keys), 2, 1)
        assert np.array_equal(stats.values, expected)


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestRangeAndIntrospectionParity:
    @SETTINGS
    @given(raw=key_lists, bounds=st.tuples(st.integers(0, 1 << 44), st.integers(0, 1 << 44)))
    def test_range_query_parity(self, cls, raw, bounds):
        __, flat, oracle = _build_pair(cls, raw)
        low, high = min(bounds), max(bounds)
        assert flat.range_query(low, high) == oracle.range_query(low, high)

    @SETTINGS
    @given(raw=key_lists)
    def test_introspection_parity(self, cls, raw):
        keys, flat, oracle = _build_pair(cls, raw)
        assert flat.level_histogram() == oracle.level_histogram()
        assert sum(flat.level_histogram().values()) == keys.size
        assert flat.height() == oracle.height()
        assert flat.node_count() == oracle.node_count()
        assert sorted(flat.node_levels()) == sorted(oracle.node_levels())
        assert flat.size_bytes() == oracle.size_bytes()
        assert flat.empty_slot_fraction() == pytest.approx(oracle.empty_slot_fraction())
        for level in (1, 2, 3):
            assert np.array_equal(
                flat.keys_at_or_below(level), oracle.keys_at_or_below(level)
            )


@pytest.mark.parametrize("cls", INDEX_CLASSES)
class TestCsvSmoothedParity:
    @SETTINGS
    @given(raw=st.lists(st.integers(0, 1 << 38), min_size=64, max_size=300))
    def test_smoothed_lookup_parity(self, cls, raw):
        keys, flat, oracle = _build_pair(cls, raw)
        apply_csv(adapter_for(flat), CsvConfig(alpha=0.2))
        apply_csv(adapter_for(oracle), CsvConfig(alpha=0.2))
        q = np.concatenate([keys, keys + 1])
        _assert_stats_parity(flat.lookup_many(q), oracle.lookup_many(q))
        assert flat.level_histogram() == oracle.level_histogram()
        assert flat.size_bytes() == oracle.size_bytes()


class TestSaliFlattenedParity:
    def _hot_pair(self, rng):
        keys = np.unique(rng.integers(0, 1 << 40, 3000))
        values = np.arange(keys.size, dtype=np.int64)
        flat = SaliIndex.build(keys, values)
        oracle = SaliIndex.build(keys, values, use_flat=False)
        hot = rng.choice(keys[: keys.size // 4], 6000)
        flat.lookup_many(hot)
        oracle.lookup_many(hot)
        assert flat.flatten_hot_subtrees(0.01) == oracle.flatten_hot_subtrees(0.01)
        return keys, hot, flat, oracle

    def test_flattened_lookup_parity(self):
        rng = np.random.default_rng(2024)
        keys, hot, flat, oracle = self._hot_pair(rng)
        assert len(flat.flattened_nodes()) > 0
        q = np.concatenate([keys, rng.integers(0, 1 << 40, 500)])
        _assert_stats_parity(flat.lookup_many(q), oracle.lookup_many(q))
        assert flat.size_bytes() == oracle.size_bytes()
        assert flat.empty_slot_fraction() == pytest.approx(oracle.empty_slot_fraction())

    def test_flattened_bulk_content_parity(self):
        rng = np.random.default_rng(2025)
        keys, __, flat, oracle = self._hot_pair(rng)
        bkeys = np.unique(rng.choice(keys[: keys.size // 4], 200) + 1)
        bvals = np.full(bkeys.size, 5, dtype=np.int64)
        flat.bulk_insert_many(bkeys, bvals)
        oracle.bulk_insert_many(bkeys, bvals)
        _assert_content_parity(flat, oracle)

    def test_access_tracking_parity(self):
        rng = np.random.default_rng(2026)
        keys, __, flat, oracle = self._hot_pair(rng)
        assert flat.tracker.total_queries == oracle.tracker.total_queries
        flat_counts = sorted(n.access_count for n in flat.root.walk())
        oracle_counts = sorted(n.access_count for n in oracle.root.walk())
        assert flat_counts == oracle_counts


class TestFlatCacheLifecycle:
    def test_direct_surgery_requires_invalidate(self):
        rng = np.random.default_rng(7)
        keys = np.unique(rng.integers(0, 1 << 40, 2000))
        index = LippIndex.build(keys)
        index.lookup_many(keys[:10])  # compile the view
        # Structural surgery through the public API invalidates and
        # recompiles transparently.
        index.insert(int(keys[0]) + 1, 1)
        stats = index.lookup_many(np.asarray([int(keys[0]) + 1], dtype=np.int64))
        assert bool(stats.found[0])

    def test_prewarm_is_idempotent(self):
        keys = np.arange(0, 5000, 3, dtype=np.int64)
        index = LippIndex.build(keys)
        index.prewarm_flat()
        view = index._flat_view()
        index.prewarm_flat()
        assert index._flat_view() is view
        index.invalidate_flat()
        assert index._flat_view() is not view

    def test_oracle_mode_never_compiles(self):
        keys = np.arange(0, 3000, 7, dtype=np.int64)
        index = LippIndex.build(keys, use_flat=False)
        index.lookup_many(keys)
        assert index._flat_view() is None
