"""Tests for the B+-tree baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import IndexStateError
from repro.indexes.btree import BPlusTree

key_value_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=99)),
    min_size=1,
    max_size=120,
)


class TestBuild:
    def test_lookup_every_key(self, small_keys):
        tree = BPlusTree.build(small_keys)
        for key in small_keys.tolist():
            stats = tree.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_miss(self, small_keys):
        tree = BPlusTree.build(small_keys)
        assert tree.lookup(int(small_keys[0]) - 1) is None

    def test_custom_values(self):
        tree = BPlusTree.build([1, 2, 3], [10, 20, 30])
        assert tree.lookup(2) == 20

    def test_height_grows_logarithmically(self, rng):
        small = BPlusTree.build(np.unique(rng.integers(0, 10**8, 100)), order=8)
        big = BPlusTree.build(np.unique(rng.integers(0, 10**8, 5000)), order=8)
        assert small.height() < big.height() <= small.height() + 6

    def test_rejects_tiny_order(self):
        with pytest.raises(IndexStateError):
            BPlusTree(order=2)

    def test_empty_build(self):
        tree = BPlusTree.build(np.array([7]))
        assert tree.n_keys == 1


class TestInsert:
    def test_insert_then_lookup(self, small_keys):
        tree = BPlusTree.build(small_keys)
        tree.insert(10**9, 42)
        assert tree.lookup(10**9) == 42

    def test_insert_updates_existing(self, small_keys):
        tree = BPlusTree.build(small_keys)
        key = int(small_keys[0])
        tree.insert(key, 99)
        assert tree.lookup(key) == 99
        assert tree.n_keys == small_keys.size

    def test_sequential_inserts_split(self):
        tree = BPlusTree(order=4)
        for k in range(200):
            tree.insert(k, k)
        assert tree.n_keys == 200
        assert tree.height() > 1
        for k in range(0, 200, 7):
            assert tree.lookup(k) == k

    def test_reverse_inserts(self):
        tree = BPlusTree(order=4)
        for k in range(100, 0, -1):
            tree.insert(k, k)
        assert list(tree.iter_keys()) == list(range(1, 101))

    @settings(max_examples=40, deadline=None)
    @given(ops=key_value_ops)
    def test_matches_dict_oracle(self, ops):
        tree = BPlusTree(order=4)
        oracle: dict[int, int] = {}
        for key, value in ops:
            tree.insert(key, value)
            oracle[key] = value
        assert tree.n_keys == len(oracle)
        for key, value in oracle.items():
            assert tree.lookup(key) == value
        assert list(tree.iter_keys()) == sorted(oracle)


class TestRangeQuery:
    def test_inclusive_bounds(self):
        tree = BPlusTree.build(np.arange(0, 100, 10))
        assert tree.range_query(10, 30) == [(10, 10), (20, 20), (30, 30)]

    def test_crosses_leaves(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 500))
        tree = BPlusTree.build(keys, order=8)
        lo, hi = int(keys[50]), int(keys[200])
        expected = [(int(k), int(k)) for k in keys if lo <= k <= hi]
        assert tree.range_query(lo, hi) == expected

    def test_empty_range(self, small_keys):
        tree = BPlusTree.build(small_keys)
        assert tree.range_query(int(small_keys[-1]) + 1, int(small_keys[-1]) + 10) == []


class TestStructure:
    def test_iter_keys_sorted(self, small_keys):
        tree = BPlusTree.build(small_keys)
        assert list(tree.iter_keys()) == small_keys.tolist()

    def test_key_level_equals_height(self, small_keys):
        tree = BPlusTree.build(small_keys, order=8)
        assert tree.key_level(int(small_keys[0])) == tree.height()

    def test_node_count_positive(self, small_keys):
        assert BPlusTree.build(small_keys).node_count() >= 1

    def test_size_bytes_grows_with_keys(self, rng):
        small = BPlusTree.build(np.unique(rng.integers(0, 10**8, 100)))
        large = BPlusTree.build(np.unique(rng.integers(0, 10**8, 3000)))
        assert large.size_bytes() > small.size_bytes()
