"""Tests for the binary-search baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes.sorted_array import SortedArrayIndex


class TestSortedArray:
    def test_lookup_every_key(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        for key in small_keys.tolist():
            stats = index.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_miss(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        assert not index.lookup_stats(int(small_keys[-1]) + 1).found

    def test_steps_bounded_by_log2(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        bound = int(np.ceil(np.log2(small_keys.size))) + 1
        for key in small_keys[::13].tolist():
            assert index.lookup_stats(key).search_steps <= bound

    def test_single_level(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        assert index.height() == 1
        assert index.node_count() == 1
        assert index.key_level(int(small_keys[0])) == 1

    def test_insert_new(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        index.insert(int(small_keys[-1]) + 5, 42)
        assert index.lookup(int(small_keys[-1]) + 5) == 42
        assert index.n_keys == small_keys.size + 1

    def test_insert_update(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        index.insert(int(small_keys[0]), 9)
        assert index.lookup(int(small_keys[0])) == 9
        assert index.n_keys == small_keys.size

    def test_iter_keys(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        assert list(index.iter_keys()) == small_keys.tolist()

    def test_size_bytes(self, small_keys):
        assert SortedArrayIndex.build(small_keys).size_bytes() > small_keys.size * 16
