"""Cross-backend range-query parity tests.

Every index family answers ``range_query`` (the base class provides a
generic ordered-walk default; the array-backed and tree backends
override it with direct scans), and all of them must agree with the
brute-force oracle — the serving layer's block cache and range path
sit on this contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes import (
    INDEX_FAMILIES,
    AlexIndex,
    BPlusTree,
    LippIndex,
    SaliIndex,
    SortedArrayIndex,
)
from repro.indexes.base import LearnedIndex

ALL_BACKENDS = sorted(INDEX_FAMILIES.values(), key=lambda cls: cls.name)
UPDATABLE_BACKENDS = [SortedArrayIndex, BPlusTree, AlexIndex, LippIndex, SaliIndex]


def oracle(keys: np.ndarray, low: int, high: int) -> list[tuple[int, int]]:
    return [(int(k), int(k)) for k in keys if low <= k <= high]


@pytest.mark.parametrize("cls", ALL_BACKENDS, ids=lambda c: c.name)
class TestRangeQueries:
    def test_interior_range(self, cls, clustered_keys):
        index = cls.build(clustered_keys)
        low, high = int(clustered_keys[100]), int(clustered_keys[400])
        assert index.range_query(low, high) == oracle(clustered_keys, low, high)

    def test_full_range(self, cls, small_keys):
        index = cls.build(small_keys)
        out = index.range_query(int(small_keys[0]), int(small_keys[-1]))
        assert out == oracle(small_keys, int(small_keys[0]), int(small_keys[-1]))

    def test_empty_range(self, cls, small_keys):
        index = cls.build(small_keys)
        assert index.range_query(int(small_keys[-1]) + 1, int(small_keys[-1]) + 100) == []

    def test_single_key_range(self, cls, small_keys):
        index = cls.build(small_keys)
        key = int(small_keys[7])
        assert index.range_query(key, key) == [(key, key)]

    def test_bounds_between_keys(self, cls, small_keys):
        index = cls.build(small_keys)
        low = int(small_keys[3]) + 1
        high = int(small_keys[10]) - 1
        assert index.range_query(low, high) == oracle(small_keys, low, high)


@pytest.mark.parametrize("cls", UPDATABLE_BACKENDS, ids=lambda c: c.name)
class TestRangeAfterInserts:
    def test_range_after_inserts(self, cls, small_keys, rng):
        index = cls.build(small_keys)
        new = np.setdiff1d(np.unique(rng.integers(0, 10**8, 200)), small_keys)
        index.insert_many(new)
        combined = np.sort(np.concatenate([small_keys, new]))
        low, high = int(combined[20]), int(combined[-20])
        assert index.range_query(low, high) == oracle(combined, low, high)


class TestRangeAfterCsv:
    @pytest.mark.parametrize("cls", [LippIndex, AlexIndex, SaliIndex])
    def test_range_preserved_by_csv(self, cls, clustered_keys):
        from repro.core import CsvConfig, apply_csv
        from repro.indexes import adapter_for

        index = cls.build(clustered_keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
        low, high = int(clustered_keys[50]), int(clustered_keys[700])
        assert index.range_query(low, high) == oracle(clustered_keys, low, high)


class TestSaliFlattenedRange:
    def test_range_spans_flattened_subtrees(self, clustered_keys, rng):
        index = SaliIndex.build(clustered_keys)
        # Heat a slice of the key space so a subtree flattens.
        hot = rng.choice(clustered_keys[:800], 3000)
        index.lookup_many(hot)
        flattened = index.flatten_hot_subtrees(min_probability=0.01)
        assert flattened > 0
        low, high = int(clustered_keys[50]), int(clustered_keys[-50])
        assert index.range_query(low, high) == oracle(clustered_keys, low, high)


class TestBaseClassDefault:
    def test_generic_walk_default(self, small_keys):
        """A backend that only implements the abstract core still
        answers ranges through the base-class iter_keys walk."""

        class Minimal(LearnedIndex):
            name = "minimal"

            def __init__(self, keys):
                self._store = {int(k): int(k) * 2 for k in keys}

            @classmethod
            def build(cls, keys, values=None):
                return cls(keys)

            def insert(self, key, value):
                self._store[int(key)] = int(value)

            def lookup_stats(self, key):
                from repro.indexes.base import QueryStats

                found = int(key) in self._store
                return QueryStats(
                    key=int(key), found=found,
                    value=self._store.get(int(key)), levels=1, search_steps=0,
                )

            @property
            def n_keys(self):
                return len(self._store)

            def height(self):
                return 1

            def node_count(self):
                return 1

            def size_bytes(self):
                return 0

            def key_level(self, key):
                return 1

            def iter_keys(self):
                yield from sorted(self._store)

        index = Minimal.build(small_keys)
        low, high = int(small_keys[3]), int(small_keys[20])
        expected = [(int(k), int(k) * 2) for k in small_keys if low <= k <= high]
        assert index.range_query(low, high) == expected
