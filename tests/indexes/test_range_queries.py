"""Range-query tests for LIPP, ALEX, SALI and the B+-tree oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes import AlexIndex, BPlusTree, LippIndex, SaliIndex


def oracle(keys: np.ndarray, low: int, high: int) -> list[tuple[int, int]]:
    return [(int(k), int(k)) for k in keys if low <= k <= high]


@pytest.mark.parametrize("cls", [LippIndex, AlexIndex, SaliIndex, BPlusTree])
class TestRangeQueries:
    def test_interior_range(self, cls, clustered_keys):
        index = cls.build(clustered_keys)
        low, high = int(clustered_keys[100]), int(clustered_keys[400])
        assert index.range_query(low, high) == oracle(clustered_keys, low, high)

    def test_full_range(self, cls, small_keys):
        index = cls.build(small_keys)
        out = index.range_query(int(small_keys[0]), int(small_keys[-1]))
        assert out == oracle(small_keys, int(small_keys[0]), int(small_keys[-1]))

    def test_empty_range(self, cls, small_keys):
        index = cls.build(small_keys)
        assert index.range_query(int(small_keys[-1]) + 1, int(small_keys[-1]) + 100) == []

    def test_single_key_range(self, cls, small_keys):
        index = cls.build(small_keys)
        key = int(small_keys[7])
        assert index.range_query(key, key) == [(key, key)]

    def test_bounds_between_keys(self, cls, small_keys):
        index = cls.build(small_keys)
        low = int(small_keys[3]) + 1
        high = int(small_keys[10]) - 1
        assert index.range_query(low, high) == oracle(small_keys, low, high)

    def test_range_after_inserts(self, cls, small_keys, rng):
        index = cls.build(small_keys)
        new = np.setdiff1d(np.unique(rng.integers(0, 10**8, 200)), small_keys)
        for key in new.tolist():
            index.insert(int(key), int(key))
        combined = np.sort(np.concatenate([small_keys, new]))
        low, high = int(combined[20]), int(combined[-20])
        assert index.range_query(low, high) == oracle(combined, low, high)


class TestRangeAfterCsv:
    @pytest.mark.parametrize("cls", [LippIndex, AlexIndex, SaliIndex])
    def test_range_preserved_by_csv(self, cls, clustered_keys):
        from repro.core import CsvConfig, apply_csv
        from repro.indexes import adapter_for

        index = cls.build(clustered_keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
        low, high = int(clustered_keys[50]), int(clustered_keys[700])
        assert index.range_query(low, high) == oracle(clustered_keys, low, high)
