"""Tests for the CSV↔index adapters and full Algorithm 2 integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.csv_algorithm import CsvConfig, apply_csv
from repro.core.exceptions import IndexStateError
from repro.core.smoothing import smooth_keys
from repro.indexes import (
    AlexCsvAdapter,
    AlexIndex,
    BPlusTree,
    LippCsvAdapter,
    LippIndex,
    SaliCsvAdapter,
    SaliIndex,
    adapter_for,
)


class TestAdapterFor:
    def test_dispatch(self, small_keys):
        assert isinstance(adapter_for(LippIndex.build(small_keys)), LippCsvAdapter)
        assert isinstance(adapter_for(SaliIndex.build(small_keys)), SaliCsvAdapter)
        assert isinstance(adapter_for(AlexIndex.build(small_keys)), AlexCsvAdapter)

    def test_sali_before_lipp(self, small_keys):
        """SALI subclasses LIPP — dispatch must pick the subclass."""
        adapter = adapter_for(SaliIndex.build(small_keys))
        assert type(adapter) is SaliCsvAdapter

    def test_unknown_raises(self, small_keys):
        with pytest.raises(IndexStateError):
            adapter_for(BPlusTree.build(small_keys))


class TestLippAdapter:
    def test_handles_exclude_root(self, clustered_keys):
        adapter = LippCsvAdapter(LippIndex.build(clustered_keys))
        for level in range(2, adapter.max_level() + 1):
            for handle in adapter.subtree_handles(level):
                assert handle.parent is not None
                assert handle.level == level
                assert handle.has_subtree

    def test_collect_keys_sorted(self, clustered_keys):
        adapter = LippCsvAdapter(LippIndex.build(clustered_keys))
        level = adapter.max_level()
        handles = adapter.subtree_handles(level)
        if not handles:
            pytest.skip("no subtree at max level")
        keys = adapter.collect_keys(handles[0])
        assert np.all(np.diff(keys) > 0)

    def test_cost_delta_is_loss_change(self, clustered_keys):
        adapter = LippCsvAdapter(LippIndex.build(clustered_keys))
        handles = adapter.subtree_handles(2)
        if not handles:
            pytest.skip("no level-2 subtree")
        keys = adapter.collect_keys(handles[0])
        if keys.size < 3:
            pytest.skip("subtree too small")
        smoothing = smooth_keys(keys, alpha=0.2)
        delta = adapter.cost_delta(handles[0], smoothing)
        assert delta == pytest.approx(smoothing.final_loss - smoothing.original_loss)

    def test_rebuild_preserves_lookups(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        adapter = LippCsvAdapter(index)
        handles = adapter.subtree_handles(2)
        if not handles:
            pytest.skip("no level-2 subtree")
        handle = handles[0]
        keys = adapter.collect_keys(handle)
        if keys.size < 3:
            pytest.skip("subtree too small")
        smoothing = smooth_keys(keys, alpha=0.3)
        promoted = adapter.rebuild(handle, smoothing)
        assert promoted >= 0
        for key in keys.tolist():
            assert index.lookup(key) == key

    def test_rebuild_marks_virtual_slots(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        adapter = LippCsvAdapter(index)
        handles = [
            h for h in adapter.subtree_handles(2) if adapter.collect_keys(h).size >= 10
        ]
        if not handles:
            pytest.skip("no sizable subtree")
        handle = handles[0]
        keys = adapter.collect_keys(handle)
        smoothing = smooth_keys(keys, alpha=0.3)
        adapter.rebuild(handle, smoothing)
        parent = handle.parent
        new_child = parent.children[handle.parent_slot]
        assert new_child.virtual_slots == smoothing.n_virtual
        assert new_child.m == smoothing.points.size


class TestAlexAdapter:
    def test_handles_are_inner_non_root(self, clustered_keys):
        adapter = AlexCsvAdapter(AlexIndex.build(clustered_keys))
        for level in range(2, adapter.max_level() + 1):
            for handle in adapter.subtree_handles(level):
                assert handle.parent is not None

    def test_cost_delta_negative_for_good_merge(self, clustered_keys):
        """Deep, well-smoothable subtrees should price below zero."""
        adapter = AlexCsvAdapter(AlexIndex.build(clustered_keys))
        found_negative = False
        for level in range(adapter.max_level(), 1, -1):
            for handle in adapter.subtree_handles(level):
                keys = adapter.collect_keys(handle)
                if keys.size < 10:
                    continue
                smoothing = smooth_keys(keys, alpha=0.2)
                if adapter.cost_delta(handle, smoothing) < 0:
                    found_negative = True
                    break
            if found_negative:
                break
        assert found_negative

    def test_rebuild_preserves_lookups(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        adapter = AlexCsvAdapter(index)
        level = adapter.max_level()
        handles = [
            h for h in adapter.subtree_handles(level) if adapter.collect_keys(h).size >= 5
        ]
        if not handles:
            pytest.skip("no sizable subtree")
        handle = handles[0]
        keys = adapter.collect_keys(handle)
        smoothing = smooth_keys(keys, alpha=0.2)
        promoted = adapter.rebuild(handle, smoothing)
        assert promoted >= 0
        for key in keys.tolist():
            assert index.lookup(key) == key


@pytest.mark.parametrize("cls", [LippIndex, SaliIndex, AlexIndex])
class TestFullCsvIntegration:
    def test_apply_csv_preserves_all_lookups(self, cls, clustered_keys):
        index = cls.build(clustered_keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
        for key in clustered_keys.tolist():
            assert index.lookup(int(key)) == int(key), key

    def test_apply_csv_never_raises_on_easy_data(self, cls, rng):
        keys = np.unique(rng.integers(0, 10**6, 3000))
        index = cls.build(keys)
        report = apply_csv(adapter_for(index), CsvConfig(alpha=0.2))
        assert report.preprocessing_seconds >= 0.0
        for key in keys[::11].tolist():
            assert index.lookup(key) == key

    def test_inserts_after_csv(self, cls, clustered_keys, rng):
        index = cls.build(clustered_keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
        new = np.setdiff1d(np.unique(rng.integers(0, 2**40, 500)), clustered_keys)
        for key in new.tolist():
            index.insert(int(key), int(key))
        for key in new[::7].tolist():
            assert index.lookup(int(key)) == int(key)
