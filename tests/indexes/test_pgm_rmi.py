"""Tests for the PGM-style and RMI baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.pgm import PGMIndex, build_pla_segments
from repro.indexes.rmi import RMIIndex

key_sets = st.lists(
    st.integers(min_value=0, max_value=10**7), min_size=5, max_size=300, unique=True
).map(sorted)


class TestPlaSegments:
    def test_linear_keys_one_segment(self):
        segments = build_pla_segments(np.arange(0, 1000, 10), epsilon=4)
        assert len(segments) == 1

    def test_error_bound_holds(self, clustered_keys):
        epsilon = 8
        segments = build_pla_segments(clustered_keys, epsilon=epsilon)
        for seg in segments:
            for pos in range(seg.first_pos, seg.last_pos + 1):
                predicted = seg.predict(int(clustered_keys[pos]))
                assert abs(predicted - pos) <= epsilon

    @settings(max_examples=30, deadline=None)
    @given(keys=key_sets)
    def test_error_bound_property(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        epsilon = 4
        segments = build_pla_segments(arr, epsilon=epsilon)
        for seg in segments:
            for pos in range(seg.first_pos, seg.last_pos + 1):
                assert abs(seg.predict(int(arr[pos])) - pos) <= epsilon

    def test_segments_partition_positions(self, clustered_keys):
        segments = build_pla_segments(clustered_keys, epsilon=8)
        covered = []
        for seg in segments:
            covered.extend(range(seg.first_pos, seg.last_pos + 1))
        assert covered == list(range(clustered_keys.size))

    def test_smaller_epsilon_more_segments(self, clustered_keys):
        tight = build_pla_segments(clustered_keys, epsilon=2)
        loose = build_pla_segments(clustered_keys, epsilon=64)
        assert len(tight) >= len(loose)

    def test_empty_input(self):
        assert build_pla_segments(np.empty(0, dtype=np.int64)) == []


class TestPGMIndex:
    def test_lookup_every_key(self, clustered_keys):
        index = PGMIndex.build(clustered_keys, epsilon=8)
        for key in clustered_keys[::5].tolist():
            stats = index.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_miss(self, clustered_keys):
        index = PGMIndex.build(clustered_keys, epsilon=8)
        assert not index.lookup_stats(int(clustered_keys[0]) + 1).found or (
            int(clustered_keys[0]) + 1
        ) in set(clustered_keys.tolist())

    def test_static_insert_raises(self, small_keys):
        index = PGMIndex.build(small_keys)
        with pytest.raises(NotImplementedError):
            index.insert(1, 1)

    def test_height_at_least_one(self, small_keys):
        assert PGMIndex.build(small_keys).height() >= 1

    def test_key_level_is_data_level(self, small_keys):
        index = PGMIndex.build(small_keys)
        assert index.key_level(int(small_keys[0])) == index.height()

    def test_segment_count_tracks_hardness(self, rng):
        easy = np.arange(0, 20_000, 7, dtype=np.int64)
        hard_centers = rng.uniform(0, 2**40, 20)
        hard = np.unique(
            np.concatenate([(c + rng.lognormal(6, 2, 200)).astype(np.int64) for c in hard_centers])
        )
        assert (
            PGMIndex.build(easy, epsilon=8).segment_count
            < PGMIndex.build(hard, epsilon=8).segment_count
        )

    def test_iter_keys(self, small_keys):
        index = PGMIndex.build(small_keys)
        assert list(index.iter_keys()) == small_keys.tolist()


class TestRMIIndex:
    def test_lookup_every_key(self, clustered_keys):
        index = RMIIndex.build(clustered_keys)
        for key in clustered_keys[::5].tolist():
            stats = index.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_miss(self, small_keys):
        index = RMIIndex.build(small_keys)
        assert not index.lookup_stats(int(small_keys[0]) - 1).found

    def test_two_levels(self, small_keys):
        index = RMIIndex.build(small_keys)
        assert index.height() == 2
        assert index.key_level(int(small_keys[0])) == 2

    def test_static_insert_raises(self, small_keys):
        with pytest.raises(NotImplementedError):
            RMIIndex.build(small_keys).insert(1, 1)

    def test_branching_controls_node_count(self, clustered_keys):
        narrow = RMIIndex.build(clustered_keys, branching=4)
        wide = RMIIndex.build(clustered_keys, branching=64)
        assert wide.node_count() > narrow.node_count()

    def test_custom_values(self):
        index = RMIIndex.build(np.array([5, 10, 20, 30, 50]), np.array([1, 2, 3, 4, 5]))
        assert index.lookup(20) == 3

    def test_iter_keys(self, small_keys):
        index = RMIIndex.build(small_keys)
        assert list(index.iter_keys()) == small_keys.tolist()
