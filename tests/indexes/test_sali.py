"""Tests for the SALI substrate (access tracking + flattening)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes.sali import AccessTracker, FlattenedNode, SaliIndex


@pytest.fixture()
def sali(clustered_keys) -> SaliIndex:
    return SaliIndex.build(clustered_keys)


class TestQueries:
    def test_lookup_every_key(self, sali, clustered_keys):
        for key in clustered_keys[::9].tolist():
            stats = sali.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_lipp_parity_before_flattening(self, sali, clustered_keys):
        """Without flattening SALI behaves exactly like LIPP."""
        from repro.indexes.lipp import LippIndex

        lipp = LippIndex.build(clustered_keys)
        for key in clustered_keys[::31].tolist():
            assert sali.lookup_stats(key).levels == lipp.lookup_stats(key).levels

    def test_access_counts_accumulate(self, sali, clustered_keys):
        before = sali.root.access_count
        for key in clustered_keys[:50].tolist():
            sali.lookup_stats(key)
        assert sali.root.access_count == before + 50
        assert sali.tracker.total_queries >= 50


class TestFlattening:
    def _warm(self, sali: SaliIndex, keys: np.ndarray, hot: np.ndarray) -> None:
        for key in hot.tolist():
            sali.lookup_stats(int(key))

    def test_flatten_hot_subtrees(self, sali, clustered_keys, rng):
        hot = rng.choice(clustered_keys, 4000)
        self._warm(sali, clustered_keys, hot)
        flattened = sali.flatten_hot_subtrees(min_probability=0.03)
        if flattened == 0:
            pytest.skip("no subtree crossed the probability threshold")
        assert len(sali.flattened_nodes()) == flattened

    def test_correct_after_flattening(self, sali, clustered_keys, rng):
        hot = rng.choice(clustered_keys, 4000)
        self._warm(sali, clustered_keys, hot)
        sali.flatten_hot_subtrees(min_probability=0.02)
        for key in clustered_keys[::5].tolist():
            stats = sali.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_flattened_lookup_has_search_steps(self, sali, clustered_keys, rng):
        hot = rng.choice(clustered_keys, 5000)
        self._warm(sali, clustered_keys, hot)
        if sali.flatten_hot_subtrees(min_probability=0.02) == 0:
            pytest.skip("nothing flattened")
        flat = sali.flattened_nodes()[0]
        key = int(flat.keys[0])
        stats = sali.lookup_stats(key)
        assert stats.search_steps >= 1  # the extra search the paper notes

    def test_insert_into_flattened(self, sali, clustered_keys, rng):
        hot = rng.choice(clustered_keys, 5000)
        self._warm(sali, clustered_keys, hot)
        if sali.flatten_hot_subtrees(min_probability=0.02) == 0:
            pytest.skip("nothing flattened")
        flat = sali.flattened_nodes()[0]
        probe = int(flat.keys[0]) + 1
        if probe in set(flat.keys.tolist()):
            pytest.skip("no free value")
        n_before = sali.n_keys
        sali.insert(probe, 42)
        assert sali.lookup(probe) == 42
        assert sali.n_keys == n_before + 1

    def test_insert_outside_flattened(self, sali, clustered_keys, rng):
        new = np.setdiff1d(np.unique(rng.integers(0, 2**40, 500)), clustered_keys)
        for key in new.tolist():
            sali.insert(int(key), int(key))
        for key in new[::17].tolist():
            assert sali.lookup(int(key)) == int(key)

    def test_size_accounts_flattened(self, sali, clustered_keys, rng):
        size_before = sali.size_bytes()
        hot = rng.choice(clustered_keys, 5000)
        self._warm(sali, clustered_keys, hot)
        sali.flatten_hot_subtrees(min_probability=0.02)
        assert sali.size_bytes() > 0
        assert abs(sali.size_bytes() - size_before) < size_before  # same order


class TestFlattenedNode:
    def test_lookup_and_bounds(self, small_keys):
        node = FlattenedNode(small_keys, small_keys, level=2, epsilon=4)
        for key in small_keys.tolist():
            found, value, steps = node.lookup(key)
            assert found and value == key and steps >= 1

    def test_miss(self, small_keys):
        node = FlattenedNode(small_keys, small_keys, level=2)
        found, value, __ = node.lookup(int(small_keys[0]) - 1)
        assert not found and value is None

    def test_insert_keeps_sorted(self, small_keys):
        node = FlattenedNode(small_keys.copy(), small_keys.copy(), level=2)
        probe = int(small_keys[0]) + 1
        if probe in set(small_keys.tolist()):
            pytest.skip("occupied")
        node.insert(probe, 5)
        assert np.all(np.diff(node.keys) > 0)
        assert node.lookup(probe)[0]

    def test_rejects_empty(self):
        with pytest.raises(Exception):
            FlattenedNode(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), level=2)

    def test_walk_compatibility(self, small_keys):
        node = FlattenedNode(small_keys, small_keys, level=2)
        assert list(node.walk()) == [node]
        assert node.children == {}
        assert node.n_subtree_keys == small_keys.size


class TestAccessTracker:
    def test_probability(self):
        tracker = AccessTracker()

        class Node:
            access_count = 0

        node = Node()
        for __ in range(10):
            tracker.record_path([node])
        assert tracker.probability(node) == pytest.approx(1.0)

    def test_decay(self):
        tracker = AccessTracker()

        class Node:
            access_count = 100

        node = Node()
        tracker.total_queries = 200
        tracker.decay(0.5, [node])
        assert tracker.total_queries == 100
        assert node.access_count == 50

    def test_decay_validates_factor(self):
        with pytest.raises(ValueError):
            AccessTracker().decay(1.5)

    def test_is_hot_threshold(self):
        tracker = AccessTracker()

        class Node:
            access_count = 5

        tracker.total_queries = 100
        assert tracker.is_hot(Node(), 0.04)
        assert not tracker.is_hot(Node(), 0.06)

    def test_zero_queries(self):
        tracker = AccessTracker()

        class Node:
            access_count = 0

        assert tracker.probability(Node()) == 0.0
