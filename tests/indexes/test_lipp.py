"""Tests for the LIPP substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import IndexStateError
from repro.core.linear_model import fit_linear
from repro.indexes.lipp import SLOT_CHILD, SLOT_DATA, LippIndex, LippNode

key_sets = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=2, max_size=150, unique=True
).map(sorted)


class TestBuild:
    def test_lookup_every_key(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        for key in clustered_keys[::7].tolist():
            stats = index.lookup_stats(key)
            assert stats.found and stats.value == key

    def test_precise_positions_no_search(self, clustered_keys):
        """LIPP's defining property: zero in-node search steps."""
        index = LippIndex.build(clustered_keys)
        for key in clustered_keys[::29].tolist():
            assert index.lookup_stats(key).search_steps == 0

    def test_miss(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        assert not index.lookup_stats(int(clustered_keys[0]) - 3).found

    def test_n_keys(self, clustered_keys):
        assert LippIndex.build(clustered_keys).n_keys == clustered_keys.size

    def test_single_key(self):
        index = LippIndex.build(np.array([42]))
        assert index.lookup(42) == 42

    def test_two_identical_predictions_make_child(self):
        # Keys engineered to collide in a 2-slot node.
        index = LippIndex.build(np.array([0, 1, 1000]))
        assert index.n_keys == 3
        for key in (0, 1, 1000):
            assert index.lookup(key) == key

    @settings(max_examples=30, deadline=None)
    @given(keys=key_sets)
    def test_build_roundtrip_property(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        index = LippIndex.build(arr)
        assert index.n_keys == arr.size
        for key in arr[:: max(1, arr.size // 25)].tolist():
            assert index.lookup(key) == key

    def test_iter_keys_sorted(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        assert np.array_equal(
            np.fromiter(index.iter_keys(), dtype=np.int64), clustered_keys
        )

    def test_custom_m_and_model(self, small_keys):
        """CSV-style rebuild: explicit slot count and model."""
        model = fit_linear(small_keys)
        node = LippNode.from_keys(
            small_keys, small_keys, level=2, m=small_keys.size, model=model
        )
        keys, values = node.collect_arrays()
        assert np.array_equal(keys, small_keys)
        assert np.array_equal(values, small_keys)


class TestInsert:
    def test_insert_into_empty_slot(self, small_keys):
        index = LippIndex.build(small_keys, slot_factor=2.0)
        probe = int(small_keys[0]) + 1
        if probe in set(small_keys.tolist()):
            pytest.skip("value occupied")
        index.insert(probe, 42)
        assert index.lookup(probe) == 42

    def test_insert_conflict_creates_child(self):
        index = LippIndex.build(np.array([0, 10, 20, 30], dtype=np.int64))
        height_before = index.height()
        # Dense cluster around one slot forces conflicts.
        for key in (11, 12, 13):
            index.insert(key, key)
        assert index.height() >= height_before
        for key in (11, 12, 13):
            assert index.lookup(key) == key

    def test_insert_update(self, small_keys):
        index = LippIndex.build(small_keys)
        key = int(small_keys[4])
        index.insert(key, 7)
        assert index.lookup(key) == 7
        assert index.n_keys == small_keys.size

    def test_adversarial_sequential_height_bounded(self, small_keys):
        """The conflict-rebuild adjustment must keep chains shallow."""
        index = LippIndex.build(small_keys)
        base = int(small_keys[-1]) + 1000
        for key in range(base, base + 4000):
            index.insert(key, 1)
        assert index.height() <= 15
        for key in range(base, base + 4000, 199):
            assert index.lookup(key) == 1

    def test_n_subtree_counters_consistent(self, small_keys, rng):
        index = LippIndex.build(small_keys)
        new = np.setdiff1d(np.unique(rng.integers(0, 10**8, 500)), small_keys)
        for key in new.tolist():
            index.insert(key, key)
        assert index.n_keys == small_keys.size + new.size
        assert index.root.n_subtree_keys == index.n_keys

    @settings(max_examples=25, deadline=None)
    @given(keys=key_sets)
    def test_insert_matches_dict_oracle(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        half = max(1, arr.size // 2)
        index = LippIndex.build(arr[:half])
        oracle = {int(k): int(k) for k in arr[:half]}
        for key in arr[half:].tolist():
            index.insert(key, key * 2)
            oracle[key] = key * 2
        for key, value in oracle.items():
            assert index.lookup(key) == value
        assert list(index.iter_keys()) == sorted(oracle)


class TestStructure:
    def test_key_level_matches_lookup_depth(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        key = int(clustered_keys[17])
        assert index.key_level(key) == index.lookup_stats(key).levels

    def test_key_level_raises_for_missing(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        with pytest.raises(IndexStateError):
            index.key_level(int(clustered_keys[0]) - 1)

    def test_level_histogram_sums_to_n(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        assert sum(index.level_histogram().values()) == clustered_keys.size

    def test_deeper_levels_cost_more(self, clustered_keys):
        """The Fig. 1 premise: query cost grows with key depth."""
        index = LippIndex.build(clustered_keys)
        histogram = index.level_histogram()
        if len(histogram) < 2:
            pytest.skip("index too shallow on this draw")
        levels = sorted(histogram)
        shallow_key = next(
            k for k in clustered_keys.tolist() if index.key_level(k) == levels[0]
        )
        deep_key = next(
            k for k in clustered_keys.tolist() if index.key_level(k) == levels[-1]
        )
        assert (
            index.lookup_stats(deep_key).simulated_ns()
            > index.lookup_stats(shallow_key).simulated_ns()
        )

    def test_keys_at_or_below(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        deep = index.keys_at_or_below(3)
        histogram = index.level_histogram()
        expected = sum(v for level, v in histogram.items() if level >= 3)
        assert deep.size == expected

    def test_node_levels_and_counts(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        levels = index.node_levels()
        assert len(levels) == index.node_count()
        assert max(levels) == index.height()

    def test_empty_slot_fraction_bounds(self, clustered_keys):
        fraction = LippIndex.build(clustered_keys).empty_slot_fraction()
        assert 0.0 <= fraction < 1.0

    def test_subtree_collect_sorted(self, clustered_keys):
        index = LippIndex.build(clustered_keys)
        keys, values = index.root.collect_arrays()
        assert np.array_equal(keys, clustered_keys)
        assert np.all(np.diff(keys) > 0)

    def test_relevel(self, small_keys):
        node = LippNode.from_keys(small_keys, small_keys, level=3)
        node.relevel(1)
        assert node.level == 1
        assert all(child.level >= 2 for child in node.children.values())
