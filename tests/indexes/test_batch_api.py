"""Exact-parity tests for the batch query engine.

Every backend's ``lookup_many`` must return, field for field, what the
per-key ``lookup_stats`` loop returns — found flags, values, levels
AND search-step counts — and ``insert_many`` must leave the index in
the same state as the sequential insert loop.  Aggregation through
``QueryProfile`` must agree between the scalar and the batch paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import CostConstants
from repro.indexes import INDEX_FAMILIES
from repro.indexes.base import BatchQueryStats
from repro.workloads.readonly import QueryProfile

ALL_FAMILIES = sorted(INDEX_FAMILIES)
UPDATABLE = ("sorted_array", "btree", "alex", "lipp", "sali")
STATIC = ("pgm", "rmi")


@pytest.fixture()
def mixed_queries(small_keys, rng):
    """Hits and misses, shuffled, spanning the whole key range."""
    absent = np.setdiff1d(
        rng.integers(int(small_keys[0]) - 50, int(small_keys[-1]) + 50, 600), small_keys
    )
    queries = np.concatenate([rng.choice(small_keys, 400), absent[:200]])
    rng.shuffle(queries)
    return queries


def assert_batch_matches_loop(batch, scalar_stats):
    assert batch.n_queries == len(scalar_stats)
    for i, s in enumerate(scalar_stats):
        got = batch.stat(i)
        assert (got.key, got.found, got.value, got.levels, got.search_steps) == (
            s.key, s.found, s.value, s.levels, s.search_steps,
        ), f"query {i} ({s.key}) diverged: {got} != {s}"


class TestLookupManyParity:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_exact_parity_with_scalar_loop(self, family, small_keys, mixed_queries):
        # Two identical indexes: SALI's access tracking mutates on
        # lookups, so the loop and the batch each get a fresh copy.
        loop_index = INDEX_FAMILIES[family].build(small_keys)
        batch_index = INDEX_FAMILIES[family].build(small_keys)
        scalar = [loop_index.lookup_stats(int(k)) for k in mixed_queries]
        batch = batch_index.lookup_many(mixed_queries)
        assert_batch_matches_loop(batch, scalar)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_clustered_keys_parity(self, family, clustered_keys, rng):
        queries = rng.choice(clustered_keys, 500)
        loop_index = INDEX_FAMILIES[family].build(clustered_keys)
        batch_index = INDEX_FAMILIES[family].build(clustered_keys)
        scalar = [loop_index.lookup_stats(int(k)) for k in queries]
        assert_batch_matches_loop(batch_index.lookup_many(queries), scalar)

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_empty_batch(self, family, small_keys):
        index = INDEX_FAMILIES[family].build(small_keys)
        batch = index.lookup_many(np.empty(0, dtype=np.int64))
        assert batch.n_queries == 0

    def test_order_preserved(self, small_keys):
        index = INDEX_FAMILIES["sorted_array"].build(small_keys)
        queries = small_keys[::-1][:50]
        batch = index.lookup_many(queries)
        assert np.array_equal(batch.keys, queries)
        assert np.array_equal(batch.values, queries)

    def test_sali_access_counts_match_loop(self, small_keys, mixed_queries):
        loop_index = INDEX_FAMILIES["sali"].build(small_keys)
        batch_index = INDEX_FAMILIES["sali"].build(small_keys)
        for k in mixed_queries:
            loop_index.lookup_stats(int(k))
        batch_index.lookup_many(mixed_queries)
        assert loop_index.tracker.total_queries == batch_index.tracker.total_queries
        loop_counts = sum(n.access_count for n in loop_index.root.walk())
        batch_counts = sum(n.access_count for n in batch_index.root.walk())
        assert loop_counts == batch_counts

    def test_sali_flattened_nodes_parity(self, small_keys, mixed_queries):
        loop_index = INDEX_FAMILIES["sali"].build(small_keys)
        batch_index = INDEX_FAMILIES["sali"].build(small_keys)
        warm = small_keys[: small_keys.size // 3]
        for index in (loop_index, batch_index):
            for k in warm.tolist() * 2:
                index.lookup_stats(int(k))
            index.flatten_hot_subtrees(min_probability=0.01)
        assert batch_index.flattened_nodes(), "fixture should flatten something"
        scalar = [loop_index.lookup_stats(int(k)) for k in mixed_queries]
        assert_batch_matches_loop(batch_index.lookup_many(mixed_queries), scalar)


class TestInsertManyParity:
    @pytest.mark.parametrize("family", UPDATABLE)
    def test_state_matches_sequential_loop(self, family, small_keys, rng):
        fresh = np.setdiff1d(
            rng.integers(int(small_keys[0]), int(small_keys[-1]), 400), small_keys
        )[:150]
        rng.shuffle(fresh)
        # Include duplicates within the batch: last value must win.
        batch_keys = np.concatenate([fresh, fresh[:20]])
        batch_vals = np.concatenate([fresh * 2, fresh[:20] * 3])
        loop_index = INDEX_FAMILIES[family].build(small_keys)
        batch_index = INDEX_FAMILIES[family].build(small_keys)
        for k, v in zip(batch_keys.tolist(), batch_vals.tolist()):
            loop_index.insert(int(k), int(v))
        batch_index.insert_many(batch_keys, batch_vals)
        assert list(loop_index.iter_keys()) == list(batch_index.iter_keys())
        probe = np.concatenate([small_keys, fresh])
        scalar = [loop_index.lookup_stats(int(k)) for k in probe]
        assert_batch_matches_loop(batch_index.lookup_many(probe), scalar)

    @pytest.mark.parametrize("family", UPDATABLE)
    def test_values_default_to_keys(self, family, small_keys, rng):
        fresh = np.setdiff1d(
            rng.integers(int(small_keys[0]), int(small_keys[-1]), 100), small_keys
        )[:30]
        index = INDEX_FAMILIES[family].build(small_keys)
        index.insert_many(fresh)
        for k in fresh.tolist():
            assert index.lookup(int(k)) == int(k)

    @pytest.mark.parametrize("family", STATIC)
    def test_static_indexes_raise(self, family, small_keys):
        index = INDEX_FAMILIES[family].build(small_keys)
        with pytest.raises(NotImplementedError):
            index.insert_many(np.array([int(small_keys[-1]) + 10]))

    def test_sorted_array_updates_existing(self, small_keys):
        index = INDEX_FAMILIES["sorted_array"].build(small_keys)
        index.insert_many(small_keys[:5], small_keys[:5] * 7)
        for k in small_keys[:5].tolist():
            assert index.lookup(int(k)) == int(k) * 7
        assert index.n_keys == small_keys.size


class TestAggregation:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_profile_from_batch_equals_from_stats(self, family, small_keys, mixed_queries):
        consts = CostConstants()
        loop_index = INDEX_FAMILIES[family].build(small_keys)
        batch_index = INDEX_FAMILIES[family].build(small_keys)
        scalar = [loop_index.lookup_stats(int(k)) for k in mixed_queries]
        from_stats = QueryProfile.from_stats(scalar, consts)
        from_batch = QueryProfile.from_batch(batch_index.lookup_many(mixed_queries), consts)
        assert from_stats == from_batch

    def test_simulated_ns_matches_scalar_model(self, small_keys):
        consts = CostConstants(traversal_ns=7.0, search_ns=3.0, base_ns=1.0)
        index = INDEX_FAMILIES["btree"].build(small_keys)
        batch = index.lookup_many(small_keys[:64])
        ns = batch.simulated_ns(consts)
        for i in range(batch.n_queries):
            assert ns[i] == pytest.approx(batch.stat(i).simulated_ns(consts))

    def test_roundtrip_through_query_stats(self, small_keys):
        index = INDEX_FAMILIES["rmi"].build(small_keys)
        batch = index.lookup_many(small_keys[:40])
        rebuilt = BatchQueryStats.from_query_stats(batch.to_list())
        for field in ("keys", "found", "values", "levels", "search_steps"):
            assert np.array_equal(getattr(batch, field), getattr(rebuilt, field))
