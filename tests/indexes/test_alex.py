"""Tests for the ALEX substrate (data nodes + index)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import IndexStateError
from repro.core.linear_model import LinearModel, fit_linear
from repro.indexes.alex import AlexDataNode, AlexIndex, InsertStatus
from repro.indexes.alex.data_node import TAIL_FILL

key_sets = st.lists(
    st.integers(min_value=0, max_value=10**9), min_size=2, max_size=200, unique=True
).map(sorted)


class TestDataNode:
    def test_from_sorted_all_keys_found(self, small_keys):
        node = AlexDataNode.from_sorted(small_keys, small_keys, level=1)
        for key in small_keys.tolist():
            found, value, steps = node.lookup(key)
            assert found and value == key and steps >= 1

    def test_slot_keys_non_decreasing(self, small_keys):
        node = AlexDataNode.from_sorted(small_keys, small_keys, level=1)
        assert np.all(np.diff(node.slot_keys) >= 0)

    def test_density_near_target(self, small_keys):
        node = AlexDataNode.from_sorted(small_keys, small_keys, level=1)
        assert 0.5 < node.density <= 0.8

    def test_miss_between_keys(self, small_keys):
        node = AlexDataNode.from_sorted(small_keys, small_keys, level=1)
        probe = int(small_keys[0]) + 1
        if probe not in set(small_keys.tolist()):
            found, value, __ = node.lookup(probe)
            assert not found and value is None

    def test_insert_into_gap(self, small_keys):
        node = AlexDataNode.from_sorted(small_keys, small_keys, level=1)
        probe = int(small_keys[0]) + 1
        if probe in set(small_keys.tolist()):
            pytest.skip("no free value at probe")
        assert node.insert(probe, 42) is InsertStatus.INSERTED
        found, value, __ = node.lookup(probe)
        assert found and value == 42
        assert np.all(np.diff(node.slot_keys) >= 0)

    def test_insert_update(self, small_keys):
        node = AlexDataNode.from_sorted(small_keys, small_keys, level=1)
        key = int(small_keys[3])
        assert node.insert(key, 99) is InsertStatus.UPDATED
        assert node.lookup(key)[1] == 99
        assert node.n_keys == small_keys.size

    def test_full_signal(self):
        keys = np.arange(100, dtype=np.int64)
        node = AlexDataNode.from_sorted(keys, keys, level=1)
        status = InsertStatus.INSERTED
        probe = 1000
        while status is InsertStatus.INSERTED:
            probe += 1
            status = node.insert(probe, probe)
        assert status is InsertStatus.FULL

    @settings(max_examples=30, deadline=None)
    @given(keys=key_sets)
    def test_layout_roundtrip_property(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        node = AlexDataNode.from_sorted(arr, arr, level=1)
        assert node.n_keys == arr.size
        for key in arr[:: max(1, arr.size // 20)].tolist():
            assert node.lookup(key)[0]

    def test_from_positions_explicit_layout(self):
        keys = np.array([10, 20, 40], dtype=np.int64)
        model = fit_linear(keys, np.array([0, 2, 4]))
        node = AlexDataNode.from_positions(
            keys, keys, positions=np.array([0, 2, 4]), capacity=6, model=model, level=2
        )
        for key in keys.tolist():
            assert node.lookup(key)[0]
        assert node.capacity == 6

    def test_from_positions_rejects_overflow(self):
        keys = np.array([1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            AlexDataNode.from_positions(
                keys, keys, positions=np.array([0, 5]), capacity=3,
                model=LinearModel(1.0, 0.0), level=1,
            )

    def test_from_positions_rejects_non_monotone(self):
        keys = np.array([1, 2], dtype=np.int64)
        with pytest.raises(ValueError):
            AlexDataNode.from_positions(
                keys, keys, positions=np.array([3, 3]), capacity=5,
                model=LinearModel(1.0, 0.0), level=1,
            )

    def test_expected_search_steps_reflect_fit(self):
        linear = np.arange(0, 1000, 10, dtype=np.int64)
        good = AlexDataNode.from_sorted(linear, linear, level=1)
        rng = np.random.default_rng(0)
        skewed = np.unique((rng.lognormal(10, 2.5, 200)).astype(np.int64))
        bad = AlexDataNode.from_sorted(skewed, skewed, level=1)
        assert good.expected_search_steps() <= bad.expected_search_steps()

    def test_tail_gaps_hold_sentinel(self):
        keys = np.array([5, 6], dtype=np.int64)
        node = AlexDataNode.from_sorted(keys, keys, level=1)
        if not node.occupied[-1]:
            assert int(node.slot_keys[-1]) == TAIL_FILL


class TestAlexIndex:
    def test_build_and_lookup(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        for key in clustered_keys[::7].tolist():
            stats = index.lookup_stats(key)
            assert stats.found and stats.value == key
            assert stats.levels >= 1 and stats.search_steps >= 1

    def test_miss(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        missing = int(clustered_keys[0]) - 7
        assert not index.lookup_stats(missing).found

    def test_n_keys(self, clustered_keys):
        assert AlexIndex.build(clustered_keys).n_keys == clustered_keys.size

    def test_small_build_is_single_data_node(self):
        index = AlexIndex.build(np.arange(50))
        assert index.height() == 1
        assert index.node_count() == 1

    def test_insert_random(self, clustered_keys, rng):
        index = AlexIndex.build(clustered_keys)
        new = np.setdiff1d(np.unique(rng.integers(0, 2**40, 2000)), clustered_keys)
        for key in new.tolist():
            index.insert(key, key)
        assert index.n_keys == clustered_keys.size + new.size
        for key in new[::13].tolist():
            assert index.lookup(key) == key

    def test_insert_sequential_bounded_height(self, small_keys):
        index = AlexIndex.build(small_keys)
        base = int(small_keys[-1]) + 10
        for key in range(base, base + 3000):
            index.insert(key, 1)
        assert index.height() <= 12
        assert index.lookup(base + 1500) == 1

    def test_insert_update_existing(self, small_keys):
        index = AlexIndex.build(small_keys)
        key = int(small_keys[5])
        index.insert(key, 77)
        assert index.lookup(key) == 77
        assert index.n_keys == small_keys.size

    def test_iter_keys_sorted(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        assert np.array_equal(
            np.fromiter(index.iter_keys(), dtype=np.int64), clustered_keys
        )

    def test_key_level_matches_descend(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        key = int(clustered_keys[10])
        assert index.key_level(key) == index.lookup_stats(key).levels

    def test_key_level_raises_for_missing(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        with pytest.raises(IndexStateError):
            index.key_level(int(clustered_keys[0]) - 5)

    def test_level_histogram_sums_to_n(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        assert sum(index.level_histogram().values()) == clustered_keys.size

    def test_node_levels_contains_root(self, clustered_keys):
        assert 1 in AlexIndex.build(clustered_keys).node_levels()

    def test_keys_at_or_below(self, clustered_keys):
        index = AlexIndex.build(clustered_keys)
        deep = index.keys_at_or_below(2)
        histogram = index.level_histogram()
        expected = sum(v for level, v in histogram.items() if level >= 2)
        assert deep.size == expected

    def test_size_bytes_positive(self, small_keys):
        assert AlexIndex.build(small_keys).size_bytes() > 0
