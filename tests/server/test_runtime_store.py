"""Runtime store: WAL persistence, op-log replay, restart recovery.

The store's contract is crash-shaped: ``record_op`` logs *before* the
batch is applied, counters upsert atomically, and :meth:`replay` on a
reopened file reconstructs every accepted write and counter — which
the end-to-end test exercises through a full HTTP restart cycle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, scoped_registry
from repro.server import HttpIndexClient, RuntimeStore, ServerThread
from repro.serving import IndexService

from .conftest import FAMILY, N_SHARDS


@pytest.fixture()
def store(tmp_path):
    with RuntimeStore(tmp_path / "runtime.db") as s:
        yield s


class TestStoreUnit:
    def test_wal_mode_and_version(self, store):
        assert store.journal_mode() == "wal"
        assert store.meta_get("version") == "1"

    def test_meta_upsert(self, store):
        store.meta_set("k", "a")
        store.meta_set("k", "b")
        assert store.meta_get("k") == "b"
        assert store.meta_get("absent") is None

    def test_op_log_roundtrip_preserves_order_and_bits(self, store, rng):
        batches = [rng.integers(-(2**62), 2**62, n) for n in (1, 17, 300)]
        for i, keys in enumerate(batches):
            vals = None if i == 0 else keys * 2
            store.record_op("insert", keys, vals)
        ops = store.iter_ops()
        assert [op.seq for op in ops] == sorted(op.seq for op in ops)
        assert len(ops) == store.op_count() == 3
        for i, (op, keys) in enumerate(zip(ops, batches)):
            assert op.op == "insert"
            assert np.array_equal(op.keys, keys)
            if i == 0:
                assert op.values is None
            else:
                assert np.array_equal(op.values, keys * 2)

    def test_prune_keeps_newest(self, store, rng):
        for _ in range(5):
            store.record_op("insert", rng.integers(0, 100, 4))
        last_two = [op.seq for op in store.iter_ops()][-2:]
        assert store.prune_op_log(keep_last=2) == 3
        assert [op.seq for op in store.iter_ops()] == last_two

    def test_counters_upsert_roundtrip(self, store):
        store.save_counters({"a": 1, "b": 2})
        store.save_counters({"b": 20, "c": 3})
        assert store.load_counters() == {"a": 1, "b": 20, "c": 3}

    def test_cache_blocks_roundtrip(self, store, rng):
        blocks = [
            (0, 7, rng.integers(0, 100, 8), rng.integers(0, 100, 8)),
            (2, 1, rng.integers(0, 100, 3), rng.integers(0, 100, 3)),
        ]
        store.save_cache_blocks(blocks)
        loaded = store.load_cache_blocks()
        assert [(s, b) for s, b, _, _ in loaded] == [(0, 7), (2, 1)]
        for (_, _, keys, vals), (_, _, k2, v2) in zip(blocks, loaded):
            assert np.array_equal(keys, k2) and np.array_equal(vals, v2)

    def test_replay_bundles_everything(self, store, rng):
        keys = rng.integers(0, 1000, 10)
        store.record_op("insert", keys)
        store.save_counters({"x": 5})
        store.save_cache_blocks([(1, 2, keys, keys * 2)])
        state = store.replay()
        assert state.counters == {"x": 5}
        assert len(state.ops) == 1 and np.array_equal(state.ops[0].keys, keys)
        assert len(state.cache_blocks) == 1

    def test_survives_reopen(self, tmp_path, rng):
        path = tmp_path / "r.db"
        keys = rng.integers(0, 1000, 6)
        with RuntimeStore(path) as first:
            first.record_op("insert", keys)
            first.save_counters({"n": 42})
        with RuntimeStore(path) as second:
            assert second.journal_mode() == "wal"
            state = second.replay()
            assert state.counters == {"n": 42}
            assert np.array_equal(state.ops[0].keys, keys)


class TestRestartRecovery:
    def test_http_inserts_survive_a_restart(self, tmp_path, rng):
        """Accepted writes and counters come back after the process dies."""
        base = np.unique(rng.integers(0, 10**8, 1_500))
        fresh = np.unique(int(base[-1]) + 1 + rng.integers(0, 2**30, 100))
        store_path = tmp_path / "runtime.db"

        registry = MetricsRegistry(enabled=True)
        with scoped_registry(registry):
            service = IndexService.build(base, family=FAMILY, n_shards=N_SHARDS)
            with RuntimeStore(store_path) as store:
                with ServerThread(service, registry=registry, store=store) as srv:
                    with HttpIndexClient(srv.host, srv.port) as client:
                        client.insert(fresh.tolist())
                        client.lookup(fresh[:10].tolist())
                        first_stats = client.stats()
            service.close()
        assert first_stats["store"]["journal_mode"] == "wal"
        assert first_stats["store"]["op_log_entries"] == 1

        # "Restart": a brand-new process state — fresh registry, fresh
        # service built from only the BASE keys — pointed at the store.
        registry2 = MetricsRegistry(enabled=True)
        with scoped_registry(registry2):
            service2 = IndexService.build(base, family=FAMILY, n_shards=N_SHARDS)
            with RuntimeStore(store_path) as store:
                with ServerThread(service2, registry=registry2, store=store) as srv:
                    with HttpIndexClient(srv.host, srv.port) as client:
                        resp = client.lookup(fresh.tolist())
                        stats = client.stats()
            service2.close()
        assert all(resp["found"])  # replay restored every accepted write
        assert resp["values"] == [int(v) for v in fresh]  # default value = key
        http = stats["http"]
        assert http["http_requests_total.insert"] == 1
        assert http["http_keys_inserted_total"] == fresh.size
        assert registry2.counter("http_replayed_ops_total").value == 1

    def test_no_replay_flag_skips_restoration(self, tmp_path, rng):
        base = np.unique(rng.integers(0, 10**8, 1_000))
        fresh = int(base[-1]) + np.arange(1, 21)
        store_path = tmp_path / "runtime.db"
        registry = MetricsRegistry(enabled=True)
        with scoped_registry(registry):
            service = IndexService.build(base, family=FAMILY, n_shards=N_SHARDS)
            with RuntimeStore(store_path) as store:
                with ServerThread(service, registry=registry, store=store) as srv:
                    with HttpIndexClient(srv.host, srv.port) as client:
                        client.insert(fresh.tolist())
            service.close()
        registry2 = MetricsRegistry(enabled=True)
        with scoped_registry(registry2):
            service2 = IndexService.build(base, family=FAMILY, n_shards=N_SHARDS)
            with RuntimeStore(store_path) as store:
                with ServerThread(
                    service2, registry=registry2, store=store, replay=False
                ) as srv:
                    with HttpIndexClient(srv.host, srv.port) as client:
                        resp = client.lookup(fresh.tolist())
            service2.close()
        assert not any(resp["found"])


class TestOpLogPruning:
    def test_last_seq_is_stable_across_pruning(self, store, rng):
        assert store.last_seq() == 0
        for _ in range(4):
            store.record_op("insert", rng.integers(0, 100, 3))
        assert store.last_seq() == 4
        assert store.prune_op_log_upto(2) == 2
        # The high-water mark remembers pruned rows; new ops continue it.
        assert store.last_seq() == 4
        assert store.record_op("insert", rng.integers(0, 100, 3)) == 5

    def test_prune_upto_leaves_newer_ops(self, store, rng):
        batches = [rng.integers(0, 100, 3) for _ in range(5)]
        for keys in batches:
            store.record_op("insert", keys)
        assert store.prune_op_log_upto(3) == 3
        remaining = store.iter_ops()
        assert [op.seq for op in remaining] == [4, 5]
        for op, keys in zip(remaining, batches[3:]):
            assert np.array_equal(op.keys, keys)
        assert store.prune_op_log_upto(0) == 0  # no-op floor

    def test_durable_sync_prunes_only_captured_ops(self, tmp_path, rng):
        """Front-door durable_sync: flushed generation ⇒ op rows deleted."""
        from repro.server.app import HttpFrontDoor
        from repro.store import DurableStore

        base = np.unique(rng.integers(0, 10**8, 1_200))
        registry = MetricsRegistry(enabled=True)
        with scoped_registry(registry):
            service = IndexService.build(
                base, family=FAMILY, n_shards=N_SHARDS,
                store=DurableStore(tmp_path / "data"),
                staleness_threshold=10.0,
            )
            with RuntimeStore(tmp_path / "runtime.db") as rt:
                front = HttpFrontDoor(service, registry=registry, store=rt)
                fresh = int(base[-1]) + np.arange(1, 40)
                for chunk in np.array_split(fresh, 3):
                    rt.record_op("insert", chunk, chunk * 2)
                    service.insert_many(chunk, chunk * 2)
                gen_before = service.durable_generation()
                assert front.durable_sync() == 3
                assert rt.op_count() == 0
                assert service.durable_generation() > gen_before
                assert rt.meta_get("durable_seq") == "3"
                assert rt.meta_get("durable_generation") == str(
                    service.durable_generation()
                )
                # A later op stays until the next sync captures it.
                rt.record_op("insert", fresh[:1])
                service.insert_many(fresh[:1])
                assert rt.op_count() == 1
                assert front.durable_sync() == 1
                assert rt.op_count() == 0
            service.close()
        with IndexService.open_snapshot(tmp_path / "data") as reopened:
            got = reopened.lookup_many(fresh)
            assert bool(got.found.all())

    def test_durable_sync_requires_both_layers(self, tmp_path, rng):
        from repro.server.app import HttpFrontDoor

        base = np.unique(rng.integers(0, 10**6, 500))
        service = IndexService.build(base, family=FAMILY, n_shards=N_SHARDS)
        try:
            with RuntimeStore(tmp_path / "runtime.db") as rt:
                rt.record_op("insert", base[:3])
                front = HttpFrontDoor(service, store=rt)
                assert front.durable_sync() == 0  # no DurableStore attached
                assert rt.op_count() == 1
        finally:
            service.close()

    def test_shutdown_syncs_through_server_thread(self, tmp_path, rng):
        """The graceful-shutdown path prunes the log before closing."""
        from repro.store import DurableStore

        base = np.unique(rng.integers(0, 10**8, 1_200))
        fresh = int(base[-1]) + np.arange(1, 30)
        registry = MetricsRegistry(enabled=True)
        with scoped_registry(registry):
            service = IndexService.build(
                base, family=FAMILY, n_shards=N_SHARDS,
                store=DurableStore(tmp_path / "data"),
                staleness_threshold=10.0,
            )
            with RuntimeStore(tmp_path / "runtime.db") as rt:
                with ServerThread(service, registry=registry, store=rt) as srv:
                    with HttpIndexClient(srv.host, srv.port) as client:
                        client.insert(fresh.tolist())
            service.close()
        with RuntimeStore(tmp_path / "runtime.db") as rt:
            assert rt.op_count() == 0  # shutdown's durable_sync pruned it
            assert int(rt.meta_get("durable_seq")) >= 1
        with IndexService.open_snapshot(tmp_path / "data") as reopened:
            got = reopened.lookup_many(fresh)
            assert bool(got.found.all())
            assert np.array_equal(got.values, fresh)  # default value = key
