"""The ``serve`` CLI as a real process: signals, drain, metrics file.

These run ``python -m repro serve ...`` in a subprocess because the
contract under test is process-shaped: SIGTERM must produce an
orderly drain (exit 0 in HTTP mode, 130 in the simulation), and the
``--metrics-out`` stream a live server writes must pass
``repro metrics --validate``.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.server import HttpIndexClient

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
LISTEN_RE = re.compile(r"http: listening on http://([\d.]+):(\d+)")


def spawn(*argv: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": str(REPO_SRC)},
    )


def wait_for_port(proc: subprocess.Popen, timeout: float = 60.0) -> tuple[str, int]:
    """Read stdout until the bound-port line appears."""
    deadline = time.monotonic() + timeout
    lines = []
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = LISTEN_RE.search(line)
        if match:
            return match.group(1), int(match.group(2))
    proc.kill()
    raise AssertionError(f"server never announced its port; output: {lines}")


@pytest.mark.slow
class TestHttpServeProcess:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        metrics_path = tmp_path / "metrics.jsonl"
        proc = spawn(
            "serve", "--http", "--port", "0", "--n", "2000", "--shards", "2",
            "--metrics-out", str(metrics_path), "--metrics-every-s", "0.2",
            "--store", str(tmp_path / "runtime.db"),
        )
        try:
            host, port = wait_for_port(proc)
            with HttpIndexClient(host, port) as client:
                health = client.health()
                assert health["admission"]["closing"] is False
                client.insert([10**15, 10**15 + 1])
                assert all(client.lookup([10**15, 10**15 + 1])["found"])
            time.sleep(0.5)  # let the snapshot loop write a few lines
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert "drained and stopped" in out
        # The stream a live server wrote passes the CI validator.
        assert metrics_path.exists()
        assert main(["metrics", "--in", str(metrics_path), "--validate"]) == 0

    def test_store_replay_across_process_restart(self, tmp_path):
        store = tmp_path / "runtime.db"
        args = (
            "serve", "--http", "--port", "0", "--n", "2000", "--shards", "2",
            "--seed", "7", "--store", str(store),
        )
        proc = spawn(*args)
        try:
            host, port = wait_for_port(proc)
            with HttpIndexClient(host, port) as client:
                client.insert([10**15 + i for i in range(5)])
            proc.send_signal(signal.SIGTERM)
            proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0

        proc = spawn(*args)  # same dataset/seed, fresh process
        try:
            host, port = wait_for_port(proc)
            with HttpIndexClient(host, port) as client:
                resp = client.lookup([10**15 + i for i in range(5)])
                stats = client.stats()
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0, out
        assert all(resp["found"])
        assert stats["store"]["op_log_entries"] >= 1


@pytest.mark.slow
class TestSimulationSignals:
    def test_sigterm_interrupts_simulation_cleanly(self):
        proc = spawn(
            "serve", "--n", "4000", "--shards", "2", "--ops", "2000000",
            "--batch", "512",
        )
        try:
            time.sleep(3.0)  # well inside the workload loop
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 130, out
        assert "interrupted — draining merges and closing shards" in out
