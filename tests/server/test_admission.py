"""Admission control: bounded queue, 429 backpressure, graceful drain.

Unit layer drives :class:`AdmissionController` directly inside a
fresh event loop; the end-to-end layer pushes a slowed service into
overload over real sockets and asserts the acceptance criteria:
queue-full returns 429 with a ``Retry-After`` hint, the server
recovers the moment load drops, and work admitted before shutdown is
never dropped.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, scoped_registry
from repro.server import (
    AdmissionController,
    ClosingError,
    HttpIndexClient,
    HttpStatusError,
    OverloadedError,
    ServerThread,
)
from repro.serving import IndexService

from .conftest import FAMILY, N_SHARDS, SlowService


def run_async(coro):
    return asyncio.run(coro)


class TestControllerUnit:
    def test_validates_knobs(self):
        with pytest.raises(ValueError):
            run_async(self._make(max_inflight=0))
        with pytest.raises(ValueError):
            run_async(self._make(max_pending=-1))

    @staticmethod
    async def _make(**kwargs):
        AdmissionController(registry=MetricsRegistry(enabled=False), **kwargs)

    def test_runs_and_accounts(self):
        async def scenario():
            reg = MetricsRegistry(enabled=True)
            ctl = AdmissionController(max_pending=4, max_inflight=2, registry=reg)
            results = await asyncio.gather(*[ctl.run(lambda i=i: i * i) for i in range(4)])
            assert sorted(results) == [0, 1, 4, 9]
            assert reg.counter("http_admitted_total").value == 4
            assert reg.counter("http_completed_total").value == 4
            assert reg.counter("http_rejected_total").value == 0
            assert ctl.queued == 0 and ctl.running == 0
            ctl.shutdown_pool()

        run_async(scenario())

    def test_rejects_when_full_then_recovers(self):
        async def scenario():
            ctl = AdmissionController(
                max_pending=1, max_inflight=1, registry=MetricsRegistry(enabled=True)
            )
            gate = threading.Event()
            blocked = [asyncio.ensure_future(ctl.run(gate.wait)) for _ in range(2)]
            await asyncio.sleep(0.1)  # one running, one queued → full
            with pytest.raises(OverloadedError) as exc:
                await ctl.run(lambda: None)
            assert exc.value.retry_after_s >= 1.0
            assert ctl.registry.counter("http_rejected_total").value == 1
            gate.set()
            await asyncio.gather(*blocked)
            assert await ctl.run(lambda: "ok") == "ok"  # recovered
            ctl.shutdown_pool()

        run_async(scenario())

    def test_exceptions_propagate_and_free_the_slot(self):
        async def scenario():
            ctl = AdmissionController(
                max_pending=0, max_inflight=1, registry=MetricsRegistry(enabled=False)
            )
            with pytest.raises(RuntimeError, match="boom"):
                await ctl.run(self._boom)
            assert await ctl.run(lambda: 7) == 7
            ctl.shutdown_pool()

        run_async(scenario())

    @staticmethod
    def _boom():
        raise RuntimeError("boom")

    def test_close_refuses_but_drain_finishes_admitted_work(self):
        async def scenario():
            ctl = AdmissionController(
                max_pending=2, max_inflight=1, registry=MetricsRegistry(enabled=False)
            )
            gate = threading.Event()
            done = []
            admitted = [
                asyncio.ensure_future(
                    ctl.run(lambda i=i: (gate.wait(), done.append(i))[1])
                )
                for i in range(3)
            ]
            await asyncio.sleep(0.1)
            ctl.close()
            with pytest.raises(ClosingError):
                await ctl.run(lambda: None)
            assert not await ctl.drain(timeout=0.1)  # still blocked
            gate.set()
            assert await ctl.drain(timeout=10.0)
            await asyncio.gather(*admitted)
            assert len(done) == 3  # nothing admitted was dropped
            ctl.shutdown_pool()

        run_async(scenario())

    def test_retry_after_scales_with_backlog(self):
        async def scenario():
            ctl = AdmissionController(
                max_pending=8, max_inflight=1, registry=MetricsRegistry(enabled=False)
            )
            assert ctl.retry_after_s() == 1.0  # floor before any observation
            ctl._observe_batch(2.0)
            ctl._admitted = 5
            assert ctl.retry_after_s() >= 2.0
            ctl.shutdown_pool()

        run_async(scenario())


@pytest.fixture()
def slow_server(rng):
    """A served service whose every batch takes ~0.25 s, queue depth 2."""
    keys = np.unique(rng.integers(0, 10**8, 1_200))
    registry = MetricsRegistry(enabled=True)
    with scoped_registry(registry):
        service = IndexService.build(keys, family=FAMILY, n_shards=N_SHARDS)
        slow = SlowService(service, delay_s=0.25)
        try:
            with ServerThread(
                slow, registry=registry, max_pending=1, max_inflight=1
            ) as srv:
                yield srv, keys, registry
        finally:
            service.close()


class TestEndToEndOverload:
    def test_429_with_retry_after_then_recovery(self, slow_server, rng):
        srv, keys, registry = slow_server
        q = rng.choice(keys, 64).tolist()
        outcomes: list[tuple[int, float]] = []
        lock = threading.Lock()

        def fire():
            with HttpIndexClient(srv.host, srv.port) as client:
                try:
                    client.lookup(q)
                    row = (200, 0.0)
                except HttpStatusError as exc:
                    row = (exc.status, exc.retry_after_s)
            with lock:
                outcomes.append(row)

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        statuses = sorted(s for s, _ in outcomes)
        assert statuses.count(200) >= 1
        assert statuses.count(429) >= 2  # capacity 2 < 6 concurrent
        assert all(ra >= 1.0 for s, ra in outcomes if s == 429)
        assert registry.counter("http_rejected_total").value >= 2
        # Load gone → the very next request is served.
        with HttpIndexClient(srv.host, srv.port) as client:
            assert client.lookup(q)["n"] == len(q)

    def test_health_reports_admission_limits(self, slow_server):
        srv, _keys, _registry = slow_server
        with HttpIndexClient(srv.host, srv.port) as client:
            adm = client.health()["admission"]
        assert adm == {
            "queued": 0,
            "running": 0,
            "max_pending": 1,
            "max_inflight": 1,
            "closing": False,
        }


class TestDrainOnShutdown:
    def test_inflight_work_completes_through_shutdown(self, rng):
        keys = np.unique(rng.integers(0, 10**8, 1_200))
        registry = MetricsRegistry(enabled=True)
        with scoped_registry(registry):
            service = IndexService.build(keys, family=FAMILY, n_shards=N_SHARDS)
            slow = SlowService(service, delay_s=0.5)
            srv = ServerThread(slow, registry=registry).start()
            results: dict[str, object] = {}

            def long_lookup():
                with HttpIndexClient(srv.host, srv.port) as client:
                    try:
                        results["resp"] = client.lookup(rng.choice(keys, 32).tolist())
                    except Exception as exc:  # noqa: BLE001 — recorded for assert
                        results["error"] = exc

            worker = threading.Thread(target=long_lookup)
            worker.start()
            time.sleep(0.2)  # batch admitted and executing
            srv.stop()  # graceful: drains before closing connections
            worker.join(timeout=30)
            assert "error" not in results, results.get("error")
            assert results["resp"]["n"] == 32
            assert registry.counter("http_completed_total").value >= 1
            # After shutdown the port no longer accepts work.
            with pytest.raises(OSError):
                with HttpIndexClient(srv.host, srv.port, timeout=2) as client:
                    client.health()
            service.close()
