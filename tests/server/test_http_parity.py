"""HTTP responses must be bit-identical to in-process twin calls.

Plus the protocol edges: malformed bodies → 400, unknown routes →
404, wrong methods → 405, and the observability endpoints
(``/v1/health``, ``/v1/stats``, ``/metrics``) carrying the shapes the
CLI and CI contract on.
"""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.obs.export import PROMETHEUS_CONTENT_TYPE
from repro.server import HttpStatusError
from repro.server.app import (
    BadRequestError,
    parse_insert_request,
    parse_lookup_request,
    parse_range_request,
)


class TestLookupParity:
    @pytest.mark.parametrize("size", [1, 64, 512])
    def test_bit_identical_including_misses(self, twin_pair, rng, size):
        client, twin, keys = twin_pair
        q = np.concatenate(
            [rng.choice(keys, size), rng.integers(0, 10**9, max(1, size // 4))]
        )
        resp = client.lookup(q.tolist())
        ref = twin.lookup_many(q)
        assert resp["n"] == q.size
        assert resp["found"] == ref.found.tolist()
        assert resp["values"] == ref.values.tolist()
        assert resp["levels"] == ref.levels.tolist()
        assert resp["search_steps"] == ref.search_steps.tolist()

    def test_repeat_batches_track_twin_cache_state(self, twin_pair, rng):
        # Cost telemetry changes across calls (cache warms up); both
        # sides must change in lockstep.
        client, twin, keys = twin_pair
        q = rng.choice(keys, 256)
        for _ in range(3):
            resp = client.lookup(q.tolist())
            ref = twin.lookup_many(q)
            assert resp["levels"] == ref.levels.tolist()
            assert resp["search_steps"] == ref.search_steps.tolist()


class TestWriteAndRangeParity:
    def test_insert_visible_and_bit_identical(self, twin_pair, rng):
        client, twin, keys = twin_pair
        fresh = np.unique(int(keys[-1]) + 1 + rng.integers(0, 2**32, 200))
        assert client.insert(fresh.tolist()) == {"accepted": int(fresh.size)}
        twin.insert_many(fresh)
        q = np.concatenate([fresh, rng.choice(keys, 100)])
        resp = client.lookup(q.tolist())
        ref = twin.lookup_many(q)
        assert resp["found"] == ref.found.tolist()
        assert resp["values"] == ref.values.tolist()
        assert all(resp["found"][: fresh.size])

    def test_insert_with_explicit_values(self, twin_pair, rng):
        client, twin, keys = twin_pair
        fresh = np.unique(int(keys[-1]) + 1 + rng.integers(0, 2**32, 64))
        vals = fresh * 3
        client.insert(fresh.tolist(), vals.tolist())
        twin.insert_many(fresh, vals)
        resp = client.lookup(fresh.tolist())
        ref = twin.lookup_many(fresh)
        assert resp["values"] == ref.values.tolist() == vals.tolist()

    def test_range_parity(self, twin_pair):
        client, twin, keys = twin_pair
        low, high = int(keys[50]), int(keys[400])
        resp = client.range(low, high)
        expected = [[int(k), int(v)] for k, v in twin.range_query(low, high)]
        assert resp["pairs"] == expected
        assert resp["n"] == len(expected)


class TestObservabilityEndpoints:
    def test_health_carries_service_and_admission_state(self, twin_pair):
        client, _twin, _keys = twin_pair
        report = client.health()
        assert report["admission"]["max_inflight"] >= 1
        assert report["admission"]["closing"] is False
        assert "shards" in report

    def test_stats_counts_requests(self, twin_pair, rng):
        client, _twin, keys = twin_pair
        client.lookup(rng.choice(keys, 32).tolist())
        stats = client.stats()
        assert stats["http"]["http_requests_total.lookup"] >= 1
        assert stats["http"]["http_keys_looked_up_total"] >= 32
        assert stats["service"]["n_lookups"] >= 32
        assert stats["n_shards"] >= 1
        assert stats["store"] is None

    def test_metrics_prometheus_exposition(self, twin_pair, rng):
        client, _twin, keys = twin_pair
        client.lookup(rng.choice(keys, 16).tolist())
        status, headers, payload = client.request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == PROMETHEUS_CONTENT_TYPE
        text = payload.decode("utf-8")
        assert "# TYPE http_admitted_total counter" in text
        assert "http_requests_total" in text
        assert "http_batch_seconds_bucket" in text


class TestProtocolErrors:
    def test_unknown_route_404(self, twin_pair):
        client, _twin, _keys = twin_pair
        status, _headers, payload = client.request("GET", "/v1/nope")
        assert status == 404
        assert "error" in json.loads(payload)

    def test_wrong_method_405(self, twin_pair):
        client, _twin, _keys = twin_pair
        status, _h, _p = client.request("GET", "/v1/lookup")
        assert status == 405
        status, _h, _p = client.request("POST", "/v1/health", {"x": 1})
        assert status == 405

    @pytest.mark.parametrize(
        "body",
        [
            {},
            {"keys": []},
            {"keys": "abc"},
            {"keys": [1, "two"]},
            {"keys": [1, True]},
            {"keys": [2**63]},
        ],
    )
    def test_bad_lookup_bodies_400(self, twin_pair, body):
        client, _twin, _keys = twin_pair
        with pytest.raises(HttpStatusError) as exc:
            client._json("POST", "/v1/lookup", body)
        assert exc.value.status == 400

    def test_bad_range_bodies_400(self, twin_pair):
        client, _twin, _keys = twin_pair
        for body in ({"low": 5, "high": 1}, {"low": "a", "high": 2}, {"low": 1}):
            with pytest.raises(HttpStatusError) as exc:
                client._json("POST", "/v1/range", body)
            assert exc.value.status == 400

    def test_values_length_mismatch_400(self, twin_pair):
        client, _twin, _keys = twin_pair
        with pytest.raises(HttpStatusError) as exc:
            client._json("POST", "/v1/insert", {"keys": [1, 2], "values": [9]})
        assert exc.value.status == 400

    def test_malformed_json_400(self, twin_pair):
        client, _twin, _keys = twin_pair
        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        try:
            conn.request(
                "POST",
                "/v1/lookup",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_server_survives_error_barrage(self, twin_pair, rng):
        client, twin, keys = twin_pair
        for _ in range(3):
            client.request("GET", "/v1/nope")
            client.request("POST", "/v1/lookup", {"keys": []})
        q = rng.choice(keys, 16)
        assert client.lookup(q.tolist())["found"] == twin.lookup_many(q).found.tolist()


class TestRequestParsers:
    def test_lookup_rejects_non_object(self):
        with pytest.raises(BadRequestError):
            parse_lookup_request([1, 2, 3])

    def test_insert_defaults_values_to_none(self):
        keys, values = parse_insert_request({"keys": [3, 1]})
        assert keys.dtype == np.int64 and values is None

    def test_range_bounds_validated(self):
        assert parse_range_request({"low": -5, "high": 5}) == (-5, 5)
        with pytest.raises(BadRequestError):
            parse_range_request({"low": 0, "high": True})
