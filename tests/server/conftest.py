"""Shared fixtures for the HTTP front-door suite.

Parity here is always *twin parity*: lookup cost telemetry (levels /
search_steps) is deliberately non-idempotent on one service — the
read-through block cache turns repeat blocks into levels-0 answers —
so a response can only be compared against a second ``IndexService``
built from the same keys and fed the same op sequence in-process.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, scoped_registry
from repro.server import HttpIndexClient, ServerThread
from repro.serving import IndexService

FAMILY = "lipp"
N_SHARDS = 3


@pytest.fixture()
def keyset(rng) -> np.ndarray:
    return np.unique(rng.integers(0, 10**9, 2_000))


@pytest.fixture()
def twin_pair(keyset):
    """(client, twin, keys): an HTTP-served service and its twin."""
    registry = MetricsRegistry(enabled=True)
    with scoped_registry(registry):
        service = IndexService.build(keyset, family=FAMILY, n_shards=N_SHARDS)
        twin = IndexService.build(keyset, family=FAMILY, n_shards=N_SHARDS)
        try:
            with ServerThread(service, registry=registry) as srv:
                with HttpIndexClient(srv.host, srv.port) as client:
                    yield client, twin, keyset
        finally:
            service.close()
            twin.close()


class SlowService:
    """Delegating wrapper that makes every batch take ``delay_s``.

    Slowing the service (not the server) is how the admission tests
    force a real backlog with a handful of client threads.
    """

    def __init__(self, inner: IndexService, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def lookup_many(self, keys):
        time.sleep(self._delay_s)
        return self._inner.lookup_many(keys)

    def insert_many(self, keys, values=None):
        time.sleep(self._delay_s)
        return self._inner.insert_many(keys, values)
