"""Tests for the derivative-based candidate filter (Section 4.2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import enumerate_gaps
from repro.core.derivative import GapContext, loss_derivative
from repro.core.segment_stats import SegmentStats

key_sets = st.lists(
    st.integers(min_value=0, max_value=2_000), min_size=4, max_size=30, unique=True
).map(sorted)


def _gap_for_value(stats: SegmentStats, value: int) -> GapContext:
    for gap in enumerate_gaps(stats):
        if gap.low <= value <= gap.high:
            return gap
    raise AssertionError(f"no gap contains {value}")


class TestGapContext:
    def test_loss_matches_stats_evaluate(self, toy_keys):
        stats = SegmentStats(toy_keys)
        for gap in enumerate_gaps(stats):
            for value in range(gap.low, gap.high + 1):
                assert gap.loss(value) == pytest.approx(
                    stats.evaluate(value).loss, rel=1e-9
                )

    def test_derivative_matches_finite_difference(self, toy_keys):
        stats = SegmentStats(toy_keys)
        eps = 1e-4
        for gap in enumerate_gaps(stats):
            mid = (gap.low + gap.high) / 2.0
            numeric = (gap.loss(mid + eps) - gap.loss(mid - eps)) / (2 * eps)
            assert gap.derivative(mid) == pytest.approx(numeric, rel=1e-3, abs=1e-3)

    @settings(max_examples=40, deadline=None)
    @given(keys=key_sets)
    def test_derivative_finite_difference_property(self, keys):
        stats = SegmentStats(np.asarray(keys, dtype=np.int64))
        gaps = list(enumerate_gaps(stats))
        if not gaps:
            return
        gap = max(gaps, key=lambda g: g.length)
        probe = (gap.low + gap.high) / 2.0
        eps = max(1e-6, (gap.high - gap.low) * 1e-6)
        numeric = (gap.loss(probe + eps) - gap.loss(probe - eps)) / (2 * eps)
        assert gap.derivative(probe) == pytest.approx(numeric, rel=5e-2, abs=1e-2)

    def test_stationary_minimum_is_local_min(self, toy_keys):
        stats = SegmentStats(toy_keys)
        for gap in enumerate_gaps(stats):
            if gap.length <= 2:
                continue
            star = gap.stationary_minimum()
            if star is None or not (gap.low < star < gap.high):
                continue
            d_low = gap.derivative(gap.low)
            d_high = gap.derivative(gap.high)
            if d_low * d_high < 0:
                assert gap.loss(star) <= gap.loss(gap.low) + 1e-9
                assert gap.loss(star) <= gap.loss(gap.high) + 1e-9

    def test_length(self):
        stats = SegmentStats(np.array([0, 10]))
        (gap,) = list(enumerate_gaps(stats))
        assert gap.length == 9
        assert (gap.low, gap.high) == (1, 9)


class TestCandidateValues:
    def test_short_subsequence_keeps_all(self):
        stats = SegmentStats(np.array([0, 3, 100, 101, 104]))
        gap = _gap_for_value(stats, 1)  # gap {1, 2}: length 2
        assert gap.candidate_values() == [1, 2]

    def test_same_sign_keeps_endpoints_only(self, toy_keys):
        stats = SegmentStats(toy_keys)
        for gap in enumerate_gaps(stats):
            if gap.length <= 2:
                continue
            d_low = gap.derivative(gap.low)
            d_high = gap.derivative(gap.high)
            if d_low * d_high >= 0:
                assert gap.candidate_values() == [gap.low, gap.high]

    def test_opposite_sign_returns_interior(self, toy_keys):
        stats = SegmentStats(toy_keys)
        found_interior = False
        for gap in enumerate_gaps(stats):
            if gap.length <= 2:
                continue
            if gap.derivative(gap.low) * gap.derivative(gap.high) < 0:
                values = gap.candidate_values()
                assert all(gap.low <= v <= gap.high for v in values)
                found_interior = True
        assert found_interior, "toy set should contain a zero-crossing gap"

    def test_best_candidate_is_brute_force_min(self, toy_keys):
        """Filtered candidates never miss the true per-gap minimum."""
        stats = SegmentStats(toy_keys)
        for gap in enumerate_gaps(stats):
            brute = min(range(gap.low, gap.high + 1), key=gap.loss)
            __, best_loss = gap.best_candidate()
            assert best_loss == pytest.approx(gap.loss(brute), rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(keys=key_sets)
    def test_best_candidate_brute_force_property(self, keys):
        stats = SegmentStats(np.asarray(keys, dtype=np.int64))
        for gap in enumerate_gaps(stats):
            brute_loss = min(gap.loss(v) for v in range(gap.low, gap.high + 1))
            __, best_loss = gap.best_candidate()
            assert best_loss == pytest.approx(brute_loss, rel=1e-7, abs=1e-7)


class TestLossDerivativeHelper:
    def test_matches_gap_context(self, toy_keys):
        stats = SegmentStats(toy_keys)
        gap = _gap_for_value(stats, 15)
        assert loss_derivative(stats, 15) == pytest.approx(gap.derivative(15), rel=1e-9)
