"""Tests for the Gap Insertion (GI) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import SmoothingBudgetError
from repro.core.gap_insertion import build_gap_insertion


class TestBuildGapInsertion:
    def test_every_key_is_findable(self, small_keys):
        layout = build_gap_insertion(small_keys, gap_factor=1.5)
        for key in small_keys.tolist():
            found, __ = layout.lookup_steps(key)
            assert found, key

    def test_missing_key_not_found(self, small_keys):
        layout = build_gap_insertion(small_keys, gap_factor=1.5)
        missing = int(small_keys[0]) - 3
        found, __ = layout.lookup_steps(missing)
        assert not found

    def test_n_keys_preserved(self, small_keys):
        layout = build_gap_insertion(small_keys)
        assert layout.n_keys == small_keys.size

    def test_capacity_scales_with_gap_factor(self, small_keys):
        small = build_gap_insertion(small_keys, gap_factor=1.1)
        large = build_gap_insertion(small_keys, gap_factor=2.0)
        assert large.capacity > small.capacity

    def test_storage_expansion_reported(self, small_keys):
        layout = build_gap_insertion(small_keys, gap_factor=1.5)
        assert layout.storage_expansion_pct > 0.0

    def test_larger_factor_fewer_overflows(self, clustered_keys):
        tight = build_gap_insertion(clustered_keys, gap_factor=1.05)
        roomy = build_gap_insertion(clustered_keys, gap_factor=2.0)
        assert roomy.overflow_rate_pct <= tight.overflow_rate_pct

    def test_overflow_keys_cost_more_steps(self, clustered_keys):
        layout = build_gap_insertion(clustered_keys, gap_factor=1.2)
        if layout.overflow.size == 0:
            pytest.skip("no overflow on this draw")
        slot_key = None
        for candidate in clustered_keys.tolist():
            if candidate not in set(layout.overflow.tolist()):
                predicted = layout.model.predict_clamped(candidate, layout.capacity)
                if int(layout.slots[predicted]) == candidate:
                    slot_key = candidate
                    break
        assert slot_key is not None
        __, direct_steps = layout.lookup_steps(slot_key)
        __, overflow_steps = layout.lookup_steps(int(layout.overflow[0]))
        assert overflow_steps > direct_steps

    def test_rejects_gap_factor_below_one(self, small_keys):
        with pytest.raises(SmoothingBudgetError):
            build_gap_insertion(small_keys, gap_factor=0.9)

    def test_overflow_sorted(self, clustered_keys):
        layout = build_gap_insertion(clustered_keys, gap_factor=1.1)
        assert np.all(np.diff(layout.overflow) > 0) or layout.overflow.size <= 1

    def test_slots_hold_keys_or_sentinel(self, small_keys):
        layout = build_gap_insertion(small_keys)
        placed = layout.slots[layout.slots >= 0]
        assert set(placed.tolist()) <= set(small_keys.tolist())
