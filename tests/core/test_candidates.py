"""Tests for candidate enumeration/filtering and the Fig. 3/4 curves."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.candidates import (
    all_free_values,
    derivative_curve,
    enumerate_gaps,
    filtered_candidates,
    loss_curve,
)
from repro.core.segment_stats import SegmentStats


class TestEnumerateGaps:
    def test_counts_and_bounds(self, toy_keys):
        stats = SegmentStats(toy_keys)
        gaps = list(enumerate_gaps(stats))
        # toy keys [2,6,7,9,10,11,13,23,28,29]: free runs 3-5, 8, 12,
        # 14-22, 24-27 → 5 gaps.
        assert len(gaps) == 5
        assert (gaps[0].low, gaps[0].high) == (3, 5)
        assert (gaps[-1].low, gaps[-1].high) == (24, 27)

    def test_adjacent_keys_produce_no_gap(self):
        stats = SegmentStats(np.array([1, 2, 3, 10]))
        gaps = list(enumerate_gaps(stats))
        assert len(gaps) == 1
        assert (gaps[0].low, gaps[0].high) == (4, 9)

    def test_rank_matches_insertion_rank(self, toy_keys):
        stats = SegmentStats(toy_keys)
        for gap in enumerate_gaps(stats):
            assert gap.rank == stats.insertion_rank(gap.low)


class TestAllFreeValues:
    def test_excludes_existing_keys(self, toy_keys):
        stats = SegmentStats(toy_keys)
        free = all_free_values(stats)
        assert not set(free.tolist()) & set(toy_keys.tolist())

    def test_bounded_by_extremes(self, toy_keys):
        free = all_free_values(SegmentStats(toy_keys))
        assert free.min() > toy_keys[0]
        assert free.max() < toy_keys[-1]

    def test_count(self, toy_keys):
        free = all_free_values(SegmentStats(toy_keys))
        expected = (toy_keys[-1] - toy_keys[0] - 1) - (toy_keys.size - 2)
        assert free.size == expected

    def test_dense_keys_have_no_free_values(self):
        assert all_free_values(SegmentStats(np.arange(10))).size == 0


class TestFilteredCandidates:
    def test_contains_global_minimum(self, toy_keys):
        """The filter must keep the best virtual point (Fig. 3's 23-ish)."""
        stats = SegmentStats(toy_keys)
        values, losses = loss_curve(stats)
        best_value = int(values[np.argmin(losses)])
        best_loss = float(losses.min())
        cands = dict(filtered_candidates(stats))
        assert min(cands.values()) == pytest.approx(best_loss, rel=1e-9)
        assert any(
            loss == pytest.approx(best_loss, rel=1e-9) for loss in cands.values()
        ), best_value

    def test_is_subset_of_free_values(self, toy_keys):
        stats = SegmentStats(toy_keys)
        free = set(all_free_values(stats).tolist())
        assert {v for v, __ in filtered_candidates(stats)} <= free

    def test_filter_reduces_candidate_count(self, small_keys):
        stats = SegmentStats(small_keys)
        filtered = filtered_candidates(stats)
        assert len(filtered) < all_free_values(stats).size


class TestCurves:
    def test_loss_curve_covers_every_free_value(self, toy_keys):
        stats = SegmentStats(toy_keys)
        values, losses = loss_curve(stats)
        assert values.size == all_free_values(stats).size
        assert losses.shape == values.shape

    def test_loss_curve_matches_scalar_evaluation(self, toy_keys):
        stats = SegmentStats(toy_keys)
        values, losses = loss_curve(stats)
        for v, loss in list(zip(values.tolist(), losses.tolist()))[::3]:
            assert loss == pytest.approx(stats.evaluate(v).loss, rel=1e-9)

    def test_derivative_curve_signs_bracket_minimum(self, toy_keys):
        """Within the gap holding the global optimum, the derivative
        crosses zero (Fig. 4's kv1 crossing)."""
        stats = SegmentStats(toy_keys)
        values, losses = loss_curve(stats)
        best = int(values[np.argmin(losses)])
        dvalues, derivs = derivative_curve(stats)
        gap_mask = np.abs(dvalues - best) <= 5
        signs = np.sign(derivs[gap_mask])
        assert signs.min() < 0 < signs.max() or np.any(signs == 0)

    def test_fig3_minimum_location(self, toy_keys):
        """The toy curve's minimum falls in the large 14-22 gap, like
        the paper's Fig. 3 minimum at value 23 inside its big gap."""
        stats = SegmentStats(toy_keys)
        values, losses = loss_curve(stats)
        best = int(values[np.argmin(losses)])
        assert 14 <= best <= 22
