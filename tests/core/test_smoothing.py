"""Tests for Algorithm 1 (greedy), the exhaustive solver, and the
fixed-model ablation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SmoothingBudgetError
from repro.core.loss import exact_refit_loss, fit_and_loss
from repro.core.segment_stats import SegmentStats
from repro.core.smoothing import (
    resolve_budget,
    smooth_keys,
    smooth_keys_exhaustive,
    smooth_keys_fixed_model,
)

key_sets = st.lists(
    st.integers(min_value=0, max_value=3_000), min_size=4, max_size=40, unique=True
).map(sorted)


class TestResolveBudget:
    def test_alpha_path(self):
        assert resolve_budget(100, alpha=0.1, budget=None) == 10

    def test_alpha_floor_is_one(self):
        assert resolve_budget(5, alpha=0.05, budget=None) == 1

    def test_budget_path(self):
        assert resolve_budget(100, alpha=None, budget=7) == 7

    def test_rejects_both(self):
        with pytest.raises(SmoothingBudgetError):
            resolve_budget(10, alpha=0.1, budget=5)

    def test_rejects_neither(self):
        with pytest.raises(SmoothingBudgetError):
            resolve_budget(10, alpha=None, budget=None)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5, 2.0])
    def test_rejects_alpha_out_of_range(self, alpha):
        with pytest.raises(SmoothingBudgetError):
            resolve_budget(10, alpha=alpha, budget=None)

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(SmoothingBudgetError):
            resolve_budget(10, alpha=None, budget=0)


class TestGreedySmoothing:
    def test_loss_trace_strictly_decreases(self, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        trace = result.loss_trace
        assert all(b < a for a, b in zip(trace, trace[1:]))

    def test_respects_budget(self, toy_keys):
        result = smooth_keys(toy_keys, budget=3)
        assert result.n_virtual <= 3

    def test_points_are_sorted_union(self, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        expected = sorted(toy_keys.tolist() + result.virtual_points)
        assert result.points.tolist() == expected

    def test_virtual_points_within_range(self, small_keys):
        result = smooth_keys(small_keys, budget=20)
        assert all(small_keys[0] < v < small_keys[-1] for v in result.virtual_points)

    def test_virtual_points_avoid_existing_keys(self, small_keys):
        result = smooth_keys(small_keys, budget=20)
        assert not set(result.virtual_points) & set(small_keys.tolist())

    def test_final_loss_matches_refit_on_points(self, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        __, loss = fit_and_loss(result.points)
        assert result.final_loss == pytest.approx(loss, rel=1e-9)

    def test_final_loss_matches_exact_oracle(self, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        exact = float(exact_refit_loss(result.points.tolist()))
        assert result.final_loss == pytest.approx(exact, rel=1e-9)

    def test_fig2_reproduction(self, toy_keys):
        """Original loss ≈ 8.33, smoothed ≈ 2.29 at α = 0.5 (Fig. 2)."""
        result = smooth_keys(toy_keys, alpha=0.5)
        assert result.original_loss == pytest.approx(8.36, abs=0.05)
        assert result.final_loss == pytest.approx(2.2, abs=0.15)
        assert result.loss_improvement_pct > 70.0

    def test_loss_over_original_keys_lower_than_combined_count(self, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        assert result.loss_over_original_keys() <= result.final_loss + 1e-9

    def test_key_ranks_are_positions_in_points(self, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        for key, rank in zip(result.original_keys, result.key_ranks()):
            assert result.points[rank] == key

    def test_greedy_step_is_globally_best_single_point(self, toy_keys):
        """First inserted point must equal the single-point optimum."""
        result = smooth_keys(toy_keys, budget=1)
        stats = SegmentStats(toy_keys)
        free = [
            v for v in range(int(toy_keys[0]) + 1, int(toy_keys[-1]))
            if v not in set(toy_keys.tolist())
        ]
        best = min(free, key=lambda v: stats.evaluate(v).loss)
        assert result.final_loss == pytest.approx(stats.evaluate(best).loss, rel=1e-9)

    def test_stops_early_when_no_gain(self):
        # Perfectly linear keys: no virtual point can help.
        result = smooth_keys(np.arange(0, 200, 2), alpha=0.2)
        assert result.stopped_early
        assert result.final_loss == pytest.approx(result.original_loss)

    def test_dense_keys_no_free_values(self):
        result = smooth_keys(np.arange(50), alpha=0.5)
        assert result.n_virtual == 0
        assert result.stopped_early

    def test_larger_budget_never_worse(self, small_keys):
        small = smooth_keys(small_keys, budget=5)
        large = smooth_keys(small_keys, budget=25)
        assert large.final_loss <= small.final_loss + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(keys=key_sets)
    def test_smoothing_never_increases_loss_property(self, keys):
        result = smooth_keys(np.asarray(keys, dtype=np.int64), budget=5)
        assert result.final_loss <= result.original_loss + 1e-9
        # Invariant: reported loss is the exact refit loss of `points`.
        exact = float(exact_refit_loss(result.points.tolist()))
        assert result.final_loss == pytest.approx(exact, rel=1e-6, abs=1e-6)

    def test_elapsed_recorded(self, toy_keys):
        assert smooth_keys(toy_keys, budget=2).elapsed_seconds >= 0.0


class TestExhaustive:
    def test_never_worse_than_greedy(self, toy_keys):
        greedy = smooth_keys(toy_keys, alpha=0.5)
        exhaustive = smooth_keys_exhaustive(toy_keys, budget=2)
        # budget-2 exhaustive vs budget-5 greedy is not comparable;
        # compare equal budgets instead.
        greedy2 = smooth_keys(toy_keys, budget=2)
        assert exhaustive.final_loss <= greedy2.final_loss + 1e-9

    def test_single_point_matches_greedy(self, toy_keys):
        assert smooth_keys_exhaustive(toy_keys, budget=1).final_loss == pytest.approx(
            smooth_keys(toy_keys, budget=1).final_loss, rel=1e-9
        )

    def test_rejects_huge_searches(self):
        keys = np.arange(0, 10_000, 97)
        with pytest.raises(SmoothingBudgetError):
            smooth_keys_exhaustive(keys, budget=6)

    def test_table2_shape(self, toy_keys):
        """Greedy ≈ exhaustive quality at a fraction of the time
        (Table 2's 3-orders-of-magnitude gap)."""
        greedy = smooth_keys(toy_keys, budget=3)
        exhaustive = smooth_keys_exhaustive(toy_keys, budget=3)
        assert exhaustive.final_loss <= greedy.final_loss + 1e-9
        # Greedy must stay close to optimal (paper: 72.3% vs 74.4%
        # improvement); allow a 25% relative slack on the loss.
        assert greedy.final_loss <= exhaustive.final_loss * 1.25 + 1e-9


class TestFixedModelAblation:
    def test_never_beats_refitting(self, toy_keys):
        refit = smooth_keys(toy_keys, budget=4)
        fixed = smooth_keys_fixed_model(toy_keys, budget=4)
        # Compare on the combined-set refit objective: the fixed-model
        # variant measures loss against the unrefitted model, which can
        # only be ≥ the refit optimum for the same point multiset.
        __, fixed_refit_loss = fit_and_loss(fixed.points)
        assert refit.final_loss <= fixed_refit_loss + 1e-9

    def test_reduces_its_own_objective(self, toy_keys):
        fixed = smooth_keys_fixed_model(toy_keys, budget=4)
        assert fixed.final_loss <= fixed.original_loss + 1e-9

    def test_budget_respected(self, toy_keys):
        assert smooth_keys_fixed_model(toy_keys, budget=2).n_virtual <= 2
