"""Parity tests for the incremental SegmentStats commit path.

The incremental commit must be indistinguishable from throwing the
statistics away and rebuilding a fresh :class:`SegmentStats` over the
merged point set — not approximately, but *identically*: the moments
are maintained as exact integers, so the derived floats (and therefore
every candidate loss, every greedy selection, every trace entry) match
bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.core.segment_stats import SegmentStats
from repro.core.smoothing import _best_candidate, smooth_keys


def _free_values(points: np.ndarray, rng: np.random.Generator, count: int) -> list[int]:
    """Sample up to *count* committable values from the open gaps."""
    taken = set(points.tolist())
    out: list[int] = []
    lo, hi = int(points[0]), int(points[-1])
    for value in rng.integers(lo + 1, hi, size=count * 8).tolist():
        if value not in taken:
            taken.add(value)
            out.append(value)
            if len(out) == count:
                break
    return out


def _assert_identical(incremental: SegmentStats, rebuilt: SegmentStats) -> None:
    assert incremental.n == rebuilt.n
    assert np.array_equal(incremental.points, rebuilt.points)
    assert incremental.centered_sums() == rebuilt.centered_sums()
    assert incremental.base_loss() == rebuilt.base_loss()
    ranks = np.arange(incremental.n + 1, dtype=np.int64)
    assert np.array_equal(
        incremental.suffix_key_sums(ranks), rebuilt.suffix_key_sums(ranks)
    )


class TestCommitMatchesRebuild:
    @pytest.mark.parametrize("fixture_name", ["toy_keys", "small_keys", "clustered_keys"])
    def test_commit_sequence_bitwise_identical(self, fixture_name, request, rng):
        keys = request.getfixturevalue(fixture_name)
        stats = SegmentStats(keys)
        for value in _free_values(keys, rng, 40):
            stats.commit(value)
            rebuilt = SegmentStats(stats.points.copy())
            _assert_identical(stats, rebuilt)

    def test_candidate_losses_bitwise_identical(self, small_keys, rng):
        stats = SegmentStats(small_keys)
        for value in _free_values(small_keys, rng, 25):
            stats.commit(value)
        rebuilt = SegmentStats(stats.points.copy())
        points = stats.points
        lows = points[:-1] + 1
        highs = points[1:] - 1
        open_gaps = np.nonzero(highs >= lows)[0]
        values = lows[open_gaps]
        ranks = open_gaps + 1
        assert np.array_equal(
            stats.evaluate_many(values, ranks), rebuilt.evaluate_many(values, ranks)
        )

    def test_huge_magnitude_keys_fall_back_consistently(self):
        """Spans too wide for exact int64 prefixes degrade to the float
        path — which recomputes per commit and stays rebuild-identical."""
        keys = np.array([0, 2**61, 2**62, 2**62 + 10_000], dtype=np.int64)
        stats = SegmentStats(keys)
        stats.commit(12345)
        stats.commit(2**61 + 999)
        rebuilt = SegmentStats(stats.points.copy())
        _assert_identical(stats, rebuilt)

    def test_buffer_growth_preserves_points(self, toy_keys, rng):
        stats = SegmentStats(toy_keys)
        committed = _free_values(toy_keys, rng, 12)
        for value in committed:
            stats.commit(value)
        expected = sorted(toy_keys.tolist() + committed)
        assert stats.points.tolist() == expected

    def test_commit_rejects_duplicates_after_growth(self, toy_keys, rng):
        stats = SegmentStats(toy_keys)
        value = _free_values(toy_keys, rng, 1)[0]
        stats.commit(value)
        with pytest.raises(InvalidKeysError):
            stats.commit(value)


class TestGreedyMatchesRebuildDrivenGreedy:
    def test_smooth_keys_identical_to_rebuild_per_step(self, small_keys):
        """Algorithm 1 run on incremental stats == a reference run that
        rebuilds SegmentStats from scratch after every commit."""
        result = smooth_keys(small_keys, budget=20)

        points = small_keys.copy()
        virtual: list[int] = []
        trace = [SegmentStats(points).base_loss()]
        previous = trace[0]
        while len(virtual) < 20:
            fresh = SegmentStats(points)
            found = _best_candidate(fresh)
            if found is None or found[1] >= previous:
                break
            value, loss = found
            points = np.insert(points, int(np.searchsorted(points, value)), value)
            virtual.append(value)
            previous = loss
            trace.append(loss)

        assert result.virtual_points == virtual
        assert result.loss_trace == trace
