"""Unit + property tests for the O(1) loss machinery (Section 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InvalidKeysError
from repro.core.loss import exact_refit_loss
from repro.core.segment_stats import (
    SegmentStats,
    sum_of_rank_squares,
    sum_of_ranks,
    validate_keys,
)

key_sets = st.lists(
    st.integers(min_value=0, max_value=5_000), min_size=3, max_size=40, unique=True
).map(sorted)


class TestValidateKeys:
    def test_accepts_sorted_unique(self):
        out = validate_keys([1, 2, 5])
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 5]

    def test_accepts_integer_valued_floats(self):
        assert validate_keys(np.array([1.0, 2.0])).tolist() == [1, 2]

    def test_rejects_fractional_floats(self):
        with pytest.raises(InvalidKeysError):
            validate_keys(np.array([1.5, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(InvalidKeysError):
            validate_keys([])

    def test_rejects_unsorted(self):
        with pytest.raises(InvalidKeysError):
            validate_keys([3, 1, 2])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidKeysError):
            validate_keys([1, 1, 2])

    def test_rejects_2d(self):
        with pytest.raises(InvalidKeysError):
            validate_keys(np.zeros((2, 3), dtype=np.int64))


class TestRankSums:
    def test_sum_of_ranks(self):
        assert sum_of_ranks(5) == 0 + 1 + 2 + 3 + 4

    def test_sum_of_rank_squares(self):
        assert sum_of_rank_squares(5) == 0 + 1 + 4 + 9 + 16

    def test_zero_points(self):
        assert sum_of_ranks(0) == 0.0
        assert sum_of_rank_squares(0) == 0.0


class TestBaseLoss:
    def test_perfectly_linear_keys_have_zero_loss(self):
        stats = SegmentStats(np.arange(0, 100, 3))
        assert stats.base_loss() == pytest.approx(0.0, abs=1e-9)

    def test_two_points_zero_loss(self):
        assert SegmentStats([5, 900]).base_loss() == 0.0

    def test_matches_exact_oracle(self, small_keys):
        stats = SegmentStats(small_keys)
        exact = float(exact_refit_loss(small_keys.tolist()))
        assert stats.base_loss() == pytest.approx(exact, rel=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(keys=key_sets)
    def test_base_loss_matches_exact_oracle_property(self, keys):
        stats = SegmentStats(np.asarray(keys, dtype=np.int64))
        exact = float(exact_refit_loss(keys))
        assert stats.base_loss() == pytest.approx(exact, rel=1e-7, abs=1e-7)

    def test_base_model_predicts_ranks(self):
        keys = np.arange(10, 110, 10)
        model = SegmentStats(keys).base_model()
        assert np.allclose(model.predict_array(keys), np.arange(10), atol=1e-9)

    def test_huge_key_magnitudes(self):
        keys = 2**60 + np.arange(0, 500, 5, dtype=np.int64)
        stats = SegmentStats(keys)
        assert stats.base_loss() == pytest.approx(0.0, abs=1e-3)


class TestCandidateEvaluation:
    def test_matches_exact_oracle(self, toy_keys):
        stats = SegmentStats(toy_keys)
        for value in (3, 15, 22, 27):
            ev = stats.evaluate(value)
            merged = sorted(toy_keys.tolist() + [value])
            exact = float(exact_refit_loss(merged))
            assert ev.loss == pytest.approx(exact, rel=1e-9), value

    @settings(max_examples=60, deadline=None)
    @given(keys=key_sets, data=st.data())
    def test_candidate_loss_matches_oracle_property(self, keys, data):
        stats = SegmentStats(np.asarray(keys, dtype=np.int64))
        free = [v for v in range(keys[0] + 1, keys[-1]) if v not in set(keys)]
        if not free:
            return
        value = data.draw(st.sampled_from(free))
        ev = stats.evaluate(value)
        exact = float(exact_refit_loss(sorted(keys + [value])))
        assert ev.loss == pytest.approx(exact, rel=1e-6, abs=1e-6)

    def test_evaluate_rejects_existing_point(self, toy_keys):
        stats = SegmentStats(toy_keys)
        with pytest.raises(InvalidKeysError):
            stats.evaluate(int(toy_keys[3]))

    def test_evaluate_many_matches_scalar(self, toy_keys):
        stats = SegmentStats(toy_keys)
        values = np.array([3, 15, 22, 27])
        ranks = np.array([stats.insertion_rank(int(v)) for v in values])
        vec = stats.evaluate_many(values, ranks)
        scalar = [stats.evaluate(int(v)).loss for v in values]
        assert np.allclose(vec, scalar, rtol=1e-12)

    def test_rank_is_number_of_smaller_points(self, toy_keys):
        stats = SegmentStats(toy_keys)
        ev = stats.evaluate(15)
        assert ev.rank == int(np.sum(toy_keys < 15))

    def test_model_refit_reduces_loss_vs_unrefitted(self, toy_keys):
        """The returned model must be optimal for the merged set."""
        stats = SegmentStats(toy_keys)
        ev = stats.evaluate(15)
        merged = np.sort(np.append(toy_keys, 15))
        ranks = np.arange(merged.size, dtype=np.float64)
        err = ev.model.predict_array(merged) - ranks
        assert float(np.dot(err, err)) == pytest.approx(ev.loss, rel=1e-9)


class TestCommit:
    def test_commit_inserts_sorted(self, toy_keys):
        stats = SegmentStats(toy_keys)
        rank = stats.commit(15)
        assert rank == int(np.sum(toy_keys < 15))
        assert stats.points.tolist() == sorted(toy_keys.tolist() + [15])

    def test_commit_rejects_duplicate(self, toy_keys):
        stats = SegmentStats(toy_keys)
        with pytest.raises(InvalidKeysError):
            stats.commit(int(toy_keys[0]))

    def test_commit_then_evaluate_uses_merged_base(self, toy_keys):
        stats = SegmentStats(toy_keys)
        stats.commit(15)
        ev = stats.evaluate(16)
        merged = sorted(toy_keys.tolist() + [15, 16])
        assert ev.loss == pytest.approx(float(exact_refit_loss(merged)), rel=1e-9)

    def test_suffix_key_sum_bounds(self, toy_keys):
        stats = SegmentStats(toy_keys)
        assert stats.suffix_key_sum(0) == pytest.approx(sum(k - stats.reference for k in toy_keys))
        assert stats.suffix_key_sum(stats.n) == 0.0

    def test_contains(self, toy_keys):
        stats = SegmentStats(toy_keys)
        assert stats.contains(int(toy_keys[2]))
        assert not stats.contains(int(toy_keys[0]) + 100000)

    def test_n_and_extremes(self, toy_keys):
        stats = SegmentStats(toy_keys)
        assert stats.n == toy_keys.size
        assert stats.key_min == int(toy_keys[0])
        assert stats.key_max == int(toy_keys[-1])
