"""Tests for the quadratic smoothing extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quadratic_smoothing import (
    quadratic_fit_and_loss,
    smooth_keys_quadratic,
)
from repro.core.smoothing import smooth_keys


@pytest.fixture()
def curved_keys() -> np.ndarray:
    """Keys whose CDF is genuinely quadratic (square growth)."""
    return np.unique((np.linspace(1, 60, 80) ** 2).astype(np.int64))


class TestQuadraticFit:
    def test_zero_loss_on_quadratic_cdf(self, curved_keys):
        __, loss = quadratic_fit_and_loss(curved_keys)
        # rank ≈ sqrt(key): not quadratic in key; use the inverse view.
        keys = np.arange(0, 80, dtype=np.int64) ** 2 + 7
        __, loss = quadratic_fit_and_loss(np.unique(keys))
        from repro.core.loss import fit_and_loss

        __, linear_loss = fit_and_loss(np.unique(keys))
        assert loss < linear_loss

    def test_linear_data_fits_exactly(self):
        __, loss = quadratic_fit_and_loss(np.arange(0, 500, 5))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_beats_linear_on_curved(self, curved_keys):
        from repro.core.loss import fit_and_loss

        __, linear_loss = fit_and_loss(curved_keys)
        __, quad_loss = quadratic_fit_and_loss(curved_keys)
        assert quad_loss < linear_loss


class TestSmoothKeysQuadratic:
    def test_loss_trace_decreases(self, toy_keys):
        result = smooth_keys_quadratic(toy_keys, alpha=0.5)
        trace = result.loss_trace
        assert all(b < a for a, b in zip(trace, trace[1:]))

    def test_budget_respected(self, toy_keys):
        assert smooth_keys_quadratic(toy_keys, budget=2).n_virtual <= 2

    def test_points_contain_originals(self, toy_keys):
        result = smooth_keys_quadratic(toy_keys, alpha=0.5)
        assert set(toy_keys.tolist()) <= set(result.points.tolist())

    def test_final_loss_matches_reference_fit(self, toy_keys):
        result = smooth_keys_quadratic(toy_keys, alpha=0.5)
        __, reference = quadratic_fit_and_loss(result.points)
        assert result.final_loss == pytest.approx(reference, rel=1e-6)

    def test_starts_below_linear_on_curved_cdf(self, curved_keys):
        linear = smooth_keys(curved_keys, budget=8)
        quadratic = smooth_keys_quadratic(curved_keys, budget=8)
        # The quadratic model's pre-smoothing loss is already below the
        # linear one (the paper's motivation for richer functions).
        assert quadratic.original_loss < linear.original_loss

    def test_never_increases_loss(self, small_keys):
        result = smooth_keys_quadratic(small_keys[:60], budget=5)
        assert result.final_loss <= result.original_loss + 1e-9

    def test_dense_keys_stop_early(self):
        result = smooth_keys_quadratic(np.arange(25), budget=3)
        assert result.stopped_early
        assert result.n_virtual == 0

    def test_improvement_pct(self, toy_keys):
        result = smooth_keys_quadratic(toy_keys, alpha=0.5)
        assert 0.0 <= result.loss_improvement_pct <= 100.0
