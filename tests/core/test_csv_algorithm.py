"""Tests for the Algorithm 2 engine, using an instrumented fake adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.csv_algorithm import CsvConfig, apply_csv
from repro.core.exceptions import SmoothingBudgetError
from repro.core.smoothing import SmoothingResult


class FakeAdapter:
    """Scripted adapter: a dict level → list of (name, keys, delta)."""

    def __init__(self, tree: dict[int, list[tuple[str, np.ndarray, float]]]):
        self.tree = tree
        self.collected: list[str] = []
        self.rebuilt: list[str] = []
        self.visit_order: list[int] = []

    def max_level(self) -> int:
        return max(self.tree) if self.tree else 0

    def subtree_handles(self, level: int):
        self.visit_order.append(level)
        return [entry for entry in self.tree.get(level, [])]

    def collect_keys(self, handle) -> np.ndarray:
        self.collected.append(handle[0])
        return handle[1]

    def cost_delta(self, handle, smoothing: SmoothingResult) -> float:
        return handle[2]

    def rebuild(self, handle, smoothing: SmoothingResult) -> int:
        self.rebuilt.append(handle[0])
        return int(handle[1].size)


def _keys(rng, n=30):
    return np.unique(rng.integers(0, 10_000, n * 2))[:n]


class TestCsvConfig:
    def test_defaults(self):
        cfg = CsvConfig()
        assert cfg.alpha == 0.1
        assert cfg.stop_level == 2

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -1.0])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(SmoothingBudgetError):
            CsvConfig(alpha=alpha)

    def test_rejects_bad_stop_level(self):
        with pytest.raises(SmoothingBudgetError):
            CsvConfig(stop_level=0)


class TestApplyCsv:
    def test_bottom_up_level_order(self, rng):
        adapter = FakeAdapter(
            {
                4: [("d", _keys(rng), -1.0)],
                3: [("c", _keys(rng), -1.0)],
                2: [("b", _keys(rng), -1.0)],
            }
        )
        apply_csv(adapter, CsvConfig(alpha=0.1))
        assert adapter.visit_order == [4, 3, 2]

    def test_cost_threshold_gates_rebuild(self, rng):
        adapter = FakeAdapter(
            {
                2: [
                    ("good", _keys(rng), -5.0),
                    ("bad", _keys(rng), +5.0),
                    ("zero", _keys(rng), 0.0),
                ]
            }
        )
        report = apply_csv(adapter, CsvConfig(alpha=0.2, cost_threshold=0.0))
        assert adapter.rebuilt == ["good"]
        assert report.nodes_rebuilt == 1
        assert report.nodes_examined == 3

    def test_negative_threshold_is_stricter(self, rng):
        adapter = FakeAdapter({2: [("mild", _keys(rng), -1.0)]})
        report = apply_csv(adapter, CsvConfig(alpha=0.2, cost_threshold=-10.0))
        assert report.nodes_rebuilt == 0

    def test_min_subtree_keys_skips_tiny(self):
        adapter = FakeAdapter({2: [("tiny", np.array([1, 2]), -1.0)]})
        report = apply_csv(adapter, CsvConfig(alpha=0.5, min_subtree_keys=3))
        assert report.nodes_examined == 0
        assert adapter.collected == ["tiny"]  # collected, then skipped

    def test_max_subtree_keys_skips_huge(self, rng):
        adapter = FakeAdapter({2: [("huge", _keys(rng, 100), -1.0)]})
        report = apply_csv(adapter, CsvConfig(alpha=0.1, max_subtree_keys=50))
        assert report.nodes_examined == 0

    def test_start_level_clamped_to_max(self, rng):
        adapter = FakeAdapter({2: [("b", _keys(rng), -1.0)]})
        apply_csv(adapter, CsvConfig(alpha=0.1, start_level=99))
        assert adapter.visit_order == [2]

    def test_stop_level_limits_depth(self, rng):
        adapter = FakeAdapter(
            {3: [("c", _keys(rng), -1.0)], 2: [("b", _keys(rng), -1.0)]}
        )
        apply_csv(adapter, CsvConfig(alpha=0.1, stop_level=3))
        assert adapter.visit_order == [3]

    def test_report_aggregates(self, rng):
        keys_a = _keys(rng)
        keys_b = _keys(rng)
        adapter = FakeAdapter({2: [("a", keys_a, -1.0), ("b", keys_b, -2.0)]})
        report = apply_csv(adapter, CsvConfig(alpha=0.2))
        # The fake adapter's rebuild() reports every key as promoted.
        assert report.keys_promoted == keys_a.size + keys_b.size
        assert report.nodes_rebuilt == 2
        assert report.preprocessing_seconds > 0.0
        summary = report.summary()
        assert summary["nodes_rebuilt"] == 2
        assert summary["nodes_examined"] == 2

    def test_records_capture_losses(self, rng):
        keys = _keys(rng)
        adapter = FakeAdapter({2: [("a", keys, -1.0)]})
        report = apply_csv(adapter, CsvConfig(alpha=0.2))
        (record,) = report.records
        assert record.level == 2
        assert record.n_keys == keys.size
        assert record.loss_after <= record.loss_before
        assert record.rebuilt

    def test_empty_adapter_no_records(self):
        report = apply_csv(FakeAdapter({}), CsvConfig(alpha=0.1))
        assert report.nodes_examined == 0
        assert report.keys_promoted == 0
