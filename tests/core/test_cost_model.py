"""Tests for the Eq. 22 cost model and its calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import (
    CostConstants,
    calibrate_from_samples,
    expected_search_steps,
    node_cost,
    rebuild_cost_delta,
    time_queries,
)
from repro.core.exceptions import CalibrationError


class TestCostConstants:
    def test_query_ns_formula(self):
        consts = CostConstants(traversal_ns=10.0, search_ns=2.0, base_ns=5.0)
        assert consts.query_ns(3, 4) == pytest.approx(5 + 30 + 8)

    def test_defaults_positive(self):
        consts = CostConstants()
        assert consts.traversal_ns > 0
        assert consts.search_ns > 0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostConstants().traversal_ns = 1.0  # type: ignore[misc]


class TestExpectedSearchSteps:
    def test_zero_loss_is_one_step(self):
        assert expected_search_steps(0.0, 100) == pytest.approx(1.0)

    def test_monotone_in_loss(self):
        steps = [expected_search_steps(loss, 100) for loss in (0, 100, 10_000, 10**6)]
        assert steps == sorted(steps)

    def test_empty_node(self):
        assert expected_search_steps(5.0, 0) == 0.0

    def test_log2_scaling(self):
        # rms error 3 → log2(4) + 1 = 3 steps
        assert expected_search_steps(9.0 * 100, 100) == pytest.approx(3.0)


class TestNodeCost:
    def test_eq22(self):
        consts = CostConstants(traversal_ns=7.0, search_ns=3.0, base_ns=0.0)
        assert node_cost(2.0, 4, consts) == pytest.approx(3 * 2 + 7 * 4)

    def test_default_constants(self):
        assert node_cost(1.0, 1) == pytest.approx(
            CostConstants().search_ns + CostConstants().traversal_ns
        )


class TestRebuildCostDelta:
    def test_merging_deep_subtree_is_negative(self):
        """Flattening a 3-level subtree with equal loss must help."""
        delta = rebuild_cost_delta(
            loss_before=1000.0,
            n_before=100,
            avg_level_before=4.0,
            loss_after=1000.0,
            n_after=100,
            level_after=2,
        )
        assert delta < 0

    def test_worse_fit_can_offset_traversal_gain(self):
        consts = CostConstants(traversal_ns=1.0, search_ns=100.0)
        delta = rebuild_cost_delta(
            loss_before=0.0,
            n_before=100,
            avg_level_before=3.0,
            loss_after=10**8,
            n_after=100,
            level_after=2,
            constants=consts,
        )
        assert delta > 0


class TestCalibration:
    def test_recovers_synthetic_constants(self, rng):
        true = CostConstants(traversal_ns=30.0, search_ns=8.0, base_ns=15.0)
        samples = []
        for __ in range(200):
            levels = int(rng.integers(1, 8))
            steps = int(rng.integers(0, 12))
            noise = float(rng.normal(0, 0.5))
            samples.append((levels, steps, true.query_ns(levels, steps) + noise))
        fitted = calibrate_from_samples(samples)
        assert fitted.traversal_ns == pytest.approx(true.traversal_ns, rel=0.05)
        assert fitted.search_ns == pytest.approx(true.search_ns, rel=0.05)

    def test_rejects_too_few_samples(self):
        with pytest.raises(CalibrationError):
            calibrate_from_samples([(1, 1, 10.0), (2, 2, 20.0)])

    def test_rejects_degenerate(self):
        with pytest.raises(CalibrationError):
            calibrate_from_samples([(1, 1, 0.0)] * 10)

    def test_clamps_negative_coefficients(self):
        # Traversal correlation inverted, search positive: the
        # traversal constant clamps to 0 instead of going negative.
        samples = [
            (lev, st, 100.0 - lev + 9.0 * st)
            for lev in range(1, 8)
            for st in range(0, 8)
        ]
        fitted = calibrate_from_samples(samples)
        assert fitted.traversal_ns == 0.0
        assert fitted.search_ns == pytest.approx(9.0, rel=1e-6)

    def test_fully_inverted_data_raises(self):
        samples = [(lev, 0, 100.0 - lev) for lev in range(1, 20)]
        with pytest.raises(CalibrationError):
            calibrate_from_samples(samples)

    def test_time_queries_shapes(self):
        calls = []
        samples = time_queries(
            lookup=lambda k: calls.append(k),
            keys=[1, 2, 3],
            stats_of=lambda k: (2, 5),
        )
        assert calls == [1, 2, 3]
        assert [(lv, st) for lv, st, __ in samples] == [(2, 5)] * 3
        assert all(elapsed >= 0 for __, __s, elapsed in samples)
