"""Tests for the workload-aware smoothing extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError, SmoothingBudgetError
from repro.core.weighted_smoothing import (
    smooth_keys_weighted,
    weighted_loss,
)


class TestWeightedLoss:
    def test_uniform_weights_match_unweighted(self, toy_keys):
        from repro.core.loss import fit_and_loss

        __, unweighted = fit_and_loss(toy_keys)
        __, weighted = weighted_loss(toy_keys, np.ones(toy_keys.size))
        assert weighted == pytest.approx(unweighted, rel=1e-9)

    def test_scaling_weights_scales_loss(self, toy_keys):
        w = np.ones(toy_keys.size)
        __, base = weighted_loss(toy_keys, w)
        __, doubled = weighted_loss(toy_keys, 2 * w)
        assert doubled == pytest.approx(2 * base, rel=1e-9)

    def test_zero_weight_keys_ignored(self, toy_keys):
        """A key with weight 0 must not influence the fit."""
        w = np.ones(toy_keys.size)
        w[-1] = 0.0
        model, __ = weighted_loss(toy_keys, w)
        sub_model, __ = weighted_loss(
            toy_keys[:-1], w[:-1], ranks=np.arange(toy_keys.size - 1)
        )
        assert model.slope == pytest.approx(sub_model.slope, rel=1e-9)

    def test_rejects_negative_weights(self, toy_keys):
        w = np.ones(toy_keys.size)
        w[0] = -1.0
        with pytest.raises(InvalidKeysError):
            weighted_loss(toy_keys, w)

    def test_rejects_all_zero(self, toy_keys):
        with pytest.raises(InvalidKeysError):
            weighted_loss(toy_keys, np.zeros(toy_keys.size))

    def test_rejects_wrong_shape(self, toy_keys):
        with pytest.raises(InvalidKeysError):
            weighted_loss(toy_keys, np.ones(3))


class TestSmoothKeysWeighted:
    def test_loss_trace_decreases(self, toy_keys):
        result = smooth_keys_weighted(toy_keys, np.ones(toy_keys.size), alpha=0.5)
        trace = result.loss_trace
        assert all(b < a for a, b in zip(trace, trace[1:]))

    def test_budget_respected(self, toy_keys):
        result = smooth_keys_weighted(toy_keys, np.ones(toy_keys.size), budget=3)
        assert result.n_virtual <= 3

    def test_final_loss_is_recomputable(self, toy_keys):
        w = np.ones(toy_keys.size)
        w[7:] = 10.0
        result = smooth_keys_weighted(toy_keys, w, alpha=0.5)
        __, recomputed = weighted_loss(toy_keys, w, ranks=result.key_ranks)
        assert result.final_loss == pytest.approx(recomputed, rel=1e-6)

    def test_points_contain_originals(self, small_keys):
        result = smooth_keys_weighted(small_keys, np.ones(small_keys.size), budget=10)
        assert set(small_keys.tolist()) <= set(result.points.tolist())

    def test_virtual_points_between_keys(self, small_keys):
        result = smooth_keys_weighted(small_keys, np.ones(small_keys.size), budget=10)
        assert all(small_keys[0] < v < small_keys[-1] for v in result.virtual_points)

    def test_hot_region_attracts_points(self, rng):
        """Heavily weighted keys pull the budget toward their region."""
        # Dense left cluster, sparse right tail.
        keys = np.unique(
            np.concatenate([rng.integers(0, 1000, 150), rng.integers(10**6, 2 * 10**6, 30)])
        )
        split_value = 10**5
        hot_left = np.where(keys < split_value, 100.0, 1.0)
        hot_right = np.where(keys < split_value, 1.0, 100.0)
        left_result = smooth_keys_weighted(keys, hot_left, budget=20)
        right_result = smooth_keys_weighted(keys, hot_right, budget=20)
        left_fraction_left = np.mean([v < split_value for v in left_result.virtual_points])
        left_fraction_right = np.mean([v < split_value for v in right_result.virtual_points])
        # Weighting a region more should never move points AWAY from it.
        assert left_fraction_left >= left_fraction_right

    def test_dense_keys_stop_early(self):
        keys = np.arange(30)
        result = smooth_keys_weighted(keys, np.ones(30), budget=5)
        assert result.stopped_early
        assert result.n_virtual == 0

    def test_rejects_bad_budget(self, toy_keys):
        with pytest.raises(SmoothingBudgetError):
            smooth_keys_weighted(toy_keys, np.ones(toy_keys.size))

    def test_key_ranks_strictly_increasing(self, small_keys):
        result = smooth_keys_weighted(small_keys, np.ones(small_keys.size), budget=15)
        assert np.all(np.diff(result.key_ranks) >= 1)
