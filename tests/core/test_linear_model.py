"""Unit tests for repro.core.linear_model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import InvalidKeysError
from repro.core.linear_model import LinearModel, QuadraticModel, fit_linear, fit_quadratic

sorted_unique_ints = st.lists(
    st.integers(min_value=-(2**40), max_value=2**40), min_size=2, max_size=60, unique=True
).map(sorted)


class TestLinearModel:
    def test_predict_is_affine(self):
        model = LinearModel(2.0, 3.0)
        assert model.predict(5) == 13.0

    def test_predict_array_matches_scalar(self):
        model = LinearModel(0.5, -1.0)
        keys = np.array([1, 2, 10])
        assert np.allclose(model.predict_array(keys), [model.predict(k) for k in keys])

    def test_predict_clamped_lower_bound(self):
        model = LinearModel(1.0, -100.0)
        assert model.predict_clamped(5, 10) == 0

    def test_predict_clamped_upper_bound(self):
        model = LinearModel(1.0, 100.0)
        assert model.predict_clamped(5, 10) == 9

    def test_predict_clamped_interior_rounds(self):
        model = LinearModel(1.0, 0.4)
        assert model.predict_clamped(3, 10) == 3

    def test_predict_clamped_rejects_empty(self):
        with pytest.raises(ValueError):
            LinearModel(1.0, 0.0).predict_clamped(1, 0)

    def test_shifted_offsets_output(self):
        model = LinearModel(1.0, 1.0).shifted(4.0)
        assert model.predict(0) == 5.0

    def test_scaled_multiplies_output(self):
        model = LinearModel(2.0, 3.0).scaled(10.0)
        assert model.predict(1) == 50.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            LinearModel(1.0, 0.0).slope = 2.0  # type: ignore[misc]


class TestFitLinear:
    def test_exact_on_linear_data(self):
        keys = np.arange(0, 100, 5)
        model = fit_linear(keys)
        assert model.slope == pytest.approx(0.2)
        assert model.intercept == pytest.approx(0.0, abs=1e-9)

    def test_matches_polyfit(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 200))
        model = fit_linear(keys)
        ref = np.polyfit(keys.astype(float), np.arange(keys.size), 1)
        ref_pred = ref[0] * keys.astype(float) + ref[1]
        assert model.slope == pytest.approx(float(ref[0]), rel=1e-8)
        assert np.allclose(model.predict_array(keys), ref_pred, atol=1e-6)

    def test_explicit_positions(self):
        keys = np.array([0, 10, 20])
        model = fit_linear(keys, [0, 5, 10])
        assert model.predict(20) == pytest.approx(10.0)

    def test_single_key_constant(self):
        model = fit_linear([42], [7])
        assert model.slope == 0.0
        assert model.predict(42) == 7.0

    def test_identical_keys_predict_mean(self):
        model = fit_linear([5, 5, 5], [0, 1, 2])
        assert model.slope == 0.0
        assert model.predict(5) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(InvalidKeysError):
            fit_linear([])

    def test_rejects_2d(self):
        with pytest.raises(InvalidKeysError):
            fit_linear(np.zeros((2, 2)))

    def test_rejects_mismatched_positions(self):
        with pytest.raises(InvalidKeysError):
            fit_linear([1, 2, 3], [0, 1])

    def test_huge_keys_numerically_stable(self):
        base = 2**55
        keys = base + np.arange(0, 1000, 7, dtype=np.int64)
        model = fit_linear(keys)
        predictions = model.predict_array(keys)
        assert np.allclose(predictions, np.arange(keys.size), atol=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(keys=sorted_unique_ints)
    def test_ols_is_loss_optimal(self, keys):
        """No slope/intercept perturbation can beat the fitted loss."""
        arr = np.asarray(keys, dtype=np.int64)
        model = fit_linear(arr)
        ranks = np.arange(arr.size, dtype=np.float64)

        def loss(m: LinearModel) -> float:
            err = m.predict_array(arr) - ranks
            return float(np.dot(err, err))

        base = loss(model)
        for ds, db in [(1e-6, 0.0), (-1e-6, 0.0), (0.0, 1e-3), (0.0, -1e-3)]:
            perturbed = LinearModel(model.slope + ds, model.intercept + db)
            assert loss(perturbed) >= base - 1e-6


class TestQuadratic:
    def test_exact_on_quadratic_data(self):
        keys = np.arange(20)
        positions = 2.0 * keys**2 + 3.0 * keys + 1.0
        model = fit_quadratic(keys, positions)
        assert model.a == pytest.approx(2.0, rel=1e-6)
        assert model.b == pytest.approx(3.0, rel=1e-5)
        assert model.c == pytest.approx(1.0, rel=1e-4, abs=1e-4)

    def test_predict_array(self):
        model = QuadraticModel(1.0, 0.0, 0.0)
        assert np.allclose(model.predict_array(np.array([2, 3])), [4.0, 9.0])

    def test_falls_back_to_linear_for_two_keys(self):
        model = fit_quadratic([10, 20])
        assert model.a == 0.0
        assert model.predict(20) == pytest.approx(1.0)

    def test_predict_clamped(self):
        model = QuadraticModel(0.0, 1.0, 0.0)
        assert model.predict_clamped(100, 10) == 9
        with pytest.raises(ValueError):
            model.predict_clamped(1, 0)

    def test_beats_linear_on_curved_cdf(self, rng):
        keys = np.unique((np.linspace(0, 100, 200) ** 2).astype(np.int64))
        ranks = np.arange(keys.size, dtype=np.float64)
        lin = fit_linear(keys)
        quad = fit_quadratic(keys)
        lin_loss = float(np.sum((lin.predict_array(keys) - ranks) ** 2))
        quad_loss = float(np.sum((quad.predict_array(keys) - ranks) ** 2))
        assert quad_loss < lin_loss
