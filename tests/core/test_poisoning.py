"""Tests for the poisoning (loss-maximising) counterpart of smoothing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import SmoothingBudgetError
from repro.core.loss import exact_refit_loss
from repro.core.poisoning import poison_keys
from repro.core.smoothing import smooth_keys


class TestPoisonKeys:
    def test_loss_never_decreases(self, toy_keys):
        result = poison_keys(toy_keys, budget=3)
        assert result.final_loss >= result.original_loss

    def test_trace_monotone_increasing(self, toy_keys):
        result = poison_keys(toy_keys, budget=4)
        trace = result.loss_trace
        assert all(b >= a for a, b in zip(trace, trace[1:]))

    def test_budget_respected(self, toy_keys):
        assert len(poison_keys(toy_keys, budget=2).poison_points) <= 2

    def test_final_loss_matches_exact_refit(self, toy_keys):
        result = poison_keys(toy_keys, budget=3)
        exact = float(exact_refit_loss(result.points.tolist()))
        assert result.final_loss == pytest.approx(exact, rel=1e-9)

    def test_opposite_of_smoothing(self, small_keys):
        """Same machinery, opposite directions (Section 2.3)."""
        smoothed = smooth_keys(small_keys, budget=10)
        poisoned = poison_keys(small_keys, budget=10)
        assert smoothed.final_loss < smoothed.original_loss
        assert poisoned.final_loss > poisoned.original_loss

    def test_points_within_range(self, small_keys):
        result = poison_keys(small_keys, budget=5)
        for p in result.poison_points:
            assert small_keys[0] < p < small_keys[-1]

    def test_poison_points_avoid_existing(self, small_keys):
        result = poison_keys(small_keys, budget=5)
        assert not set(result.poison_points) & set(small_keys.tolist())

    def test_linear_keys_can_still_be_poisoned(self):
        """Even a perfect fit degrades when a skewed point lands in a gap."""
        keys = np.arange(0, 100, 5)
        result = poison_keys(keys, budget=3)
        assert result.final_loss > 0.0

    def test_rejects_single_key(self):
        with pytest.raises(SmoothingBudgetError):
            poison_keys([7], budget=1)

    def test_loss_increase_pct(self, toy_keys):
        result = poison_keys(toy_keys, budget=3)
        assert result.loss_increase_pct > 0.0

    def test_dense_keys_no_candidates(self):
        result = poison_keys(np.arange(20), budget=3)
        assert result.poison_points == []
        assert result.final_loss == result.original_loss
