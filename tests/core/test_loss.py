"""Unit tests for repro.core.loss (Eq. 1 / Eq. 2 reference paths)."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.core.linear_model import LinearModel
from repro.core.loss import (
    exact_refit_loss,
    exact_refit_model,
    fit_and_loss,
    hierarchy_loss,
    sse_loss,
)


class TestSseLoss:
    def test_manual_example(self):
        # f(k) = k, keys [0, 1, 4] → errors [0, 0, 2] → SSE 4
        model = LinearModel(1.0, 0.0)
        assert sse_loss([0, 1, 4], model) == pytest.approx(4.0)

    def test_zero_for_perfect_model(self):
        model = LinearModel(0.5, 0.0)
        assert sse_loss([0, 2, 4, 6], model) == pytest.approx(0.0)

    def test_custom_positions(self):
        model = LinearModel(1.0, 0.0)
        assert sse_loss([1, 2], model, positions=[2, 2]) == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(InvalidKeysError):
            sse_loss([], LinearModel(1.0, 0.0))

    def test_rejects_mismatch(self):
        with pytest.raises(InvalidKeysError):
            sse_loss([1, 2], LinearModel(1.0, 0.0), positions=[1])


class TestFitAndLoss:
    def test_loss_is_minimal(self, small_keys):
        model, loss = fit_and_loss(small_keys)
        worse = LinearModel(model.slope * 1.001, model.intercept)
        assert sse_loss(small_keys, worse) >= loss

    def test_fig2_value(self, toy_keys):
        __, loss = fit_and_loss(toy_keys)
        # The toy set reproduces the paper's original loss of ~8.33.
        assert loss == pytest.approx(8.36, abs=0.05)


class TestHierarchyLoss:
    def test_sums_segment_losses(self):
        seg_a = np.array([0, 1, 4])
        seg_b = np.array([10, 11, 30])
        expected = fit_and_loss(seg_a)[1] + fit_and_loss(seg_b)[1]
        assert hierarchy_loss([seg_a, seg_b]) == pytest.approx(expected)

    def test_linear_segments_are_free(self):
        assert hierarchy_loss([np.arange(5), np.arange(100, 200, 10)]) == pytest.approx(0.0)

    def test_partitioning_never_increases_loss(self, small_keys):
        whole = hierarchy_loss([small_keys])
        half = small_keys.size // 2
        split = hierarchy_loss([small_keys[:half], small_keys[half:]])
        assert split <= whole + 1e-9


class TestExactOracles:
    def test_exact_model_matches_float_fit(self):
        keys = [0, 3, 7, 20]
        slope, intercept = exact_refit_model(keys)
        model, __ = fit_and_loss(np.asarray(keys))
        assert float(slope) == pytest.approx(model.slope, rel=1e-12)
        assert float(intercept) == pytest.approx(model.intercept, rel=1e-12)

    def test_exact_loss_is_fraction(self):
        loss = exact_refit_loss([0, 1, 5])
        assert isinstance(loss, Fraction)

    def test_exact_loss_zero_on_arithmetic_progression(self):
        assert exact_refit_loss(list(range(0, 50, 5))) == 0

    def test_exact_loss_custom_positions(self):
        # Positions equal predictions of line y = x/2: zero loss.
        assert exact_refit_loss([0, 2, 4], positions=[0, 1, 2]) == 0

    def test_exact_handles_identical_keys(self):
        # Degenerate variance: falls back to constant model.
        loss = exact_refit_loss([5, 5, 5], positions=[0, 1, 2])
        assert loss == Fraction(2)  # errors (-1, 0, 1) around the mean
