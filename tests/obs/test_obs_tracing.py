"""Tracing spans: no-op gating, nesting depth, sampling, ring buffer."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import _NOOP, trace


def test_disabled_registry_returns_shared_noop_singleton():
    reg = MetricsRegistry(enabled=False)
    spans = [trace("op", registry=reg) for _ in range(5)]
    assert all(s is _NOOP for s in spans)  # zero per-call allocation
    with spans[0]:
        pass
    assert reg.spans() == []


def test_span_records_name_tags_and_duration():
    reg = MetricsRegistry(enabled=True)
    with trace("merge_shard", registry=reg, shard=3):
        pass
    (record,) = reg.spans()
    assert record.name == "merge_shard"
    assert record.tags == {"shard": 3}
    assert record.duration_s >= 0.0
    assert record.depth == 1
    # The span also fed the mergeable duration histogram.
    assert reg.histograms()["span_seconds{span=merge_shard}"].count == 1


def test_nested_spans_track_depth():
    reg = MetricsRegistry(enabled=True)
    with trace("outer", registry=reg):
        with trace("inner", registry=reg):
            pass
    inner, outer = reg.spans()  # inner exits (and records) first
    assert inner.name == "inner" and inner.depth == 2
    assert outer.name == "outer" and outer.depth == 1


def test_every_n_sampler_is_deterministic():
    reg = MetricsRegistry(enabled=True, trace_sample_every=3)
    for _ in range(9):
        with trace("op", registry=reg):
            pass
    assert len(reg.spans()) == 3


def test_ring_buffer_is_bounded():
    reg = MetricsRegistry(enabled=True, trace_capacity=4)
    for i in range(10):
        with trace("op", registry=reg, i=i):
            pass
    spans = reg.spans()
    assert len(spans) == 4
    assert [s.tags["i"] for s in spans] == [6, 7, 8, 9]  # oldest evicted


def test_exception_inside_span_still_records_and_propagates():
    reg = MetricsRegistry(enabled=True)
    try:
        with trace("boom", registry=reg):
            raise ValueError("x")
    except ValueError:
        pass
    else:  # pragma: no cover - the raise must propagate
        raise AssertionError("exception was swallowed")
    (record,) = reg.spans()
    assert record.name == "boom"
