"""Structured logging: plain passthrough and JSON lines."""

from __future__ import annotations

import io
import json
import logging

from repro.obs.log import configure_logging, get_logger, log_event


def test_plain_format_is_bare_message():
    stream = io.StringIO()
    logger = configure_logging("plain", stream=stream)
    logger.info("shard sizes: 100, 200")
    assert stream.getvalue() == "shard sizes: 100, 200\n"  # byte-exact


def test_plain_format_appends_fields():
    stream = io.StringIO()
    configure_logging("plain", stream=stream)
    log_event(get_logger("cli"), "merged", shard=3, keys=42)
    assert stream.getvalue() == "merged shard=3 keys=42\n"


def test_json_format_emits_parseable_records():
    stream = io.StringIO()
    configure_logging("json", stream=stream)
    log_event(get_logger("cli"), "merged", level=logging.WARNING, shard=3)
    record = json.loads(stream.getvalue())
    assert record["msg"] == "merged"
    assert record["level"] == "warning"
    assert record["logger"] == "repro.cli"
    assert record["fields"] == {"shard": 3}
    assert record["ts"].endswith("+00:00")  # ISO-8601 UTC


def test_configure_logging_is_idempotent_and_rebinds_stream():
    first = io.StringIO()
    configure_logging("plain", stream=first)
    second = io.StringIO()
    logger = configure_logging("plain", stream=second)
    assert len(logger.handlers) == 1  # no handler pile-up
    logger.info("hello")
    assert first.getvalue() == ""
    assert second.getvalue() == "hello\n"


def test_invalid_format_rejected():
    try:
        configure_logging("yaml")
    except ValueError as exc:
        assert "log format" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("invalid format accepted")
