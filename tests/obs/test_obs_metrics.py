"""Instruments: counters, gauges, and the mergeable log-bucket histogram."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    HIST_SUBBUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    scoped_registry,
    set_registry,
)

#: One relative bucket width — the histogram's percentile tolerance.
BUCKET_WIDTH = 2.0 ** (1.0 / HIST_SUBBUCKETS)


def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(41)
    assert c.value == 42
    g = Gauge()
    g.set(7)
    g.inc(3)
    g.dec()
    assert g.value == 9.0


def test_metric_key_sorts_labels():
    assert metric_key("m") == "m"
    assert metric_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"


def test_histogram_moments_are_exact(rng):
    values = rng.exponential(250.0, 5000)
    h = Histogram()
    h.observe_array(values)
    assert h.count == values.size
    assert h.sum == pytest.approx(float(values.sum()))
    assert h.mean == pytest.approx(float(values.mean()))
    assert h.min == pytest.approx(float(values.min()))
    assert h.max == pytest.approx(float(values.max()))


@pytest.mark.parametrize("q", [50, 90, 99])
@pytest.mark.parametrize(
    "sample",
    ["exponential", "lognormal", "uniform", "bimodal"],
)
def test_histogram_percentiles_within_bucket_tolerance(rng, q, sample):
    """The regression contract replacing the decimated sample list:

    every percentile estimate is within one relative bucket width
    (``2**(1/4) ~ 1.19x``) of the exact ``np.percentile`` order
    statistic.
    """
    if sample == "exponential":
        values = rng.exponential(120.0, 20_000)
    elif sample == "lognormal":
        values = rng.lognormal(5.0, 1.5, 20_000)
    elif sample == "uniform":
        values = rng.uniform(10.0, 1e6, 20_000)
    else:
        # Unequal modes keep each tested rank inside a mode; at an exact
        # mode boundary np.percentile interpolates between modes, where
        # no sample (and no bucket) exists.
        values = np.concatenate(
            [rng.normal(100.0, 5.0, 12_000), rng.normal(9000.0, 100.0, 8_000)]
        )
    values = np.abs(values) + 1e-9
    h = Histogram()
    h.observe_array(values)
    exact = float(np.percentile(values, q))
    estimate = h.percentile(q)
    assert exact / BUCKET_WIDTH <= estimate <= exact * BUCKET_WIDTH


def test_histogram_percentiles_monotone(rng):
    h = Histogram()
    h.observe_array(rng.exponential(50.0, 3000))
    p50, p90, p99 = h.percentiles([50, 90, 99])
    assert p50 <= p90 <= p99


def test_histogram_scalar_and_array_paths_agree(rng):
    values = rng.exponential(80.0, 500)
    a, b = Histogram(), Histogram()
    a.observe_array(values)
    for v in values:
        b.observe(float(v))
    assert np.array_equal(a.bucket_counts(), b.bucket_counts())
    assert a.count == b.count
    assert a.sum == pytest.approx(b.sum)


def test_merge_equals_observing_the_whole(rng):
    """Merging per-shard histograms == one histogram over all samples —
    the property that makes per-shard percentiles aggregable."""
    shards = [rng.exponential(s * 40.0 + 20.0, 4000) for s in range(4)]
    whole = Histogram()
    whole.observe_array(np.concatenate(shards))
    merged = Histogram()
    for sample in shards:
        part = Histogram()
        part.observe_array(sample)
        merged.merge(part)
    assert np.array_equal(merged.bucket_counts(), whole.bucket_counts())
    assert merged.count == whole.count
    assert merged.sum == pytest.approx(whole.sum)
    for q in (50, 90, 99):
        assert merged.percentile(q) == pytest.approx(whole.percentile(q))


def test_snapshot_roundtrip(rng):
    h = Histogram()
    h.observe_array(rng.exponential(100.0, 2000))
    snap = h.snapshot()
    assert snap["count"] == 2000
    assert sum(snap["buckets"].values()) == 2000
    back = Histogram.from_snapshot(snap)
    assert np.array_equal(back.bucket_counts(), h.bucket_counts())
    assert back.percentile(99) == pytest.approx(h.percentile(99))
    # Rebuilt snapshots merge like live histograms (cross-process case).
    other = Histogram()
    other.observe_array(rng.exponential(100.0, 1000))
    back.merge(other)
    assert back.count == 3000


def test_histogram_nonpositive_and_extreme_values():
    h = Histogram()
    h.observe(0.0)
    h.observe(-5.0)
    h.observe(1e30)  # beyond the top edge: clamps, never raises
    assert h.count == 3
    assert h.percentile(50) >= 0.0


def test_histogram_thread_safety(rng):
    values = rng.exponential(10.0, 2000)
    h = Histogram()
    threads = [
        threading.Thread(target=h.observe_array, args=(values,)) for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == 8 * values.size
    assert int(h.bucket_counts().sum()) == h.count


def test_registry_get_or_create_and_labels():
    reg = MetricsRegistry()
    c1 = reg.counter("hits", shard=0)
    c2 = reg.counter("hits", shard=0)
    c3 = reg.counter("hits", shard=1)
    assert c1 is c2 and c1 is not c3
    c1.inc(5)
    assert reg.counters() == {"hits{shard=0}": 5, "hits{shard=1}": 0}


def test_register_histogram_overwrites():
    reg = MetricsRegistry()
    first, second = Histogram(), Histogram()
    reg.register_histogram("lat", first, shard=0)
    reg.register_histogram("lat", second, shard=0)
    assert reg.histograms()["lat{shard=0}"] is second


def test_global_registry_swap_and_scoping():
    baseline = get_registry()
    assert baseline.enabled is False  # disabled out of the box
    mine = MetricsRegistry(enabled=True)
    with scoped_registry(mine) as reg:
        assert get_registry() is reg is mine
    assert get_registry() is baseline
    previous = set_registry(mine)
    try:
        assert previous is baseline
        assert get_registry() is mine
    finally:
        set_registry(baseline)


def test_registry_reset():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.histogram("h").observe(1.0)
    reg.reset()
    assert reg.counters() == {}
    assert reg.histograms() == {}
