"""Exporters: JSON-lines snapshots, Prometheus text, table, validation."""

from __future__ import annotations

import json

from repro.obs.export import (
    REQUIRED_KEYS,
    snapshot,
    snapshot_table,
    to_prometheus,
    validate_metrics_lines,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import trace


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry(enabled=True)
    reg.counter("service_lookups_total").inc(4096)
    reg.gauge("merge_queue_depth").set(2)
    h = reg.histogram("service_lookup_ns", shard=0)
    for v in (50.0, 90.0, 120.0, 400.0):
        h.observe(v)
    with trace("merge_shard", registry=reg, shard=0):
        pass
    return reg


def test_snapshot_shape_and_seq():
    reg = _populated_registry()
    first = snapshot(reg)
    second = snapshot(reg)
    for key in REQUIRED_KEYS:
        assert key in first
    assert second["seq"] == first["seq"] + 1
    assert first["counters"]["service_lookups_total"] == 4096
    hist = first["histograms"]["service_lookup_ns{shard=0}"]
    assert hist["count"] == 4
    assert sum(hist["buckets"].values()) == 4
    assert first["spans"][0]["name"] == "merge_shard"


def test_write_jsonl_appends_valid_lines(tmp_path):
    reg = _populated_registry()
    path = tmp_path / "metrics.jsonl"
    write_jsonl(path, reg)
    reg.counter("service_lookups_total").inc(100)
    write_jsonl(path, reg)
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert validate_metrics_lines(lines) == []
    # Rebuilding the histogram from a snapshot line keeps it mergeable.
    snap = json.loads(lines[-1])
    hist = Histogram.from_snapshot(snap["histograms"]["service_lookup_ns{shard=0}"])
    assert hist.count == 4


def test_write_jsonl_accepts_file_objects(tmp_path):
    reg = _populated_registry()
    path = tmp_path / "stream.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        write_jsonl(fh, reg)
    assert validate_metrics_lines(path.read_text().splitlines()) == []


def test_prometheus_exposition_format():
    text = to_prometheus(_populated_registry())
    assert "# TYPE service_lookups_total counter" in text
    assert "service_lookups_total 4096" in text
    assert "# TYPE merge_queue_depth gauge" in text
    assert "# TYPE service_lookup_ns histogram" in text
    assert 'service_lookup_ns_bucket{shard="0",le="+Inf"} 4' in text
    assert "service_lookup_ns_count{shard=\"0\"} 4" in text
    # Cumulative bucket counts are non-decreasing in le order.
    cum = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("service_lookup_ns_bucket")
    ]
    assert cum == sorted(cum)


def test_snapshot_table_renders_all_kinds():
    table = snapshot_table(snapshot(_populated_registry()))
    assert "service_lookups_total" in table
    assert "merge_queue_depth" in table
    assert "p99" in table
    assert "service_lookup_ns{shard=0}" in table


def test_snapshot_table_empty():
    assert "no metrics" in snapshot_table(snapshot(MetricsRegistry()))


def test_validate_rejects_tampered_streams(tmp_path):
    reg = _populated_registry()
    path = tmp_path / "metrics.jsonl"
    write_jsonl(path, reg)
    write_jsonl(path, reg)
    good = path.read_text().splitlines()

    assert validate_metrics_lines([]) == ["stream contains no snapshot lines"]
    assert any("not valid JSON" in e for e in validate_metrics_lines(["{nope"]))
    assert any("not a JSON object" in e for e in validate_metrics_lines(["[1,2]"]))

    missing = json.loads(good[0])
    del missing["counters"]
    assert any(
        "missing required keys" in e
        for e in validate_metrics_lines([json.dumps(missing)])
    )

    # seq must strictly increase.
    assert any("seq" in e for e in validate_metrics_lines([good[1], good[0]]))

    # Counters must be monotone across lines.
    shrunk = json.loads(good[1])
    shrunk["counters"]["service_lookups_total"] = 1
    assert any(
        "decreased" in e for e in validate_metrics_lines([good[0], json.dumps(shrunk)])
    )

    # Histogram bucket counts must sum to the recorded count.
    broken = json.loads(good[0])
    broken["histograms"]["service_lookup_ns{shard=0}"]["count"] += 1
    assert any(
        "bucket sum" in e for e in validate_metrics_lines([json.dumps(broken)])
    )
