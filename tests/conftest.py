"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import FIG2_TOY_KEYS


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture()
def toy_keys() -> np.ndarray:
    """The 10-key running example of Fig. 2 (see datasets.synthetic)."""
    return FIG2_TOY_KEYS.copy()


@pytest.fixture()
def small_keys(rng: np.random.Generator) -> np.ndarray:
    """~300 unique sorted keys with mixed local density."""
    return np.unique(
        np.concatenate(
            [
                rng.integers(0, 5_000, 200),
                50_000 + rng.integers(0, 500, 120),
                (10**7 + rng.lognormal(5, 1.5, 150)).astype(np.int64),
            ]
        )
    )


@pytest.fixture()
def clustered_keys(rng: np.random.Generator) -> np.ndarray:
    """~3k keys in lognormal clusters (hard, deep-index shape)."""
    centers = rng.uniform(0, 2**38, 12)
    return np.unique(
        np.concatenate([(c + rng.lognormal(7, 1.8, 300)).astype(np.int64) for c in centers])
    )


def sorted_unique(rng: np.random.Generator, n: int, span: int) -> np.ndarray:
    """Helper used by hypothesis-free randomised tests."""
    return np.unique(rng.integers(0, span, n))
