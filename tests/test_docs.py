"""The documentation is part of the contract: links resolve, examples run.

Two layers:

* **Link check** (fast, tier-1): every markdown link in ``docs/*.md``
  and ``README.md`` must resolve — relative paths to real files,
  ``#fragments`` to real headings. External ``http(s)`` links and
  GitHub-side paths (the CI badge) are skipped; no network.
* **Example smoke** (slow-marked; the CI ``docs`` job runs with
  ``-m ''``): every fenced ````bash```` / ````python```` block in
  ``docs/*.md`` executes against the real package, blocks of one file
  sharing a scratch working directory in document order.  Transcripts
  and illustrations use ````console```` / ````text```` / ````json````
  fences, which are never executed — so a ````bash```` fence *is* the
  claim "this runs".
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted((REPO_ROOT / "docs").glob("*.md")) + [REPO_ROOT / "README.md"]

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_RE = re.compile(r"^```(\w*)\s*$")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*$")


def _strip_fences(text: str) -> str:
    """Markdown with fenced code bodies removed (links in code aren't links)."""
    out, in_fence = [], False
    for line in text.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _slugify(heading: str) -> str:
    """GitHub-style anchor: lowercase, drop punctuation, spaces to dashes."""
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"[^\w\s-]", "", heading.lower())
    return re.sub(r"\s+", "-", heading.strip())


def _anchors(path: Path) -> set[str]:
    return {
        _slugify(m.group(2))
        for m in map(_HEADING_RE.match, _strip_fences(path.read_text()).splitlines())
        if m
    }


def _fenced_blocks(path: Path) -> list[tuple[str, str]]:
    """(language, body) for every fenced block, in document order."""
    blocks, lang, body = [], None, []
    for line in path.read_text().splitlines():
        fence = _FENCE_RE.match(line)
        if fence and lang is None:
            lang, body = fence.group(1).lower(), []
        elif fence:
            blocks.append((lang, "\n".join(body) + "\n"))
            lang = None
        elif lang is not None:
            body.append(line)
    return blocks


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_links_resolve(doc):
    text = _strip_fences(doc.read_text())
    problems = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if "/actions/" in target:  # GitHub-side path (CI badge)
            continue
        path_part, _, fragment = target.partition("#")
        dest = (doc.parent / path_part).resolve() if path_part else doc
        if path_part and not dest.exists():
            problems.append(f"{target}: no such file {dest}")
            continue
        if fragment and dest.suffix == ".md" and fragment not in _anchors(dest):
            problems.append(f"{target}: no heading anchors to #{fragment}")
    assert not problems, f"{doc.name}: " + "; ".join(problems)


def test_every_doc_is_linked_from_readme():
    readme = _strip_fences((REPO_ROOT / "README.md").read_text())
    for doc in (REPO_ROOT / "docs").glob("*.md"):
        assert f"docs/{doc.name}" in readme, f"README does not link {doc.name}"


@pytest.mark.slow
@pytest.mark.parametrize(
    "doc", sorted((REPO_ROOT / "docs").glob("*.md")), ids=lambda p: p.name
)
def test_examples_run(doc, tmp_path):
    """Each doc's bash/python blocks execute cleanly, sharing a cwd."""
    blocks = [b for b in _fenced_blocks(doc) if b[0] in ("bash", "python")]
    if not blocks:
        pytest.skip(f"{doc.name} has no executable examples")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PATH"] = str(Path(sys.executable).parent) + os.pathsep + env["PATH"]
    for i, (lang, body) in enumerate(blocks):
        if lang == "bash":
            argv = ["bash", "-euo", "pipefail", "-c", body]
        else:
            argv = [sys.executable, "-c", body]
        proc = subprocess.run(
            argv, cwd=tmp_path, env=env, capture_output=True, text=True,
            timeout=600,
        )
        assert proc.returncode == 0, (
            f"{doc.name} block {i + 1} ({lang}) exited "
            f"{proc.returncode}:\n{body}\n--- stdout ---\n{proc.stdout}"
            f"\n--- stderr ---\n{proc.stderr}"
        )
