"""Service observability: health report, histogram latency percentiles,
the no-op fast path, and the serve/metrics CLI round trip."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.obs.health import HealthReport, ShardHealth
from repro.obs.metrics import HIST_SUBBUCKETS, MetricsRegistry, scoped_registry
from repro.obs.tracing import _NOOP, trace
from repro.serving import IndexService

BUCKET_WIDTH = 2.0 ** (1.0 / HIST_SUBBUCKETS)


@pytest.fixture()
def dataset(rng):
    keys = np.unique(rng.integers(0, 10**8, 12_000).astype(np.int64))
    return keys, keys * 3


def _fresh_keys(keys: np.ndarray, n: int, rng) -> np.ndarray:
    return int(keys[-1]) + 1 + rng.permutation(np.arange(n, dtype=np.int64) * 7)


# ----------------------------------------------------------------------
# health_report
# ----------------------------------------------------------------------
def test_health_report_fields_and_statuses(dataset, rng):
    keys, values = dataset
    with IndexService.build(keys, family="lipp", n_shards=4, values=values) as svc:
        queries = rng.choice(keys, 3000)
        svc.lookup_many(queries)
        report = svc.health_report()
        assert isinstance(report, HealthReport)
        assert len(report.shards) == 4
        total_queries = 0
        for shard_no, row in enumerate(report.shards):
            assert isinstance(row, ShardHealth)
            assert row.shard == shard_no
            assert row.n_keys > 0
            assert row.buffered == 0 and row.staleness == 0.0
            assert row.p50_ns <= row.p90_ns <= row.p99_ns
            assert row.expected_ns > 0
            assert row.status == "ok"
            total_queries += row.queries
        assert total_queries == queries.size
        assert report.status == "ok"
        assert report.merge_queue_depth == 0
        assert report.cost_imbalance >= 1.0
        assert report.warnings() == []
        table = report.to_table()
        for needle in ("staleness", "drift", "status=ok", "cost_imbalance"):
            assert needle in table


def test_health_report_flags_stale_shards(dataset, rng):
    keys, values = dataset
    # A threshold no workload crosses: writes pile up unmerged.
    with IndexService.build(
        keys, family="lipp", n_shards=4, values=values, staleness_threshold=100.0
    ) as svc:
        svc.insert_many(_fresh_keys(keys, 4000, rng))
        report = svc.health_report()
        stale = [r for r in report.shards if r.buffered > 0]
        assert stale
        assert all(r.staleness > 0 for r in stale)
        # staleness_threshold=100 means staleness ~0.3 is still "ok";
        # health mirrors the merge trigger, not an absolute scale.
        assert report.status == "ok"


def test_health_report_warns_past_merge_threshold(dataset, rng):
    keys, values = dataset
    svc = IndexService.build(keys, family="lipp", n_shards=2, values=values)
    try:
        # Bypass insert_many's merge trigger: stuff a buffer directly,
        # as a merge backlog would.
        fresh = _fresh_keys(keys, 2000, rng)
        svc._buffers[0].put_run(np.sort(fresh), np.sort(fresh))
        report = svc.health_report()
        assert report.shards[0].staleness > svc.staleness_threshold
        assert report.shards[0].status == "warn"
        assert report.status == "warn"
        assert any("shard 0" in w for w in report.warnings())
    finally:
        svc._buffers[0].entries.clear()
        svc.close()


def test_expected_cost_refreshes_on_rebuild_merge(dataset, rng):
    keys, values = dataset
    # pgm is a static family: merges always rebuild, refreshing the
    # drift baseline from the merged key set.
    with IndexService.build(
        keys, family="pgm", n_shards=2, values=values, staleness_threshold=0.01
    ) as svc:
        before = list(svc._expected_ns)
        svc.insert_many(_fresh_keys(keys, 3000, rng))
        assert svc.stats.merges > 0
        after = list(svc._expected_ns)
        assert before != after
        assert all(v > 0 for v in after)


# ----------------------------------------------------------------------
# Histogram latency percentiles vs exact samples (the regression test
# for replacing the decimated sample list)
# ----------------------------------------------------------------------
def test_latency_report_matches_exact_percentiles(dataset, rng):
    keys, values = dataset
    with IndexService.build(keys, family="lipp", n_shards=4, values=values) as svc:
        exact_ns = []
        for _ in range(5):
            queries = rng.choice(keys, 2000)
            batch = svc.lookup_many(queries)
            exact_ns.append(batch.simulated_ns(svc.constants))
        exact = np.concatenate(exact_ns)
        report = svc.latency_report()
        assert report.total.n_queries == exact.size
        assert report.total.avg_ns == pytest.approx(float(exact.mean()))  # exact
        for q, got in ((50, report.total.p50_ns), (90, report.total.p90_ns),
                       (99, report.total.p99_ns)):
            want = float(np.percentile(exact, q))
            assert want / BUCKET_WIDTH <= got <= want * BUCKET_WIDTH


def test_latency_total_is_merge_of_shards(dataset, rng):
    keys, values = dataset
    with IndexService.build(keys, family="lipp", n_shards=4, values=values) as svc:
        svc.lookup_many(rng.choice(keys, 4000))
        report = svc.latency_report()
        assert report.total.n_queries == sum(r.n_queries for r in report.shards)
        assert report.total.p99_ns >= max(r.p50_ns for r in report.shards)


# ----------------------------------------------------------------------
# No-op fast path
# ----------------------------------------------------------------------
def test_results_bit_identical_metrics_on_vs_off(dataset, rng):
    keys, values = dataset
    queries = rng.choice(keys, 3000)
    fresh = _fresh_keys(keys, 500, rng)

    def run(registry):
        with scoped_registry(registry):
            with IndexService.build(
                keys, family="lipp", n_shards=4, values=values
            ) as svc:
                batch = svc.lookup_many(queries)
                svc.insert_many(fresh)
                svc.flush()
                after = svc.lookup_many(np.concatenate([queries[:500], fresh]))
                return batch, after, svc.stats

    off_b, off_a, off_stats = run(MetricsRegistry(enabled=False))
    on_b, on_a, on_stats = run(MetricsRegistry(enabled=True))
    for off, on in ((off_b, on_b), (off_a, on_a)):
        assert np.array_equal(off.found, on.found)
        assert np.array_equal(off.values, on.values)
        assert np.array_equal(off.levels, on.levels)
        assert np.array_equal(off.search_steps, on.search_steps)
    assert off_stats == on_stats  # ServiceStats is registry-independent


def test_disabled_registry_records_nothing(dataset, rng):
    keys, values = dataset
    registry = MetricsRegistry(enabled=False)
    with scoped_registry(registry):
        with IndexService.build(keys, family="lipp", n_shards=4, values=values) as svc:
            svc.lookup_many(rng.choice(keys, 2000))
            svc.insert_many(_fresh_keys(keys, 2000, rng))
            svc.flush()
    # Instruments exist (the service pre-creates its handles) but none
    # ever recorded: every counter is zero, no span was kept.
    assert all(v == 0 for v in registry.counters().values())
    assert all(v == 0.0 for v in registry.gauges().values())
    assert registry.spans() == []
    # The histogram instruments hold only the always-on latency view.
    for key, hist in registry.histograms().items():
        if not key.startswith("service_lookup_ns"):
            assert hist.count == 0, key


def test_disabled_trace_allocates_nothing(dataset):
    registry = MetricsRegistry(enabled=False)
    # The no-op guard contract: a disabled trace is one shared
    # singleton, not a per-call object.
    assert trace("anything", registry=registry) is _NOOP
    assert trace("anything", registry=registry) is trace("x", registry=registry)


def test_enabled_registry_mirrors_service_stats(dataset, rng):
    keys, values = dataset
    registry = MetricsRegistry(enabled=True)
    with scoped_registry(registry):
        with IndexService.build(keys, family="lipp", n_shards=4, values=values) as svc:
            svc.lookup_many(rng.choice(keys, 2000))
            svc.insert_many(_fresh_keys(keys, 2000, rng))
            svc.flush()
            counters = registry.counters()
            stats = svc.stats
    assert counters["service_lookups_total"] == stats.n_lookups
    assert counters["service_inserts_total"] == stats.n_inserts
    assert counters["service_merges_total"] == stats.merges
    assert counters["service_merged_keys_total"] == stats.merged_keys
    assert counters["router_routed_keys_total"] > 0
    assert any(
        s.name == "merge_shard" for s in registry.spans()
    ), "merge should have traced a span"


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------
def test_serve_metrics_out_and_validate(tmp_path, capsys):
    out = tmp_path / "metrics.jsonl"
    rc = main([
        "serve", "--index", "lipp", "--shards", "2", "--n", "3000",
        "--ops", "2000", "--batch", "500",
        "--metrics-out", str(out), "--metrics-every", "1",
    ])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "shard health" in stdout
    assert f"metrics written to {out}" in stdout
    lines = out.read_text().splitlines()
    assert len(lines) >= 3  # build + per-batch + final
    for line in lines:
        snap = json.loads(line)
        assert snap["v"] == 1
    assert json.loads(lines[-1])["counters"]["service_lookups_total"] > 0

    assert main(["metrics", "--in", str(out), "--validate"]) == 0
    assert "schema valid" in capsys.readouterr().out

    assert main(["metrics", "--in", str(out)]) == 0
    table = capsys.readouterr().out
    assert "service_lookups_total" in table and "p99" in table

    assert main(["metrics", "--in", str(out), "--format", "prom"]) == 0
    assert "# TYPE service_lookups_total counter" in capsys.readouterr().out


def test_metrics_validate_fails_on_tampered_file(tmp_path, capsys):
    out = tmp_path / "metrics.jsonl"
    rc = main([
        "serve", "--index", "lipp", "--shards", "2", "--n", "3000",
        "--ops", "1000", "--batch", "500", "--metrics-out", str(out),
    ])
    assert rc == 0
    capsys.readouterr()
    with open(out, "a", encoding="utf-8") as fh:
        fh.write("{not json\n")
    assert main(["metrics", "--in", str(out), "--validate"]) == 1
    assert "not valid JSON" in capsys.readouterr().out
    assert main(["metrics", "--in", str(tmp_path / "absent.jsonl"), "--validate"]) == 1


def test_serve_without_metrics_flag_stays_uninstrumented(capsys):
    rc = main([
        "serve", "--index", "lipp", "--shards", "2", "--n", "3000",
        "--ops", "1000", "--batch", "500",
    ])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "shard health" in stdout  # epilogue still prints
    assert "metrics written" not in stdout


def test_log_format_json_wraps_every_line(capsys):
    rc = main([
        "--log-format", "json", "serve", "--index", "lipp", "--shards", "2",
        "--n", "3000", "--ops", "1000", "--batch", "500",
    ])
    assert rc == 0
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
    assert lines
    for line in lines:
        record = json.loads(line)
        assert record["logger"].startswith("repro")
        assert "msg" in record
