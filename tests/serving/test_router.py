"""Scatter/gather router: exactness and the boundary edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import IndexStateError
from repro.indexes import INDEX_FAMILIES, SortedArrayIndex
from repro.serving import ShardRouter, build_shard_indexes, plan_shards


def make_router(keys, k, family="sorted_array", **kwargs) -> ShardRouter:
    plan = plan_shards(keys, k)
    shards, __ = build_shard_indexes(plan, family)
    return ShardRouter(
        shards,
        plan.boundaries,
        build_factory=INDEX_FAMILIES[family].build,
        **kwargs,
    )


class TestRoutingEdges:
    def test_queries_below_all_boundaries(self, rng):
        keys = np.unique(rng.integers(10**6, 10**7, 1000))
        router = make_router(keys, 4)
        below = np.arange(5, dtype=np.int64)  # far below every stored key
        assert np.array_equal(router.shard_of(below), np.zeros(5, dtype=np.int64))
        batch = router.lookup_many(below).gathered
        assert not batch.found.any()
        # The queries were really executed against shard 0 (probes > 0).
        assert (batch.search_steps > 0).all()

    def test_queries_above_all_boundaries(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 1000))
        router = make_router(keys, 4)
        above = np.asarray([10**9, 10**9 + 1], dtype=np.int64)
        assert np.array_equal(router.shard_of(above), np.full(2, 3, dtype=np.int64))
        assert not router.lookup_many(above).gathered.found.any()

    def test_boundary_key_routes_to_owning_shard(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        router = make_router(keys, 5)
        # Every boundary is by construction the first key of its shard.
        boundaries = router.boundaries
        ids = router.shard_of(boundaries)
        assert np.array_equal(ids, np.arange(1, 5))
        batch = router.lookup_many(boundaries).gathered
        assert batch.found.all()
        assert np.array_equal(batch.values, boundaries)

    def test_empty_shards_answer_as_misses(self):
        keys = np.asarray([10, 20, 30], dtype=np.int64)
        router = make_router(keys, 8)
        queries = np.asarray([5, 10, 15, 20, 25, 30, 35], dtype=np.int64)
        batch = router.lookup_many(queries).gathered
        assert batch.found.tolist() == [False, True, False, True, False, True, False]
        # Misses on empty shards cost nothing beyond the base constant.
        empty = ~batch.found & (batch.levels == 0)
        assert np.array_equal(batch.search_steps[empty], np.zeros(empty.sum()))

    def test_k1_router_is_bit_identical_to_bare_index(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1500))
        queries = np.concatenate([rng.choice(keys, 500), rng.integers(0, 10**7, 200)])
        bare = SortedArrayIndex.build(keys)
        router = make_router(keys, 1)
        routed = router.lookup_many(queries)
        reference = bare.lookup_many(queries)
        for field in ("keys", "found", "values", "levels", "search_steps"):
            assert np.array_equal(getattr(routed.gathered, field), getattr(reference, field))
        assert np.array_equal(routed.shard_ids, np.zeros(queries.size, dtype=np.int64))


class TestInsertRouting:
    def test_duplicate_keys_straddling_a_boundary_last_wins(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        router = make_router(keys, 4)
        boundary = int(router.boundaries[1])  # first key of shard 2
        neighbour = boundary - 1              # routes to shard 1
        batch_keys = np.asarray(
            [boundary, neighbour, boundary, neighbour, boundary], dtype=np.int64
        )
        batch_vals = np.asarray([1, 2, 3, 4, 5], dtype=np.int64)
        counts = router.insert_many(batch_keys, batch_vals)
        assert counts[1] == 2 and counts[2] == 3
        got = router.lookup_many(np.asarray([neighbour, boundary])).gathered
        assert got.found.all()
        # Sequential last-wins semantics survive the scatter.
        assert got.values.tolist() == [4, 5]

    def test_insert_into_empty_shard_materialises_it(self):
        keys = np.asarray([10, 20, 30], dtype=np.int64)
        router = make_router(keys, 8)
        # Shard 0 (everything below the first boundary) is empty here.
        assert router.shards[0] is None
        fresh = np.asarray([3, 3, 3], dtype=np.int64)  # duplicate batch too
        router.insert_many(fresh, np.asarray([7, 8, 9], dtype=np.int64))
        assert router.shards[0] is not None
        got = router.lookup_many(np.asarray([3])).gathered
        # Last write wins even through the materialising build.
        assert bool(got.found[0]) and int(got.values[0]) == 9

    def test_insert_without_factory_raises(self):
        plan = plan_shards(np.asarray([10, 20, 30], dtype=np.int64), 8)
        shards, __ = build_shard_indexes(plan, "sorted_array")
        router = ShardRouter(shards, plan.boundaries)
        assert router.shards[0] is None
        with pytest.raises(IndexStateError):
            router.insert_many(np.asarray([3], dtype=np.int64))


class TestGatherExactness:
    @pytest.mark.parametrize("family", ["sorted_array", "btree", "lipp"])
    def test_gather_matches_per_key_routing(self, rng, family):
        keys = np.unique(rng.integers(0, 10**7, 1200))
        queries = np.concatenate([rng.choice(keys, 400), rng.integers(0, 10**7, 100)])
        router = make_router(keys, 4, family=family)
        routed = router.lookup_many(queries)
        for i in range(0, queries.size, 7):
            shard = router.shards[int(routed.shard_ids[i])]
            stat = shard.lookup_stats(int(queries[i]))
            assert stat.found == bool(routed.gathered.found[i])
            assert stat.levels == int(routed.gathered.levels[i])
            assert stat.search_steps == int(routed.gathered.search_steps[i])

    def test_threaded_gather_identical_to_serial(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1500))
        queries = rng.choice(keys, 800)
        serial = make_router(keys, 6, family="btree")
        with make_router(keys, 6, family="btree", max_workers=4) as threaded:
            assert threaded.threaded
            a = serial.lookup_many(queries).gathered
            b = threaded.lookup_many(queries).gathered
        for field in ("found", "values", "levels", "search_steps"):
            assert np.array_equal(getattr(a, field), getattr(b, field))

    def test_per_shard_stats_sum_to_gathered(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        queries = rng.choice(keys, 500)
        router = make_router(keys, 4, family="btree")
        routed = router.lookup_many(queries)
        total = sum(
            float(b.simulated_ns().sum()) for b in routed.per_shard if b is not None
        )
        assert total == pytest.approx(float(routed.gathered.simulated_ns().sum()))

    def test_mismatched_boundaries_rejected(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 100))
        plan = plan_shards(keys, 4)
        shards, __ = build_shard_indexes(plan, "sorted_array")
        with pytest.raises(IndexStateError):
            ShardRouter(shards, plan.boundaries[:1])


class TestRangeAndIteration:
    def test_range_query_spans_shards(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        router = make_router(keys, 4, family="btree")
        low, high = int(keys[100]), int(keys[800])
        expected = [(int(k), int(k)) for k in keys if low <= k <= high]
        assert router.range_query(low, high) == expected
        assert router.range_query(high, low) == []

    def test_iter_keys_ascending(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 500))
        router = make_router(keys, 3)
        assert np.array_equal(np.fromiter(router.iter_keys(), dtype=np.int64), keys)
