"""Shard planning: boundary choice, cost balancing, per-shard α."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.serving import (
    ShardPlan,
    auto_alphas,
    build_shard_indexes,
    plan_shards,
    predicted_shard_cost,
)


def skewed_keys(rng: np.random.Generator) -> np.ndarray:
    """A hard/easy composite: one dense lognormal cluster + a uniform tail."""
    return np.unique(
        np.concatenate(
            [
                (10**6 + rng.lognormal(8, 2.0, 3000)).astype(np.int64),
                rng.integers(10**8, 10**10, 1500),
            ]
        )
    )


class TestPlanShards:
    def test_equi_depth_balances_counts(self, rng):
        keys = np.unique(rng.integers(0, 10**8, 4000))
        plan = plan_shards(keys, 8)
        sizes = [s.size for s in plan.shard_keys]
        assert sum(sizes) == keys.size
        assert max(sizes) - min(sizes) <= 1
        assert plan.boundaries.size == 7

    def test_shards_partition_the_keys_in_order(self, rng):
        keys = np.unique(rng.integers(0, 10**8, 3000))
        plan = plan_shards(keys, 5)
        reassembled = np.concatenate(plan.shard_keys)
        assert np.array_equal(reassembled, keys)
        # Every key routes to the shard slice that holds it.
        ids = plan.shard_of(keys)
        expected = np.repeat(
            np.arange(plan.n_shards), [s.size for s in plan.shard_keys]
        )
        assert np.array_equal(ids, expected)

    def test_k1_has_no_boundaries(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 500))
        plan = plan_shards(keys, 1)
        assert plan.boundaries.size == 0
        assert plan.n_shards == 1
        assert np.array_equal(plan.shard_keys[0], keys)

    def test_more_shards_than_keys_yields_empty_shards(self):
        keys = np.asarray([10, 20, 30], dtype=np.int64)
        plan = plan_shards(keys, 8)
        assert plan.n_shards == 8
        assert plan.n_keys == 3
        assert sum(1 for s in plan.shard_keys if s.size == 0) == 5
        assert np.array_equal(np.concatenate(plan.shard_keys), keys)

    def test_cost_balanced_reduces_imbalance_on_skewed_data(self, rng):
        keys = skewed_keys(rng)
        equi = plan_shards(keys, 6, mode="equi_depth")
        balanced = plan_shards(keys, 6, mode="cost_balanced")
        assert balanced.cost_imbalance() <= equi.cost_imbalance()
        assert np.array_equal(np.concatenate(balanced.shard_keys), keys)

    def test_rejects_bad_inputs(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 100))
        with pytest.raises(InvalidKeysError):
            plan_shards(keys, 0)
        with pytest.raises(InvalidKeysError):
            plan_shards(keys, 4, mode="round_robin")
        with pytest.raises(InvalidKeysError):
            plan_shards(keys, 4, alpha=[0.1, 0.2])  # wrong length
        with pytest.raises(InvalidKeysError):
            plan_shards(keys, 4, alpha="automatic")


class TestAlphas:
    def test_scalar_alpha_broadcasts(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        plan = plan_shards(keys, 4, alpha=0.2)
        assert plan.alphas == (0.2, 0.2, 0.2, 0.2)

    def test_none_alpha(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        assert plan_shards(keys, 3).alphas == (None, None, None)

    def test_auto_alpha_spends_more_on_harder_shards(self, rng):
        keys = skewed_keys(rng)
        plan = plan_shards(keys, 4, mode="equi_depth", alpha="auto:0.1")
        costs = np.asarray(plan.predicted_costs)
        alphas = np.asarray(plan.alphas, dtype=np.float64)
        assert np.argmax(alphas) == np.argmax(costs)
        # The aggregate budget stays near the base (mean-normalised).
        assert abs(float(alphas.mean()) - 0.1) < 0.05

    def test_auto_alphas_helper_normalises(self):
        alphas = auto_alphas([1.0, 3.0], 0.2)
        assert alphas[1] > alphas[0]
        assert alphas == (pytest.approx(0.1), pytest.approx(0.3))


class TestPredictedCost:
    def test_empty_and_tiny_shards(self):
        assert predicted_shard_cost(np.empty(0, dtype=np.int64)) == 0.0
        assert predicted_shard_cost(np.asarray([5], dtype=np.int64)) > 0.0

    def test_harder_region_costs_more(self, rng):
        easy = np.arange(0, 2000, 2, dtype=np.int64)  # perfectly linear
        hard = np.unique((rng.lognormal(10, 2.5, 1000)).astype(np.int64))
        hard = hard[: easy.size]
        assert predicted_shard_cost(hard) > predicted_shard_cost(easy)


class TestBuildShardIndexes:
    def test_builds_every_nonempty_shard(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 2000))
        plan = plan_shards(keys, 4)
        shards, reports = build_shard_indexes(plan, "btree")
        assert all(s is not None for s in shards)
        assert sum(s.n_keys for s in shards) == keys.size
        assert reports == [None, None, None, None]

    def test_empty_shards_build_to_none(self):
        plan = plan_shards(np.asarray([1, 2, 3], dtype=np.int64), 6)
        shards, __ = build_shard_indexes(plan, "sorted_array")
        assert sum(1 for s in shards if s is None) == 3

    def test_per_shard_smoothing_reports(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 2000))
        plan = plan_shards(keys, 4, alpha=0.1)
        shards, reports = build_shard_indexes(plan, "lipp")
        assert all(r is not None for r in reports)
        # Non-smoothable families ignore alpha.
        __, none_reports = build_shard_indexes(plan, "pgm")
        assert none_reports == [None] * 4

    def test_unknown_family_rejected(self, rng):
        keys = np.unique(rng.integers(0, 10**6, 100))
        with pytest.raises(InvalidKeysError):
            build_shard_indexes(plan_shards(keys, 2), "fractal")

    def test_plan_is_a_dataclass_with_metrics(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 1000))
        plan = plan_shards(keys, 4)
        assert isinstance(plan, ShardPlan)
        assert len(plan.predicted_costs) == 4
        assert plan.cost_imbalance() >= 1.0
