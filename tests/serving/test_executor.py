"""Process executor: spec API, shm lifecycle, parity, and failover.

The contract under test: the process backend is an *invisible*
optimisation — every answer bit-identical to the serial router, a
killed worker costs a restart but never a wrong result, and closing
the service leaves no shared-memory segment behind.
"""

from __future__ import annotations

import os
import signal
import warnings
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.exceptions import IndexStateError
from repro.indexes import INDEX_FAMILIES
from repro.serving import (
    ExecutorError,
    ExecutorSpec,
    IndexService,
    ReplicaHealth,
    ShardRouter,
    build_shard_indexes,
    plan_shards,
)
from repro.serving import executor as executor_mod
from repro.serving.executor import resolve_executor


def service_keys(rng, n=6000):
    return np.unique(rng.integers(0, 10**8, n))


def mixed_queries(rng, keys, n=3000):
    return np.concatenate(
        [rng.choice(keys, n), rng.integers(0, int(keys[-1]) * 2, n // 4)]
    )


def assert_batches_equal(got, want):
    for field in ("found", "values", "levels", "search_steps"):
        assert np.array_equal(getattr(got, field), getattr(want, field)), field


class TestExecutorSpec:
    def test_defaults_are_serial(self):
        spec = ExecutorSpec()
        assert spec.kind == "serial"
        assert spec.n_replicas == 1

    def test_parse_strings(self):
        assert ExecutorSpec.parse("process").kind == "process"
        spec = ExecutorSpec.parse("thread:4")
        assert (spec.kind, spec.n_workers) == ("thread", 4)
        assert ExecutorSpec.parse(None) == ExecutorSpec()
        existing = ExecutorSpec(kind="process", n_replicas=2)
        assert ExecutorSpec.parse(existing) is existing

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="gpu"),
            dict(kind="process", n_workers=0),
            dict(kind="process", n_replicas=0),
            dict(kind="process", timeout_s=0.0),
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(IndexStateError):
            ExecutorSpec(**bad)

    def test_parse_rejects_garbage(self):
        with pytest.raises(IndexStateError):
            ExecutorSpec.parse("thread:lots")
        with pytest.raises(IndexStateError):
            ExecutorSpec.parse(7)

    def test_resolved_workers_never_below_replicas(self):
        spec = ExecutorSpec(kind="process", n_replicas=3)
        assert spec.resolved_workers(1) >= 3
        assert ExecutorSpec(kind="process", n_workers=2).resolved_workers(8) == 2


class TestDeprecationShims:
    def setup_method(self):
        executor_mod._DEPRECATION_WARNED.clear()

    def test_max_workers_maps_to_thread_and_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            spec = resolve_executor(max_workers=4)
            again = resolve_executor(max_workers=8)
        assert (spec.kind, spec.n_workers) == ("thread", 4)
        assert again.kind == "thread"
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "max_workers" in str(deprecations[0].message)

    def test_threaded_bool_maps_and_warns_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_executor(threaded=True).kind == "thread"
            assert resolve_executor(threaded=False).kind == "serial"
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1

    def test_explicit_spec_plus_legacy_knob_is_an_error(self):
        with pytest.raises(IndexStateError):
            resolve_executor(ExecutorSpec(kind="process"), max_workers=4)
        with pytest.raises(IndexStateError):
            resolve_executor("thread", threaded=True)

    def test_max_workers_one_stays_serial(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert resolve_executor(max_workers=1).kind == "serial"


class TestProcessParity:
    def test_k1_process_is_bit_identical_to_bare_index(self, rng):
        keys = service_keys(rng)
        queries = mixed_queries(rng, keys)
        bare = INDEX_FAMILIES["lipp"].build(keys)
        with IndexService.build(
            keys, family="lipp", n_shards=1, executor="process"
        ) as service:
            assert_batches_equal(service.lookup_many(queries), bare.lookup_many(queries))

    @pytest.mark.parametrize("family", ["lipp", "sali", "btree", "pgm"])
    def test_process_matches_serial_across_shards(self, rng, family):
        keys = service_keys(rng)
        queries = mixed_queries(rng, keys)
        with IndexService.build(keys, family=family, n_shards=4) as serial:
            want = serial.lookup_many(queries)
        spec = ExecutorSpec(kind="process", n_workers=2, n_replicas=2)
        with IndexService.build(
            keys, family=family, n_shards=4, executor=spec
        ) as service:
            assert service.router.process_based
            assert_batches_equal(service.lookup_many(queries), want)

    def test_writes_republish_and_read_back(self, rng):
        keys = service_keys(rng)
        fresh = np.arange(int(keys[-1]) + 1, int(keys[-1]) + 801, dtype=np.int64)
        with IndexService.build(
            keys, family="btree", n_shards=4, executor="process",
            staleness_threshold=0.01,
        ) as service:
            service.insert_many(fresh)
            service.flush()  # force merges through the republish path
            batch = service.lookup_many(fresh)
            assert batch.found.all()
            assert np.array_equal(batch.values, fresh)

    def test_router_level_insert_republishes(self, rng):
        keys = service_keys(rng, n=2000)
        plan = plan_shards(keys, 4)
        shards, __ = build_shard_indexes(plan, "btree")
        router = ShardRouter(
            shards, plan.boundaries,
            build_factory=INDEX_FAMILIES["btree"].build,
            executor=ExecutorSpec(kind="process", n_workers=2),
        )
        try:
            fresh = np.arange(int(keys[-1]) + 1, int(keys[-1]) + 101, dtype=np.int64)
            router.insert_many(fresh, fresh * 3)
            batch = router.lookup_many(fresh).gathered
            assert batch.found.all()
            assert np.array_equal(batch.values, fresh * 3)
        finally:
            router.close()


class TestFailover:
    def test_killed_worker_fails_over_bit_identically(self, rng):
        keys = service_keys(rng)
        queries = mixed_queries(rng, keys)
        with IndexService.build(keys, family="btree", n_shards=4) as serial:
            want = serial.lookup_many(queries)
        spec = ExecutorSpec(kind="process", n_workers=2, n_replicas=2, timeout_s=20.0)
        with IndexService.build(
            keys, family="btree", n_shards=4, executor=spec
        ) as service:
            report = service.executor_report()
            assert all(isinstance(r, ReplicaHealth) and r.alive for r in report)
            os.kill(report[0].pid, signal.SIGKILL)
            assert_batches_equal(service.lookup_many(queries), want)
            assert service.worker_restarts() >= 1
            # The respawned replica rejoined: everyone alive again.
            assert all(r.alive for r in service.executor_report())
            health = service.health_report()
            assert health.worker_restarts >= 1
            assert any("restart" in w for w in health.warnings())

    def test_repeated_kills_keep_answers_correct(self, rng):
        keys = service_keys(rng, n=3000)
        queries = mixed_queries(rng, keys, n=1000)
        with IndexService.build(keys, family="lipp", n_shards=2) as serial:
            want = serial.lookup_many(queries)
        spec = ExecutorSpec(kind="process", n_workers=2, n_replicas=2, timeout_s=20.0)
        with IndexService.build(
            keys, family="lipp", n_shards=2, executor=spec
        ) as service:
            for __ in range(3):
                victim = service.executor_report()[0].pid
                os.kill(victim, signal.SIGKILL)
                assert_batches_equal(service.lookup_many(queries), want)


class TestShmLifecycle:
    def test_segments_attachable_while_open_gone_after_close(self, rng):
        keys = service_keys(rng, n=3000)
        service = IndexService.build(
            keys, family="lipp", n_shards=4, executor="process"
        )
        names = service.router.shm_segment_names()
        assert names  # LIPP flat buffers are well past the inline threshold
        for name in names:
            seg = shared_memory.SharedMemory(name=name)
            seg.close()
        pids = [r.pid for r in service.executor_report()]
        assert service.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)

    def test_no_leak_after_worker_crash(self, rng):
        keys = service_keys(rng, n=3000)
        spec = ExecutorSpec(kind="process", n_workers=2, n_replicas=2, timeout_s=20.0)
        service = IndexService.build(
            keys, family="btree", n_shards=2, executor=spec
        )
        os.kill(service.executor_report()[0].pid, signal.SIGKILL)
        service.lookup_many(keys[:100])  # ride through the failover
        names = service.router.shm_segment_names()
        service.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_lookup_after_close_raises(self, rng):
        keys = service_keys(rng, n=2000)
        service = IndexService.build(
            keys, family="btree", n_shards=2, executor="process"
        )
        service.close()
        with pytest.raises((ExecutorError, IndexStateError)):
            service.router.lookup_many(keys[:10])


class TestCloseOrdering:
    def test_merge_worker_drains_before_executor_teardown(self, rng):
        keys = service_keys(rng)
        fresh = np.arange(int(keys[-1]) + 1, int(keys[-1]) + 2001, dtype=np.int64)
        service = IndexService.build(
            keys, family="btree", n_shards=2, executor="process",
            background_merge=True, staleness_threshold=0.01,
        )
        order: list[str] = []
        real_shutdown = service._merge_pool.shutdown
        real_router_close = service.router.close

        def spy_shutdown(timeout=None):
            order.append("merge_shutdown")
            return real_shutdown(timeout)

        def spy_router_close():
            order.append("router_close")
            return real_router_close()

        service._merge_pool.shutdown = spy_shutdown
        service.router.close = spy_router_close
        service.insert_many(fresh)  # schedules background merges
        assert service.close()
        assert order == ["merge_shutdown", "router_close"]
        # The merged keys really made it through the republish path
        # before teardown (merge ran against a live executor).
        assert service.stats.merges >= 1
