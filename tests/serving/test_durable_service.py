"""IndexService ↔ DurableStore: snapshot, reopen, flush, compaction.

The serving-layer half of the durability contract: ``snapshot()``
commits exactly what the service would answer, ``open_snapshot()``
rebuilds a service that answers identically without the dataset, the
flush threshold and the staleness merge both move writes to disk
without being asked, and ``close()`` leaves nothing volatile behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import IndexStateError
from repro.serving import IndexService
from repro.store import DurableStore, make_strategy

FAMILY = "lipp"
N_SHARDS = 3


@pytest.fixture()
def keyset(rng) -> np.ndarray:
    return np.unique(rng.integers(0, 10**8, 2_000))


def fresh_batches(rng, keyset, n_batches=6, size=300):
    hi = int(keyset.max())
    fresh = hi + 1 + rng.choice(10**7, size=n_batches * size, replace=False)
    return [fresh[i * size : (i + 1) * size] for i in range(n_batches)]


def full_pairs(service: IndexService) -> np.ndarray:
    bounds = np.iinfo(np.int64)
    pairs = service.range_query(int(bounds.min), int(bounds.max))
    return np.asarray(pairs, dtype=np.int64).reshape(-1, 2)


class TestSnapshotRoundtrip:
    def test_reopen_is_bit_identical(self, tmp_path, rng, keyset):
        store = DurableStore(tmp_path / "data")
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS, store=store
        ) as service:
            for batch in fresh_batches(rng, keyset):
                service.insert_many(batch, batch * 2)
            service.snapshot()
            want = full_pairs(service)
            queries = np.concatenate(
                [rng.choice(keyset, 400), rng.integers(0, 10**8, 100)]
            )
            want_lookups = service.lookup_many(queries)

        with IndexService.open_snapshot(tmp_path / "data") as reopened:
            assert reopened.family == FAMILY
            assert reopened.n_shards == N_SHARDS
            got = full_pairs(reopened)
            assert np.array_equal(got, want)
            got_lookups = reopened.lookup_many(queries)
            assert np.array_equal(got_lookups.found, want_lookups.found)
            assert np.array_equal(got_lookups.values, want_lookups.values)

    def test_build_with_store_snapshots_immediately(self, tmp_path, keyset):
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS,
            store=DurableStore(tmp_path / "data"),
        ) as service:
            assert service.durable_generation() == 1
        with IndexService.open_snapshot(tmp_path / "data") as reopened:
            assert reopened.n_keys == keyset.size

    def test_snapshot_fully_compacts(self, tmp_path, rng, keyset):
        store = DurableStore(tmp_path / "data")
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS, store=store
        ) as service:
            for batch in fresh_batches(rng, keyset, n_batches=3):
                service.insert_many(batch)
                service.flush_durable()
            assert store.runs_outstanding() > 0
            service.snapshot()
            assert store.runs_outstanding() == 0

    def test_open_snapshot_requires_manifest(self, tmp_path):
        with pytest.raises(IndexStateError, match="no snapshot to open"):
            IndexService.open_snapshot(tmp_path / "nothing-here")

    def test_attach_store_validates_topology(self, tmp_path, keyset):
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS,
            store=DurableStore(tmp_path / "data"),
        ):
            pass
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS + 1
        ) as other:
            with pytest.raises(IndexStateError, match="shards"):
                other.attach_store(DurableStore(tmp_path / "data"))


class TestFlushPaths:
    def test_threshold_flushes_without_being_asked(self, tmp_path, rng, keyset):
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS,
            store=DurableStore(tmp_path / "data"),
            flush_threshold=200,
            staleness_threshold=10.0,  # keep merges out of the picture
        ) as service:
            for batch in fresh_batches(rng, keyset, n_batches=4, size=250):
                service.insert_many(batch, batch * 2)
            assert service.stats.flushes > 0
            assert service.durable_generation() > 1

    def test_unflushed_writes_survive_close(self, tmp_path, rng, keyset):
        batch = fresh_batches(rng, keyset, n_batches=1)[0]
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS,
            store=DurableStore(tmp_path / "data"),
            staleness_threshold=10.0,
        ) as service:
            service.insert_many(batch, batch * 5)
            # No threshold, no snapshot: only close() stands between
            # these writes and the floor.
        with IndexService.open_snapshot(tmp_path / "data") as reopened:
            probe = batch[:50]
            got = reopened.lookup_many(probe)
            assert bool(got.found.all())
            assert np.array_equal(got.values, probe * 5)

    def test_staleness_merge_flushes_and_compacts(self, tmp_path, rng, keyset):
        with IndexService.build(
            keyset, family=FAMILY, n_shards=1,
            store=DurableStore(tmp_path / "data"),
            compaction=make_strategy("sortmerge"),
            staleness_threshold=0.01,
        ) as service:
            for batch in fresh_batches(rng, keyset, n_batches=4, size=200):
                service.insert_many(batch, batch * 2)
            assert service.stats.merges > 0
            assert service.stats.flushes > 0
            # The post-merge trigger sort-merged every flushed run away.
            assert service.stats.compactions > 0
            assert service.store.runs_outstanding() == 0

    def test_flush_durable_is_idempotent(self, tmp_path, rng, keyset):
        batch = fresh_batches(rng, keyset, n_batches=1)[0]
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS,
            store=DurableStore(tmp_path / "data"),
            staleness_threshold=10.0,
        ) as service:
            service.insert_many(batch)
            g1 = service.flush_durable()
            g2 = service.flush_durable()  # nothing new: same generation
            assert g2 == g1
            assert service.stats.flushes == 1


class TestReopenThenWrite:
    def test_reopened_service_keeps_absorbing(self, tmp_path, rng, keyset):
        with IndexService.build(
            keyset, family=FAMILY, n_shards=N_SHARDS,
            store=DurableStore(tmp_path / "data"),
            staleness_threshold=10.0,
        ) as service:
            first = fresh_batches(rng, keyset, n_batches=1)[0]
            service.insert_many(first, first * 2)

        with IndexService.open_snapshot(
            tmp_path / "data", staleness_threshold=10.0, flush_threshold=100
        ) as reopened:
            second = np.asarray(first) + 1  # interleaves with first batch
            reopened.insert_many(second, second * 3)
            assert reopened.durable_generation() > 1

        with IndexService.open_snapshot(tmp_path / "data") as final:
            got = final.lookup_many(np.concatenate([first[:50], second[:50]]))
            assert bool(got.found.all())
