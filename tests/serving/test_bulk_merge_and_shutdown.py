"""Service-level tests for the bulk merge path and shutdown semantics.

The staleness-triggered merge now drains write buffers through
``bulk_insert_many`` on the updatable families; these tests pin (1)
content parity between merge-via-bulk and the per-key merge-via-loop,
(2) that static families still merge by rebuild, and (3) that
``close`` is idempotent and bounded by a join timeout, so a hung
background merge cannot wedge the ``serve`` CLI on exit.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serving.service import UPDATABLE_FAMILIES, IndexService


def _seed_keys(rng, n=3_000):
    return np.unique(rng.integers(0, 10**7, n))


def _expected_contents(keys, batches):
    expected = {int(k): int(k) for k in keys}
    for bkeys, bvals in batches:
        expected.update(zip(bkeys.tolist(), bvals.tolist()))
    return expected


class TestMergeViaBulk:
    @pytest.mark.parametrize("family", UPDATABLE_FAMILIES)
    def test_merge_via_bulk_matches_merge_via_loop(self, family, rng):
        """The bulk-drained merge stores exactly what the per-key
        ``insert_many`` merge stored: every written key resolves to its
        last value after a flush, on every shard."""
        keys = _seed_keys(rng)
        bulk_service = IndexService.build(
            keys, family=family, n_shards=3, staleness_threshold=0.05
        )
        loop_service = IndexService.build(
            keys, family=family, n_shards=3, staleness_threshold=0.05
        )
        # Force the comparison service's merges down the per-key path.
        for shard in loop_service.router.shards:
            if shard is not None:
                shard.bulk_insert_many = shard.insert_many
        batches = []
        for round_no in range(4):
            bkeys = rng.integers(0, 10**7, 900)
            bvals = rng.integers(0, 1 << 40, 900)
            batches.append((bkeys, bvals))
            bulk_service.insert_many(bkeys, bvals)
            loop_service.insert_many(bkeys, bvals)
        bulk_service.flush()
        loop_service.flush()
        assert bulk_service.stats.merges > 0
        expected = _expected_contents(keys, batches)
        probe = np.asarray(sorted(expected), dtype=np.int64)
        want = np.asarray([expected[int(k)] for k in probe], dtype=np.int64)
        got_bulk = bulk_service.lookup_many(probe)
        got_loop = loop_service.lookup_many(probe)
        assert bool(np.all(got_bulk.found))
        assert bool(np.all(got_loop.found))
        assert np.array_equal(got_bulk.values, want)
        assert np.array_equal(got_loop.values, want)
        assert bulk_service.n_keys == loop_service.n_keys == probe.size
        bulk_service.close()
        loop_service.close()

    @pytest.mark.parametrize("family", ("pgm", "rmi"))
    def test_static_families_still_merge_by_rebuild(self, family, rng):
        keys = _seed_keys(rng, 2_000)
        service = IndexService.build(
            keys, family=family, n_shards=2, staleness_threshold=0.05
        )
        bkeys = rng.integers(0, 10**7, 600)
        service.insert_many(bkeys, bkeys * 2)
        service.flush()
        assert service.stats.merges > 0
        probe = np.unique(bkeys)
        got = service.lookup_many(probe)
        assert bool(np.all(got.found))
        assert np.array_equal(got.values, probe * 2)
        service.close()


class TestShutdown:
    def test_close_is_idempotent(self, rng):
        keys = _seed_keys(rng, 1_500)
        service = IndexService.build(
            keys, family="btree", n_shards=2,
            staleness_threshold=0.05, background_merge=True,
        )
        service.insert_many(rng.integers(0, 10**7, 500))
        assert service.close() is True
        assert service.close() is True  # second close: no-op, same answer

    def test_close_joins_with_timeout_on_hung_merge(self, rng):
        """A merge that never finishes must not block close() past its
        timeout (the worker is a daemon thread, so the process could
        still exit afterwards)."""
        keys = _seed_keys(rng, 1_000)
        service = IndexService.build(
            keys, family="btree", n_shards=2, background_merge=True,
        )
        hang = service._merge_pool.submit(time.sleep, 60)
        service._merge_futures.append(hang)
        start = time.perf_counter()
        assert service.close(timeout=0.2) is False
        assert time.perf_counter() - start < 5.0
        assert service.close() is False  # remembered outcome, no re-wait
        assert service._merge_pool is None

    def test_merge_worker_thread_is_daemon(self, rng):
        keys = _seed_keys(rng, 1_000)
        service = IndexService.build(
            keys, family="btree", n_shards=2, background_merge=True,
        )
        assert service._merge_pool._thread.daemon
        assert service.close() is True

    def test_flush_after_close_still_merges_synchronously(self, rng):
        """Late writes after close land via the synchronous path
        (the pool is gone but the service object stays usable)."""
        keys = _seed_keys(rng, 1_000)
        service = IndexService.build(
            keys, family="btree", n_shards=2,
            staleness_threshold=10.0, background_merge=True,
        )
        service.close()
        bkeys = np.unique(rng.integers(0, 10**7, 300))
        service.insert_many(bkeys, bkeys + 7)
        service.flush()
        got = service.lookup_many(bkeys)
        assert bool(np.all(got.found))
        assert np.array_equal(got.values, bkeys + 7)
