"""IndexService: the acceptance parity suite plus cache/buffer/merge.

The load-bearing guarantees (ISSUE 2 acceptance criteria):

* For every backend, a K≥4 service — threads on and off — returns
  batch results whose per-query entries match the per-key semantics
  of its shards exactly, whose found/values (and therefore hit rate)
  match a single index built on the same keys, and whose per-shard
  simulated-ns sums re-aggregate to the gathered total.
* A K=1 service with the cache off is bit-identical to the bare index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexes import INDEX_FAMILIES
from repro.serving import IndexService

ALL_FAMILIES = sorted(INDEX_FAMILIES)


def service_fixture(rng, family, **kwargs):
    keys = np.unique(rng.integers(0, 10**7, 1500))
    queries = np.concatenate(
        [rng.choice(keys, 600), rng.integers(0, 10**7, 150)]  # hits + misses
    )
    service = IndexService.build(keys, family=family, **kwargs)
    return keys, queries, service


@pytest.mark.parametrize("family", ALL_FAMILIES)
@pytest.mark.parametrize("threads", [None, 4], ids=["serial", "threaded"])
class TestScatterGatherParity:
    def test_matches_monolithic_and_per_key(self, rng, family, threads):
        keys, queries, service = service_fixture(
            rng, family, n_shards=4, max_workers=threads
        )
        with service:
            mono = INDEX_FAMILIES[family].build(keys)
            reference = mono.lookup_many(queries)
            batch = service.lookup_many(queries)

            # Correctness: same answers as the monolithic index.
            assert np.array_equal(batch.found, reference.found)
            assert np.array_equal(batch.values, reference.values)
            assert batch.hit_rate == reference.hit_rate

            # Cost: every entry matches per-key lookups on the shard
            # that served it (scatter/gather adds no distortion).
            shard_ids = service.router.shard_of(queries)
            for i in range(0, queries.size, 13):
                shard = service.router.shards[int(shard_ids[i])]
                stat = shard.lookup_stats(int(queries[i]))
                assert stat.found == bool(batch.found[i])
                assert stat.levels == int(batch.levels[i])
                assert stat.search_steps == int(batch.search_steps[i])

    def test_per_shard_ns_sums_to_total(self, rng, family, threads):
        keys, queries, service = service_fixture(
            rng, family, n_shards=4, max_workers=threads
        )
        with service:
            routed = service.router.lookup_many(queries)
            per_shard_total = sum(
                float(b.simulated_ns(service.constants).sum())
                for b in routed.per_shard
                if b is not None
            )
            gathered_total = float(
                routed.gathered.simulated_ns(service.constants).sum()
            )
            assert per_shard_total == pytest.approx(gathered_total)


@pytest.mark.parametrize("family", ALL_FAMILIES)
def test_k1_service_is_bit_identical_to_bare_index(rng, family):
    keys, queries, service = service_fixture(rng, family, n_shards=1)
    with service:
        bare = INDEX_FAMILIES[family].build(keys)
        reference = bare.lookup_many(queries)
        batch = service.lookup_many(queries)
        for field in ("keys", "found", "values", "levels", "search_steps"):
            assert np.array_equal(getattr(batch, field), getattr(reference, field))


class TestWriteBuffer:
    def test_buffered_writes_visible_to_reads(self, rng):
        keys, __, service = service_fixture(
            rng, "lipp", n_shards=4, staleness_threshold=10.0
        )
        fresh = np.asarray([10**8 + i for i in range(20)], dtype=np.int64)
        service.insert_many(fresh, fresh + 1)
        assert sum(service.buffered_counts()) == 20
        assert service.stats.merges == 0
        got = service.lookup_many(fresh)
        assert got.found.all()
        assert np.array_equal(got.values, fresh + 1)
        # Buffered hits are memtable answers: no shard traversal.
        assert (got.levels == 0).all()
        assert service.stats.buffer_hits == 20

    def test_buffer_update_overrides_stored_value(self, rng):
        keys, __, service = service_fixture(
            rng, "btree", n_shards=4, staleness_threshold=10.0
        )
        target = int(keys[42])
        service.insert_many(np.asarray([target]), np.asarray([999]))
        assert service.lookup(target) == 999
        service.flush()
        assert service.lookup(target) == 999

    def test_staleness_triggers_merge_and_resmooth(self, rng):
        keys, __, service = service_fixture(
            rng, "lipp", n_shards=4, staleness_threshold=0.01, alpha=0.1
        )
        span = int(keys[-1])
        fresh = np.unique(rng.integers(0, span, 200))
        fresh = np.setdiff1d(fresh, keys)
        service.insert_many(fresh)
        assert service.stats.merges > 0
        assert service.stats.resmoothed_shards > 0
        assert service.lookup_many(fresh).found.all()

    def test_flush_merges_everything(self, rng):
        keys, __, service = service_fixture(
            rng, "sorted_array", n_shards=4, staleness_threshold=10.0
        )
        fresh = np.unique(rng.integers(0, 10**7, 100))
        fresh = np.setdiff1d(fresh, keys)
        service.insert_many(fresh)
        service.flush()
        assert service.buffered_counts() == (0, 0, 0, 0)
        got = service.lookup_many(fresh)
        assert got.found.all()
        # Post-merge reads come from the shards again.
        assert (got.levels >= 1).all()

    @pytest.mark.parametrize("family", ["pgm", "rmi"])
    def test_static_families_merge_by_rebuild(self, rng, family):
        keys, __, service = service_fixture(
            rng, family, n_shards=4, staleness_threshold=10.0
        )
        fresh = np.setdiff1d(np.unique(rng.integers(0, 10**7, 50)), keys)
        service.insert_many(fresh, fresh + 7)
        service.flush()
        assert service.stats.merges > 0
        got = service.lookup_many(fresh)
        assert got.found.all()
        assert np.array_equal(got.values, fresh + 7)
        # Old keys survived the rebuild.
        assert service.lookup_many(keys[:50]).found.all()

    def test_writes_landing_mid_merge_survive(self):
        """The merge path drops exactly its snapshot: entries added or
        rewritten after the snapshot stay buffered."""
        from repro.serving.service import _WriteBuffer

        buffer = _WriteBuffer()
        buffer.put_run(
            np.asarray([1, 2], dtype=np.int64), np.asarray([10, 20], dtype=np.int64)
        )
        snapshot = buffer.snapshot()
        # A concurrent writer lands a fresh key and rewrites key 2.
        buffer.put_run(
            np.asarray([3, 2], dtype=np.int64), np.asarray([30, 22], dtype=np.int64)
        )
        buffer.drop_merged(snapshot)
        assert buffer.entries == {3: 30, 2: 22}

    def test_background_merge_drains(self, rng):
        keys, __, service = service_fixture(
            rng, "btree", n_shards=4, staleness_threshold=0.01,
            background_merge=True,
        )
        with service:
            fresh = np.setdiff1d(np.unique(rng.integers(0, 10**7, 300)), keys)
            service.insert_many(fresh)
            service.drain()
            assert service.stats.merges > 0
            assert service.lookup_many(fresh).found.all()


class TestBlockCache:
    def test_cache_serves_identical_answers(self, rng):
        keys, queries, service = service_fixture(
            rng, "btree", n_shards=4, cache_blocks=256
        )
        cold = service.lookup_many(queries)
        warm = service.lookup_many(queries)
        assert np.array_equal(cold.found, warm.found)
        assert np.array_equal(cold.values, warm.values)
        assert service.stats.cache_hits > 0
        # Cached answers skip traversal entirely.
        assert (warm.levels[warm.found] == 0).any() or service.stats.cache_hits == 0

    def test_cache_capacity_is_bounded(self, rng):
        keys, queries, service = service_fixture(
            rng, "sorted_array", n_shards=4, cache_blocks=4
        )
        service.lookup_many(queries)
        assert len(service._cache) <= 4

    def test_insert_invalidates_affected_blocks(self, rng):
        keys, __, service = service_fixture(
            rng, "sorted_array", n_shards=2, cache_blocks=64,
            staleness_threshold=10.0,
        )
        target = int(keys[10])
        service.lookup_many(np.asarray([target]))          # fill the block
        service.lookup_many(np.asarray([target]))          # hit it
        hits_before = service.stats.cache_hits
        assert hits_before > 0
        service.insert_many(np.asarray([target]), np.asarray([123]))
        assert service.lookup(target) == 123               # buffer wins
        service.flush()
        assert service.lookup(target) == 123               # not a stale block

    def test_hit_rate_counter(self, rng):
        keys, queries, service = service_fixture(
            rng, "sorted_array", n_shards=2, cache_blocks=256
        )
        service.lookup_many(queries)
        service.lookup_many(queries)
        assert 0.0 < service.stats.cache_hit_rate <= 1.0


class TestServiceRangeAndReporting:
    def test_range_query_includes_buffered_writes(self, rng):
        keys, __, service = service_fixture(
            rng, "btree", n_shards=4, staleness_threshold=10.0
        )
        low, high = int(keys[100]), int(keys[900])
        inside = (low + high) // 2
        if inside in keys:
            inside += 1
        service.insert_many(np.asarray([inside]), np.asarray([-5]))
        got = service.range_query(low, high)
        expected = sorted(
            {int(k): int(k) for k in keys if low <= k <= high} | {inside: -5}
        )
        assert [k for k, __ in got] == expected
        assert dict(got)[inside] == -5

    def test_latency_report_percentiles(self, rng):
        keys, queries, service = service_fixture(rng, "lipp", n_shards=4)
        service.lookup_many(queries)
        report = service.latency_report()
        assert 1 <= len(report.shards) <= 4
        for row in report.shards:
            assert row.p50_ns <= row.p90_ns <= row.p99_ns
            assert row.n_queries > 0
        assert report.total is not None
        assert report.total.n_queries == queries.size
        table = report.to_table()
        assert "p99" in table and "shard" in table

    def test_n_keys_counts_net_new_buffered(self, rng):
        keys, __, service = service_fixture(
            rng, "sorted_array", n_shards=2, staleness_threshold=10.0
        )
        base = service.n_keys
        assert base == keys.size
        existing = keys[:5]
        fresh = np.asarray([10**9, 10**9 + 1], dtype=np.int64)
        service.insert_many(np.concatenate([existing, fresh]))
        assert service.n_keys == base + 2
