"""Import checks + smoke runs for the benchmark harness.

Every ``benchmarks/*.py`` file must at least import cleanly on every
test run, so a refactor that breaks a bench surfaces immediately
instead of at paper-reproduction time.  The perf-regression script
additionally gets a real ``--quick`` execution, marked ``slow``
(deselected by default; run with ``pytest -m slow``).
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_SCRIPTS = sorted(p for p in BENCH_DIR.glob("*.py") if p.name != "conftest.py")


@pytest.mark.parametrize("script", BENCH_SCRIPTS, ids=lambda p: p.stem)
def test_bench_script_imports(script):
    """Each bench module must import without executing its workload."""
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))  # mirrors benchmarks/conftest.py
    spec = importlib.util.spec_from_file_location(f"bench_import_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)


def test_perf_regression_has_cli():
    spec = importlib.util.spec_from_file_location(
        "bench_perf_regression_cli", BENCH_DIR / "bench_perf_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
    assert callable(module.run)


@pytest.mark.slow
def test_perf_regression_quick_smoke(tmp_path):
    """End-to-end --quick run: parity asserts inside the script must
    hold and the JSON trajectory file must be complete."""
    out = tmp_path / "BENCH_perf.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH_DIR / "bench_perf_regression.py"), "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["config"]["quick"] is True
    assert report["smoothing"]["speedup"] > 1.0
    assert set(report["lookups"]) == {
        "alex", "lipp", "sali", "btree", "pgm", "rmi", "sorted_array",
    }
    for row in report["lookups"].values():
        assert row["batch_lookups_per_s"] > 0
    assert set(report["inserts"]) == {"sorted_array", "btree", "alex", "lipp", "sali"}


@pytest.mark.slow
def test_bench_serving_quick_smoke(tmp_path):
    """End-to-end --quick serving bench: shard-scaling rows recorded,
    merged into (not clobbering) an existing BENCH_perf.json."""
    out = tmp_path / "BENCH_perf.json"
    out.write_text(json.dumps({"smoothing": {"sentinel": True}}))
    proc = subprocess.run(
        [sys.executable, str(BENCH_DIR / "bench_serving.py"), "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["smoothing"] == {"sentinel": True}  # merge, not overwrite
    serving = report["serving"]
    assert serving["config"]["quick"] is True
    for family in ("lipp", "btree", "pgm"):
        sweep = serving["scaling"][family]
        assert set(sweep) == {"K1", "K2", "K4", "K8"}
        for row in sweep.values():
            assert row["lookups_per_s"] > 0
            assert row["threaded_lookups_per_s"] > 0
            assert row["mixed_ops_per_s"] > 0
