"""Import checks + smoke runs for the benchmark harness.

Every ``benchmarks/*.py`` file must at least import cleanly on every
test run, so a refactor that breaks a bench surfaces immediately
instead of at paper-reproduction time.  The perf-regression script
additionally gets a real ``--quick`` execution, marked ``slow``
(deselected by default; run with ``pytest -m slow``).
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_SCRIPTS = sorted(p for p in BENCH_DIR.glob("*.py") if p.name != "conftest.py")


@pytest.mark.parametrize("script", BENCH_SCRIPTS, ids=lambda p: p.stem)
def test_bench_script_imports(script):
    """Each bench module must import without executing its workload."""
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))  # mirrors benchmarks/conftest.py
    spec = importlib.util.spec_from_file_location(f"bench_import_{script.stem}", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)


def test_perf_regression_has_cli():
    spec = importlib.util.spec_from_file_location(
        "bench_perf_regression_cli", BENCH_DIR / "bench_perf_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)
    assert callable(module.run)


@pytest.mark.slow
def test_perf_regression_quick_smoke(tmp_path):
    """End-to-end --quick run: parity asserts inside the script must
    hold and the JSON trajectory file must be complete."""
    out = tmp_path / "BENCH_perf.json"
    proc = subprocess.run(
        [sys.executable, str(BENCH_DIR / "bench_perf_regression.py"), "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["config"]["quick"] is True
    assert report["smoothing"]["speedup"] > 1.0
    assert set(report["lookups"]) == {
        "alex", "lipp", "sali", "btree", "pgm", "rmi", "sorted_array",
    }
    for row in report["lookups"].values():
        assert row["batch_lookups_per_s"] > 0
    assert set(report["inserts"]) == {"sorted_array", "btree", "alex", "lipp", "sali"}
    assert set(report["bulk_inserts"]) == {"btree", "alex", "lipp", "sali"}
    for row in report["bulk_inserts"].values():
        assert row["bulk_inserts_per_s"] > 0
        assert row["speedup"] > 1.0


def _run_check_regression(tmp_path, baseline: dict, fresh: dict, *extra):
    base_path = tmp_path / "baseline.json"
    fresh_path = tmp_path / "fresh.json"
    base_path.write_text(json.dumps(baseline))
    fresh_path.write_text(json.dumps(fresh))
    return subprocess.run(
        [
            sys.executable, str(BENCH_DIR / "check_regression.py"),
            "--baseline", str(base_path), "--fresh", str(fresh_path), *extra,
        ],
        capture_output=True,
        text=True,
        timeout=60,
        cwd=REPO_ROOT,
    )


_GATE_BASELINE = {
    "config": {"quick": False, "n": 10},
    "lookups": {"lipp": {"loop_lookups_per_s": 1000.0, "speedup": 2.0}},
    "bulk_inserts": {"lipp": {"bulk_inserts_per_s": 50_000.0, "speedup": 10.0}},
    "quick_baseline": {
        "config": {"quick": True, "n": 2},
        "lookups": {"lipp": {"loop_lookups_per_s": 400.0, "speedup": 1.8}},
        "inserts": {"lipp": {"loop_inserts_per_s": 50.0, "speedup": 0.95}},
        "bulk_inserts": {"lipp": {"bulk_inserts_per_s": 9_000.0, "speedup": 8.0}},
    },
}


def test_check_regression_passes_on_identical_report(tmp_path):
    proc = _run_check_regression(tmp_path, _GATE_BASELINE, _GATE_BASELINE)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "[strict]" in proc.stdout
    assert "perf gate passed" in proc.stdout


def test_check_regression_fails_on_throughput_drop(tmp_path):
    fresh = json.loads(json.dumps(_GATE_BASELINE))
    fresh["bulk_inserts"]["lipp"]["bulk_inserts_per_s"] = 20_000.0  # -60%
    proc = _run_check_regression(tmp_path, _GATE_BASELINE, fresh)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "FAIL" in proc.stdout


def test_check_regression_ci_mode_gates_speedups(tmp_path):
    """Quick fresh vs full baseline with an embedded quick_baseline:
    speedup ratios are gated, absolute throughput is informational
    (a slower CI runner shifts it uniformly)."""
    fresh = {
        "config": {"quick": True, "n": 2},
        "lookups": {"lipp": {"loop_lookups_per_s": 100.0, "speedup": 1.7}},
        # Near-unity baseline speedup (0.95) halving is measurement
        # noise, not a regression: demoted to info, never gated.
        "inserts": {"lipp": {"loop_inserts_per_s": 12.0, "speedup": 0.5}},
        "bulk_inserts": {"lipp": {"bulk_inserts_per_s": 2_000.0, "speedup": 7.5}},
    }
    # Throughput is 4x below the quick baseline (slow runner) but the
    # meaningful speedups held up: the gate passes.
    proc = _run_check_regression(tmp_path, _GATE_BASELINE, fresh)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "[ratio]" in proc.stdout
    assert "[info]" in proc.stdout
    # A collapsed speedup is a real regression and fails.
    fresh["bulk_inserts"]["lipp"]["speedup"] = 2.0  # -75% vs 8.0
    proc = _run_check_regression(tmp_path, _GATE_BASELINE, fresh)
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "FAIL" in proc.stdout


def test_check_regression_grace_fallback_without_quick_baseline(tmp_path):
    baseline = json.loads(json.dumps(_GATE_BASELINE))
    del baseline["quick_baseline"]
    fresh = {
        "config": {"quick": True, "n": 2},  # different config: grace applies
        "lookups": {"lipp": {"loop_lookups_per_s": 700.0}},  # -30% < 50% grace
    }
    proc = _run_check_regression(tmp_path, baseline, fresh)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "[grace" in proc.stdout
    assert "[skip]" in proc.stdout  # bulk_inserts only in the baseline


def test_quick_run_refuses_to_overwrite_committed_baseline():
    proc = subprocess.run(
        [sys.executable, str(BENCH_DIR / "bench_perf_regression.py"), "--quick"],
        capture_output=True,
        text=True,
        timeout=60,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 2, proc.stdout + proc.stderr
    assert "must not overwrite" in proc.stderr


def test_check_regression_same_config_uses_strict_gate(tmp_path):
    fresh = json.loads(json.dumps(_GATE_BASELINE))
    fresh["lookups"]["lipp"]["loop_lookups_per_s"] = 650.0  # -35% > 30%
    proc = _run_check_regression(tmp_path, _GATE_BASELINE, fresh)
    assert proc.returncode == 1, proc.stdout + proc.stderr


@pytest.mark.slow
def test_bench_serving_quick_smoke(tmp_path):
    """End-to-end --quick serving bench: shard-scaling rows recorded,
    merged into (not clobbering) an existing BENCH_perf.json."""
    out = tmp_path / "BENCH_perf.json"
    out.write_text(json.dumps({"smoothing": {"sentinel": True}}))
    proc = subprocess.run(
        [sys.executable, str(BENCH_DIR / "bench_serving.py"), "--quick", "--out", str(out)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["smoothing"] == {"sentinel": True}  # merge, not overwrite
    serving = report["serving"]
    assert serving["config"]["quick"] is True
    for family in ("lipp", "btree", "pgm"):
        sweep = serving["scaling"][family]
        assert set(sweep) == {"K1", "K2", "K4", "K8"}
        for row in sweep.values():
            assert row["lookups_per_s"] > 0
            assert row["threaded_lookups_per_s"] > 0
            assert row["mixed_ops_per_s"] > 0
    assert serving["config"]["cpu_count"] >= 1
    for family in ("lipp", "btree"):
        sweep = serving["process_scaling"][family]
        assert {"K1", "K2", "K4"} <= set(sweep)
        for label in ("K1", "K2", "K4"):
            assert sweep[label]["process_lookups_per_s"] > 0
        assert sweep["k4_over_k1_ratio"] > 0
