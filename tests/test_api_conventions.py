"""Library-wide convention checks: documentation and API stability.

These guard the "production-quality" bar: every public item is
documented, the package exports stay importable, and module-level
``__all__`` lists match reality.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    name
    for __, name, __is_pkg in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not any(part.startswith("_") for part in name.split(".")[1:])
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_exist(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if obj.__module__ != module_name:
                continue  # re-export; documented at its home module
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
            if inspect.isclass(obj):
                for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                    if meth_name.startswith("_"):
                        continue
                    if meth.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    # getdoc() follows the MRO, so a documented base
                    # method covers its overrides.
                    assert inspect.getdoc(getattr(obj, meth_name)), (
                        f"{module_name}.{name}.{meth_name} lacks a docstring"
                    )


def test_top_level_all_is_sorted_and_unique():
    exported = [n for n in repro.__all__ if n != "__version__"]
    assert len(set(exported)) == len(exported)


def test_index_registry_matches_classes():
    from repro.indexes import INDEX_FAMILIES

    for name, cls in INDEX_FAMILIES.items():
        assert cls.name == name, f"registry key {name} != class name {cls.name}"
