"""Tests for the Section 6.1 evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.metrics import (
    PROMOTABLE_LEVEL,
    LevelSnapshot,
    improvement_pct,
    node_reduction_pct,
    promoted_keys,
    promoted_percentage,
    relative_increase_pct,
    total_time_saved_ns,
)
from repro.indexes import LippIndex


class TestLevelSnapshot:
    def test_capture(self, small_keys):
        index = LippIndex.build(small_keys)
        snap = LevelSnapshot.capture(index, small_keys)
        assert len(snap) == small_keys.size
        assert all(level >= 1 for level in snap.levels.values())

    def test_promotable_threshold(self):
        snap = LevelSnapshot({1: 1, 2: 2, 3: 3, 4: 4})
        assert snap.promotable() == {3, 4}
        assert snap.promotable(threshold=2) == {2, 3, 4}


class TestPromotedKeys:
    def test_detects_promotions(self):
        before = LevelSnapshot({1: 3, 2: 4, 3: 2})
        after = LevelSnapshot({1: 2, 2: 4, 3: 2})
        assert promoted_keys(before, after) == {1}

    def test_ignores_demotions_and_missing(self):
        before = LevelSnapshot({1: 2, 2: 2})
        after = LevelSnapshot({1: 3})  # demoted; key 2 vanished
        assert promoted_keys(before, after) == set()

    def test_percentage(self):
        before = LevelSnapshot({1: 3, 2: 3, 3: 4, 4: 2})
        after = LevelSnapshot({1: 2, 2: 3, 3: 4, 4: 2})
        # promotable = {1, 2, 3, 4} at levels >= 3 → {1?, ...}: levels
        # are the VALUES; promotable keys are 1, 2 (level 3), 3 (4)...
        assert promoted_percentage(before, after) == pytest.approx(100.0 / 3)

    def test_percentage_empty_promotable(self):
        before = LevelSnapshot({1: 1, 2: 2})
        after = LevelSnapshot({1: 1, 2: 1})
        assert promoted_percentage(before, after) == 0.0


class TestScalarMetrics:
    def test_relative_increase(self):
        assert relative_increase_pct(100, 110) == pytest.approx(10.0)
        assert relative_increase_pct(100, 90) == pytest.approx(-10.0)
        assert relative_increase_pct(0, 50) == 0.0

    def test_improvement(self):
        assert improvement_pct(200.0, 150.0) == pytest.approx(25.0)
        assert improvement_pct(0.0, 10.0) == 0.0

    def test_total_time_saved(self):
        assert total_time_saved_ns(1000.0, 600.0) == pytest.approx(400.0)

    def test_node_reduction(self):
        before = [1, 2, 2, 3, 3, 3, 4]  # 4 nodes at level >= 3
        after = [1, 2, 2, 3]
        assert node_reduction_pct(before, after) == pytest.approx(75.0)

    def test_node_reduction_no_deep_nodes(self):
        assert node_reduction_pct([1, 2], [1]) == 0.0

    def test_promotable_level_constant(self):
        assert PROMOTABLE_LEVEL == 3
