"""Tests for the experiment drivers (small-n smoke versions of the
paper's experiments)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.evaluation.runner import (
    run_alpha_sweep,
    run_cardinality_sweep,
    run_csv_experiment,
    run_level_query_times,
    run_readwrite_experiment,
)

N = 4000


class TestRunCsvExperiment:
    def test_row_fields_sane(self):
        row = run_csv_experiment("lipp", "facebook", n=N, alpha=0.1)
        assert row.index_family == "lipp"
        assert row.n == N
        assert 0.0 <= row.promoted_pct <= 100.0
        assert row.promoted_keys <= row.promotable_keys or row.promotable_keys == 0
        assert row.preprocessing_seconds > 0
        assert row.height_after <= row.height_before

    def test_improvement_on_easy_data(self):
        """Facebook-like data must show real promotion + improvement."""
        row = run_csv_experiment("lipp", "facebook", n=N, alpha=0.2)
        assert row.promoted_pct > 5.0
        assert row.query_improvement_pct > 0.0
        assert row.total_time_saved_ns > 0.0

    def test_unknown_family(self):
        with pytest.raises(InvalidKeysError):
            run_csv_experiment("btree++", "covid", n=N)

    def test_explicit_keys_bypass_loader(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 2000))
        row = run_csv_experiment("lipp", "custom", keys=keys, alpha=0.1)
        assert row.dataset == "custom"
        assert row.n == keys.size

    def test_alex_experiment_runs(self):
        row = run_csv_experiment("alex", "genome", n=N, alpha=0.1)
        assert row.nodes_rebuilt >= 0
        assert row.height_after <= row.height_before


class TestSweeps:
    def test_alpha_sweep_rows(self):
        rows = run_alpha_sweep("lipp", "covid", alphas=(0.05, 0.2), n=N)
        assert [r.alpha for r in rows] == [0.05, 0.2]

    def test_alpha_sweep_virtual_points_grow(self):
        rows = run_alpha_sweep("lipp", "genome", alphas=(0.05, 0.4), n=N)
        assert rows[1].virtual_points >= rows[0].virtual_points

    def test_cardinality_sweep_sizes(self):
        rows = run_cardinality_sweep(
            "lipp", "covid", fractions=(0.25, 1.0), full_n=N
        )
        assert rows[0].n < rows[1].n


class TestLevelQueryTimes:
    def test_levels_sorted_and_costed(self):
        rows = run_level_query_times("lipp", "genome", n=N)
        levels = [r.level for r in rows]
        assert levels == sorted(levels)
        assert all(r.avg_simulated_ns > 0 for r in rows)

    def test_deeper_levels_cost_more(self):
        """Fig. 1's monotone trend."""
        rows = run_level_query_times("lipp", "osm", n=N)
        costs = [r.avg_simulated_ns for r in rows]
        assert costs == sorted(costs)

    def test_key_counts_positive(self):
        rows = run_level_query_times("lipp", "covid", n=N)
        assert all(r.n_keys_at_level > 0 for r in rows)


class TestReadWrite:
    def test_observation_count(self):
        observations = run_readwrite_experiment(
            "lipp", "covid", n=N, alpha=0.1, n_batches=2
        )
        assert len(observations) == 3

    def test_inserted_counts_monotone(self):
        observations = run_readwrite_experiment(
            "lipp", "facebook", n=N, alpha=0.1, n_batches=2
        )
        inserted = [o.inserted_so_far for o in observations]
        assert inserted == sorted(inserted)

    def test_initial_time_saved_positive_on_easy_data(self):
        observations = run_readwrite_experiment(
            "lipp", "facebook", n=N, alpha=0.2, n_batches=1
        )
        assert observations[0].total_time_saved_ns >= 0.0
