"""Tests for the ASCII reporting helpers."""

from __future__ import annotations

from pathlib import Path

from repro.evaluation.reporting import ascii_table, format_float, results_dir, write_result


class TestAsciiTable:
    def test_contains_headers_and_cells(self):
        table = ascii_table(["name", "value"], [["covid", 1.5], ["osm", 2.0]])
        assert "name" in table and "covid" in table and "1.50" in table

    def test_column_alignment(self):
        table = ascii_table(["a"], [["xxxxxxxxxx"]])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # uniform width

    def test_empty_rows(self):
        table = ascii_table(["a", "b"], [])
        assert "a" in table


class TestFormatFloat:
    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_small(self):
        assert format_float(1.2345) == "1.23"

    def test_large_uses_compact(self):
        assert "e" in format_float(1.5e8) or len(format_float(1.5e8)) <= 9

    def test_digits(self):
        assert format_float(1.23456, digits=4) == "1.2346"


class TestWriteResult:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = write_result("unit_test", "hello")
        assert path.read_text() == "hello\n"
        assert path.parent == tmp_path

    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
        out = results_dir()
        assert out == tmp_path / "sub"
        assert out.exists()

    def test_default_results_dir_inside_repo(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        out = results_dir()
        assert out.name == "results"
        assert (out.parent / "pyproject.toml").exists()
