"""Cross-module integration and end-to-end property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import (
    CsvConfig,
    adapter_for,
    apply_csv,
    poison_keys,
    smooth_keys,
)
from repro.datasets import generate
from repro.indexes import INDEX_FAMILIES, AlexIndex, LippIndex, SaliIndex

key_sets = st.lists(
    st.integers(min_value=0, max_value=10**8), min_size=20, max_size=250, unique=True
).map(sorted)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_index_families_buildable(self, small_keys):
        for name, cls in INDEX_FAMILIES.items():
            index = cls.build(small_keys)
            assert index.lookup(int(small_keys[0])) == int(small_keys[0]), name


class TestSmoothingImprovesIndexes:
    """The paper's end-to-end claim: smoothing the key set makes the
    learned index structurally better."""

    @pytest.mark.parametrize("dataset", ["facebook", "genome"])
    def test_lipp_conflicts_drop_on_smoothed_points(self, dataset):
        keys = generate(dataset, 3000)
        result = smooth_keys(keys, alpha=0.3)
        # Index the ORIGINAL keys with the node sized/modelled by the
        # smoothed point set (what a CSV rebuild does) and compare the
        # conflict count against a plain build.
        from repro.indexes.lipp import LippNode

        plain = LippNode.from_keys(keys, keys, level=1)
        smoothed = LippNode.from_keys(
            keys, keys, level=1, m=int(result.points.size), model=result.model
        )
        assert smoothed.conflict_count <= plain.conflict_count

    def test_poisoning_degrades_what_smoothing_improves(self):
        keys = generate("facebook", 1500)
        smoothed = smooth_keys(keys, budget=100)
        poisoned = poison_keys(keys, budget=100)
        assert smoothed.final_loss < poisoned.final_loss


@pytest.mark.parametrize("cls", [LippIndex, SaliIndex, AlexIndex])
class TestCsvEndToEnd:
    @pytest.mark.parametrize("dataset", ["facebook", "osm"])
    def test_csv_then_full_verification(self, cls, dataset):
        keys = generate(dataset, 3000)
        index = cls.build(keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.1))
        index.verify_against(keys, keys)

    def test_csv_then_insert_then_query(self, cls, rng):
        keys = generate("covid", 2500)
        index = cls.build(keys)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.2))
        new = np.setdiff1d(np.unique(rng.integers(0, 10**9, 800)), keys)
        for key in new.tolist():
            index.insert(int(key), -int(key))
        for key in new[::19].tolist():
            assert index.lookup(int(key)) == -int(key)
        for key in keys[::37].tolist():
            assert index.lookup(int(key)) == int(key)


class TestRandomisedEndToEnd:
    @settings(max_examples=15, deadline=None)
    @given(keys=key_sets)
    def test_lipp_csv_property(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        index = LippIndex.build(arr)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.2))
        for key in arr[:: max(1, arr.size // 30)].tolist():
            assert index.lookup(key) == key

    @settings(max_examples=10, deadline=None)
    @given(keys=key_sets)
    def test_alex_csv_property(self, keys):
        arr = np.asarray(keys, dtype=np.int64)
        index = AlexIndex.build(arr)
        apply_csv(adapter_for(index), CsvConfig(alpha=0.2))
        for key in arr[:: max(1, arr.size // 30)].tolist():
            assert index.lookup(key) == key

    @settings(max_examples=15, deadline=None)
    @given(keys=key_sets, alpha=st.sampled_from([0.05, 0.1, 0.4]))
    def test_smoothed_points_always_contain_originals(self, keys, alpha):
        arr = np.asarray(keys, dtype=np.int64)
        result = smooth_keys(arr, alpha=alpha)
        assert set(arr.tolist()) <= set(result.points.tolist())
        assert result.points.size == arr.size + result.n_virtual
