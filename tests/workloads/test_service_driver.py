"""Mixed read/write service workload driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import InvalidKeysError
from repro.serving import IndexService
from repro.workloads import run_service_workload


@pytest.fixture()
def service(rng):
    keys = np.unique(rng.integers(0, 10**7, 1200))
    svc = IndexService.build(keys, family="sorted_array", n_shards=4)
    yield keys, svc
    svc.close()


class TestServiceWorkload:
    def test_mixed_workload_end_to_end(self, service):
        keys, svc = service
        report = run_service_workload(
            svc, keys, n_ops=2_000, read_fraction=0.8, batch_size=500, seed=1
        )
        assert report.n_ops == 2_000
        assert report.n_reads + report.n_writes == 2_000
        assert report.n_batches == 4
        # Reads sample stored or previously written keys: all hits.
        assert report.read_hit_rate == 1.0
        assert report.ops_per_second > 0
        assert svc.stats.n_lookups == report.n_reads
        assert svc.stats.n_inserts == report.n_writes

    def test_read_only_and_write_only(self, service):
        keys, svc = service
        reads = run_service_workload(svc, keys, n_ops=500, read_fraction=1.0)
        assert reads.n_writes == 0 and reads.n_reads == 500
        writes = run_service_workload(svc, keys, n_ops=200, read_fraction=0.0)
        assert writes.n_reads == 0 and writes.n_writes == 200
        assert writes.avg_simulated_ns == 0.0

    def test_zipf_distribution(self, service):
        keys, svc = service
        report = run_service_workload(
            svc, keys, n_ops=1_000, distribution="zipf", seed=3
        )
        assert report.read_hit_rate == 1.0

    def test_invalid_parameters(self, service):
        keys, svc = service
        with pytest.raises(InvalidKeysError):
            run_service_workload(svc, keys, n_ops=100, read_fraction=1.5)
        with pytest.raises(InvalidKeysError):
            run_service_workload(svc, keys, n_ops=100, distribution="pareto")


class TestShardedExperiment:
    def test_comparison_rows(self, rng):
        from repro.evaluation import run_sharded_experiment

        rows = run_sharded_experiment(
            "sorted_array",
            "facebook",
            n=1_500,
            shard_counts=(1, 4),
            n_queries=2_000,
            seed=0,
        )
        labels = [r.label for r in rows]
        assert labels[0] == "monolithic"
        assert "equi_depth K=4" in labels
        for row in rows:
            assert row.lookups_per_second > 0
            assert row.hit_rate == 1.0
            assert row.p99_simulated_ns >= row.avg_simulated_ns
        # K=1 equals the monolithic index under the cost model.
        k1 = next(r for r in rows if r.label == "equi_depth K=1")
        assert k1.avg_simulated_ns == pytest.approx(rows[0].avg_simulated_ns)
