"""Tests for workload generation and execution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cost_model import CostConstants
from repro.core.exceptions import InvalidKeysError
from repro.indexes import LippIndex, SortedArrayIndex
from repro.workloads import (
    QueryProfile,
    profile_queries,
    run_insert_batches,
    sample_queries,
    split_read_write,
    zipf_queries,
)


class TestSampleQueries:
    def test_samples_from_keys(self, small_keys, rng):
        queries = sample_queries(small_keys, 50, rng)
        assert queries.size == 50
        assert set(queries.tolist()) <= set(small_keys.tolist())

    def test_without_replacement_unique(self, small_keys, rng):
        queries = sample_queries(small_keys, 50, rng, replace=False)
        assert len(set(queries.tolist())) == 50

    def test_without_replacement_caps_at_population(self, rng):
        queries = sample_queries(np.arange(10), 100, rng, replace=False)
        assert queries.size == 10

    def test_rejects_empty(self, rng):
        with pytest.raises(InvalidKeysError):
            sample_queries(np.empty(0, dtype=np.int64), 5, rng)

    def test_zipf_is_skewed(self, rng):
        keys = np.arange(10_000)
        queries = zipf_queries(keys, 5000, rng, exponent=1.5)
        __, counts = np.unique(queries, return_counts=True)
        assert counts.max() > 5  # a hot key exists
        assert set(queries.tolist()) <= set(keys.tolist())


class TestSplitReadWrite:
    def test_half_and_batches(self, rng):
        keys = np.arange(0, 10_000, 3)
        split = split_read_write(keys, rng, batch_fraction=0.1, n_batches=5)
        n = keys.size
        assert split.build_keys.size == n // 2
        assert len(split.batches) == 5
        for batch in split.batches:
            assert batch.size == pytest.approx((n // 2) * 0.1, abs=1)

    def test_no_overlap_between_build_and_batches(self, rng):
        keys = np.arange(0, 3000, 7)
        split = split_read_write(keys, rng)
        build = set(split.build_keys.tolist())
        for batch in split.batches:
            assert not build & set(batch.tolist())

    def test_build_keys_sorted(self, rng):
        split = split_read_write(np.arange(0, 999, 3), rng)
        assert np.all(np.diff(split.build_keys) > 0)

    def test_rejects_tiny_input(self, rng):
        with pytest.raises(InvalidKeysError):
            split_read_write(np.array([1, 2]), rng)

    def test_total_inserts(self, rng):
        split = split_read_write(np.arange(0, 2000, 2), rng)
        assert split.total_inserts == sum(b.size for b in split.batches)


class TestProfileQueries:
    def test_profile_fields(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        profile = profile_queries(index, small_keys[:40])
        assert profile.n_queries == 40
        assert profile.hit_rate == 1.0
        assert profile.avg_levels == 1.0
        assert profile.avg_simulated_ns > 0
        assert profile.total_simulated_ns == pytest.approx(
            profile.avg_simulated_ns * 40
        )

    def test_constants_affect_ns(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        cheap = profile_queries(index, small_keys[:20], CostConstants(1, 1, 0))
        dear = profile_queries(index, small_keys[:20], CostConstants(100, 100, 0))
        assert dear.avg_simulated_ns > cheap.avg_simulated_ns

    def test_misses_lower_hit_rate(self, small_keys):
        index = SortedArrayIndex.build(small_keys)
        queries = np.concatenate([small_keys[:10], small_keys[:10] * 0 - 1])
        profile = profile_queries(index, queries)
        assert profile.hit_rate == pytest.approx(0.5)

    def test_rejects_empty_batch(self, small_keys):
        with pytest.raises(InvalidKeysError):
            QueryProfile.from_stats([])


class TestRunInsertBatches:
    def test_observation_sequence(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 3000))
        split = split_read_write(keys, rng, n_batches=3)
        enhanced = LippIndex.build(split.build_keys)
        original = LippIndex.build(split.build_keys)
        queries = sample_queries(split.build_keys, 100, rng)
        observations = run_insert_batches(
            enhanced, original, split.batches, queries
        )
        assert len(observations) == 4  # initial + 3 batches
        assert observations[0].batch_index == 0
        assert observations[0].inserted_so_far == 0
        assert observations[-1].inserted_so_far == split.total_inserts

    def test_inserts_applied_to_both(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 2000))
        split = split_read_write(keys, rng, n_batches=2)
        enhanced = LippIndex.build(split.build_keys)
        original = LippIndex.build(split.build_keys)
        queries = sample_queries(split.build_keys, 50, rng)
        run_insert_batches(enhanced, original, split.batches, queries)
        assert enhanced.n_keys == original.n_keys
        assert enhanced.n_keys == split.build_keys.size + split.total_inserts

    def test_identical_indexes_save_nothing(self, rng):
        keys = np.unique(rng.integers(0, 10**7, 2000))
        split = split_read_write(keys, rng, n_batches=1)
        enhanced = LippIndex.build(split.build_keys)
        original = LippIndex.build(split.build_keys)
        queries = sample_queries(split.build_keys, 100, rng)
        observations = run_insert_batches(enhanced, original, split.batches, queries)
        assert observations[0].total_time_saved_ns == pytest.approx(0.0)
        assert observations[0].storage_increase_pct == pytest.approx(0.0)
