"""Tests for the CLI front-end and persistence helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.exceptions import InvalidKeysError
from repro.core.smoothing import smooth_keys
from repro.evaluation.runner import run_csv_experiment
from repro.io import (
    export_rows_csv,
    load_keys,
    load_smoothing_result,
    save_keys,
    save_smoothing_result,
)


class TestIo:
    def test_keys_roundtrip(self, tmp_path, small_keys):
        path = save_keys(tmp_path / "keys.npz", small_keys)
        keys, values = load_keys(path)
        assert np.array_equal(keys, small_keys)
        assert values is None

    def test_keys_with_values_roundtrip(self, tmp_path, small_keys):
        vals = small_keys * 2
        path = save_keys(tmp_path / "kv.npz", small_keys, vals)
        keys, values = load_keys(path)
        assert np.array_equal(values, vals)

    def test_save_keys_rejects_mismatch(self, tmp_path, small_keys):
        with pytest.raises(InvalidKeysError):
            save_keys(tmp_path / "bad.npz", small_keys, small_keys[:-1])

    def test_smoothing_result_roundtrip(self, tmp_path, toy_keys):
        result = smooth_keys(toy_keys, alpha=0.5)
        path = save_smoothing_result(tmp_path / "smooth.npz", result)
        loaded = load_smoothing_result(path)
        assert np.array_equal(loaded.points, result.points)
        assert loaded.virtual_points == result.virtual_points
        assert loaded.final_loss == pytest.approx(result.final_loss)
        assert loaded.model.slope == pytest.approx(result.model.slope)
        assert loaded.model.pivot == result.model.pivot
        assert loaded.budget == result.budget

    def test_export_rows_csv(self, tmp_path):
        row = run_csv_experiment("lipp", "covid", n=1500, alpha=0.1)
        path = export_rows_csv(tmp_path / "rows.csv", [row])
        content = path.read_text().splitlines()
        assert content[0].startswith("index_family,dataset")
        assert "lipp,covid" in content[1]

    def test_export_rejects_empty(self, tmp_path):
        with pytest.raises(InvalidKeysError):
            export_rows_csv(tmp_path / "rows.csv", [])


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        for name in ("covid", "facebook", "genome", "osm"):
            assert name in out

    def test_smooth_command(self, capsys):
        assert main(["smooth", "--dataset", "covid", "--n", "1200", "--alpha", "0.1"]) == 0
        assert "virtual points inserted" in capsys.readouterr().out

    def test_smooth_from_file(self, tmp_path, small_keys, capsys):
        path = save_keys(tmp_path / "keys.npz", small_keys)
        assert main(["smooth", "--keys-file", str(path), "--alpha", "0.2"]) == 0
        assert str(path) in capsys.readouterr().out

    def test_smooth_save(self, tmp_path, capsys):
        target = tmp_path / "result.npz"
        assert (
            main(
                [
                    "smooth",
                    "--dataset",
                    "covid",
                    "--n",
                    "1200",
                    "--alpha",
                    "0.1",
                    "--save",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()
        loaded = load_smoothing_result(target)
        assert loaded.original_keys.size == 1200

    def test_build_command(self, capsys):
        assert main(["build", "--index", "lipp", "--dataset", "covid", "--n", "1500"]) == 0
        out = capsys.readouterr().out
        assert "height" in out and "nodes" in out

    def test_csv_command(self, capsys):
        assert main(["csv", "--index", "lipp", "--dataset", "covid", "--n", "1500"]) == 0
        assert "promoted keys" in capsys.readouterr().out

    def test_csv_export(self, tmp_path, capsys):
        target = tmp_path / "row.csv"
        assert (
            main(
                [
                    "csv",
                    "--index",
                    "lipp",
                    "--dataset",
                    "covid",
                    "--n",
                    "1500",
                    "--export",
                    str(target),
                ]
            )
            == 0
        )
        assert target.exists()

    def test_levels_command(self, capsys):
        assert main(["levels", "--index", "lipp", "--dataset", "genome", "--n", "1500"]) == 0
        assert "avg query" in capsys.readouterr().out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["build", "--dataset", "nope"])
