# HTTP front door image: `docker run -p 8000:8000 <image>` serves the
# batch JSON endpoints (see README "Serving over HTTP") on port 8000
# with the runtime store on the /data volume, so accepted writes
# survive a container restart.
FROM python:3.12-slim

# numpy is the project's only runtime dependency (pyproject.toml).
RUN pip install --no-cache-dir numpy

WORKDIR /app
COPY pyproject.toml README.md ./
COPY src ./src

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

RUN mkdir /data
VOLUME /data
EXPOSE 8000

ENTRYPOINT ["python", "-m", "repro"]
CMD ["serve", "--http", "--host", "0.0.0.0", "--port", "8000", \
     "--store", "/data/runtime.db", \
     "--metrics-out", "/data/metrics.jsonl"]
