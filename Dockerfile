# HTTP front door image: `docker run -p 8000:8000 <image>` serves the
# batch JSON endpoints (see docs/OPERATIONS.md) on port 8000 with both
# persistence layers on the /data volume — the durable index snapshot
# under /data/index and the SQLite runtime store at /data/runtime.db —
# so the index and accepted writes survive a container restart.
FROM python:3.12-slim

# numpy is the project's only runtime dependency (pyproject.toml).
RUN pip install --no-cache-dir numpy

WORKDIR /app
COPY pyproject.toml README.md ./
COPY src ./src

ENV PYTHONPATH=/app/src \
    PYTHONUNBUFFERED=1

RUN mkdir /data
VOLUME /data
EXPOSE 8000

ENTRYPOINT ["python", "-m", "repro"]
CMD ["serve", "--http", "--host", "0.0.0.0", "--port", "8000", \
     "--store", "/data/runtime.db", \
     "--data-dir", "/data/index", \
     "--metrics-out", "/data/metrics.jsonl"]
