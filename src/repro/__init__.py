"""repro — Learned Indexes with Distribution Smoothing via Virtual Points.

A from-scratch Python reproduction of the EDBT 2025 paper by
Amarasinghe, Choudhury, Qi and Bailey (arXiv:2408.06134): CDF
smoothing via virtual points (Algorithm 1), the CSV optimisation for
hierarchical learned indexes (Algorithm 2), the ALEX / LIPP / SALI
substrates it integrates with, synthetic analogues of the evaluation
datasets, and the full experiment harness.

Quickstart::

    import numpy as np
    from repro import smooth_keys, LippIndex, apply_csv, CsvConfig, adapter_for

    keys = np.unique(np.random.default_rng(0).integers(0, 10**6, 50_000))
    result = smooth_keys(keys, alpha=0.1)          # Algorithm 1
    print(result.loss_improvement_pct)

    index = LippIndex.build(keys)                  # a learned index
    report = apply_csv(adapter_for(index),         # Algorithm 2 (CSV)
                       CsvConfig(alpha=0.1))
    print(report.summary())
"""

from .core import (
    CostConstants,
    CsvConfig,
    CsvReport,
    GapInsertionLayout,
    InvalidKeysError,
    LinearModel,
    PoisoningResult,
    ReproError,
    SegmentStats,
    SmoothingBudgetError,
    SmoothingResult,
    apply_csv,
    build_gap_insertion,
    fit_linear,
    poison_keys,
    smooth_keys,
    smooth_keys_exhaustive,
    smooth_keys_quadratic,
    smooth_keys_weighted,
)
from .datasets import DATASETS, generate, load
from .evaluation import run_csv_experiment
from .indexes import (
    INDEX_FAMILIES,
    AlexIndex,
    BPlusTree,
    LippIndex,
    PGMIndex,
    QueryStats,
    RMIIndex,
    SaliIndex,
    SortedArrayIndex,
    adapter_for,
)
from .serving import IndexService, ShardRouter, plan_shards
from .store import DurableStore, make_strategy

__version__ = "1.0.0"

__all__ = [
    "AlexIndex",
    "BPlusTree",
    "CostConstants",
    "CsvConfig",
    "CsvReport",
    "DATASETS",
    "DurableStore",
    "GapInsertionLayout",
    "INDEX_FAMILIES",
    "IndexService",
    "InvalidKeysError",
    "LinearModel",
    "LippIndex",
    "PGMIndex",
    "PoisoningResult",
    "QueryStats",
    "RMIIndex",
    "ReproError",
    "SaliIndex",
    "SegmentStats",
    "ShardRouter",
    "SmoothingBudgetError",
    "SmoothingResult",
    "SortedArrayIndex",
    "adapter_for",
    "apply_csv",
    "build_gap_insertion",
    "fit_linear",
    "generate",
    "load",
    "make_strategy",
    "plan_shards",
    "poison_keys",
    "run_csv_experiment",
    "smooth_keys",
    "smooth_keys_exhaustive",
    "smooth_keys_quadratic",
    "smooth_keys_weighted",
    "__version__",
]
