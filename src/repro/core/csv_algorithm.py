"""CSV — CDF Smoothing via Virtual points for hierarchies (Algorithm 2).

CSV walks a *constructed* hierarchical learned index bottom-up.  For
every node that roots a subtree it:

1. collects the keys stored in the node and its descendants,
2. smooths their CDF with Algorithm 1
   (:func:`repro.core.smoothing.smooth_keys`),
3. evaluates a cost condition (loss reduction for LIPP/SALI, the
   Eq. 22 cost model for ALEX), and
4. if the condition passes, rebuilds the subtree as a single node whose
   slot layout follows the smoothed point set — the virtual points
   materialise as gaps that later absorb insertions.

The engine is index-agnostic: concrete indexes plug in through the
:class:`CsvAdapter` protocol implemented in
:mod:`repro.indexes.adapters`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Protocol, runtime_checkable

import numpy as np

from .exceptions import SmoothingBudgetError
from .smoothing import SmoothingResult, smooth_keys

__all__ = ["CsvAdapter", "CsvConfig", "CsvNodeRecord", "CsvReport", "apply_csv"]


@runtime_checkable
class CsvAdapter(Protocol):
    """What an index must expose for Algorithm 2 to optimise it.

    A *handle* is an adapter-chosen opaque reference to one node that
    roots a subtree (never the index root itself).  Handles from one
    level must stay valid until that level's pass completes; rebuilds
    happen only through :meth:`rebuild`.
    """

    def max_level(self) -> int:
        """Deepest level (root = 1) that contains subtree-rooting nodes."""
        ...

    def subtree_handles(self, level: int) -> Iterable[Any]:
        """Nodes at *level* that currently root a subtree."""
        ...

    def collect_keys(self, handle: Any) -> np.ndarray:
        """All keys stored in the node and its descendants, sorted."""
        ...

    def cost_delta(self, handle: Any, smoothing: SmoothingResult) -> float:
        """Modelled cost change of rebuilding this subtree (Section 5.1).

        Negative = improvement.  LIPP/SALI adapters return the loss
        change; the ALEX adapter prices Eq. 22.
        """
        ...

    def rebuild(self, handle: Any, smoothing: SmoothingResult) -> int:
        """Replace the subtree with a merged node; return promoted keys."""
        ...


@dataclass(frozen=True)
class CsvConfig:
    """Tuning knobs of Algorithm 2.

    Attributes:
        alpha: smoothing threshold passed to Algorithm 1 (default 0.1,
            the paper's default).
        cost_threshold: rebuild when ``cost_delta < cost_threshold``;
            the paper recommends values below 0 for ALEX-like indexes.
        start_level: level at which the bottom-up pass starts.  ``None``
            means the adapter's deepest subtree level.  The paper starts
            LIPP/SALI at level 2 (big subtrees) and ALEX at the bottom.
        stop_level: the pass handles levels strictly deeper than this;
            2 reproduces the paper ("CSV stops at the second level from
            the top"), i.e. children of the root are the last handles.
        max_subtree_keys: skip subtrees bigger than this many keys (a
            practical guard; ``None`` disables it).
        min_subtree_keys: skip trivial subtrees below this size.
    """

    alpha: float = 0.1
    cost_threshold: float = 0.0
    start_level: int | None = None
    stop_level: int = 2
    max_subtree_keys: int | None = None
    min_subtree_keys: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise SmoothingBudgetError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.stop_level < 1:
            raise SmoothingBudgetError("stop_level must be >= 1")


@dataclass(frozen=True)
class CsvNodeRecord:
    """Audit record for one subtree CSV examined."""

    level: int
    n_keys: int
    loss_before: float
    loss_after: float
    n_virtual: int
    cost_delta: float
    rebuilt: bool
    promoted_keys: int


@dataclass
class CsvReport:
    """Outcome of one :func:`apply_csv` run."""

    config: CsvConfig
    records: list[CsvNodeRecord] = field(default_factory=list)
    preprocessing_seconds: float = 0.0

    @property
    def nodes_examined(self) -> int:
        return len(self.records)

    @property
    def nodes_rebuilt(self) -> int:
        return sum(1 for r in self.records if r.rebuilt)

    @property
    def keys_promoted(self) -> int:
        return sum(r.promoted_keys for r in self.records if r.rebuilt)

    @property
    def virtual_points_inserted(self) -> int:
        return sum(r.n_virtual for r in self.records if r.rebuilt)

    def summary(self) -> dict[str, float]:
        """Headline numbers for reporting tables."""
        return {
            "nodes_examined": self.nodes_examined,
            "nodes_rebuilt": self.nodes_rebuilt,
            "keys_promoted": self.keys_promoted,
            "virtual_points": self.virtual_points_inserted,
            "preprocessing_seconds": self.preprocessing_seconds,
        }


def apply_csv(adapter: CsvAdapter, config: CsvConfig | None = None) -> CsvReport:
    """Algorithm 2: optimise a built index by bottom-up CDF smoothing.

    Walks levels from ``config.start_level`` (default: the deepest
    subtree level) up to, and including, ``config.stop_level``.  At
    each level every subtree-rooting node is smoothed and, when the
    cost condition passes, rebuilt in place via the adapter.

    Returns a :class:`CsvReport` with one record per node examined.
    """
    cfg = config or CsvConfig()
    report = CsvReport(config=cfg)
    start_time = time.perf_counter()
    deepest = adapter.max_level()
    current_level = deepest if cfg.start_level is None else min(cfg.start_level, deepest)
    while current_level >= cfg.stop_level:
        handles = list(adapter.subtree_handles(current_level))
        for handle in handles:
            keys = adapter.collect_keys(handle)
            if keys.size < cfg.min_subtree_keys:
                continue
            if cfg.max_subtree_keys is not None and keys.size > cfg.max_subtree_keys:
                continue
            smoothing = smooth_keys(keys, alpha=cfg.alpha)
            delta = adapter.cost_delta(handle, smoothing)
            rebuilt = delta < cfg.cost_threshold
            promoted = 0
            if rebuilt:
                promoted = adapter.rebuild(handle, smoothing)
            report.records.append(
                CsvNodeRecord(
                    level=current_level,
                    n_keys=int(keys.size),
                    loss_before=smoothing.original_loss,
                    loss_after=smoothing.final_loss,
                    n_virtual=smoothing.n_virtual,
                    cost_delta=float(delta),
                    rebuilt=rebuilt,
                    promoted_keys=int(promoted),
                )
            )
        current_level -= 1
    report.preprocessing_seconds = time.perf_counter() - start_time
    return report
