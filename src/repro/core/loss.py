"""Loss functions (Eq. 1 / Eq. 2) and exact reference implementations.

The fast path of the library lives in
:mod:`repro.core.segment_stats`; this module provides the *direct*
definitions from the paper, used both as the public API for computing
losses of arbitrary models and as oracles for the property-based tests:

* :func:`sse_loss` — Eq. 1, the sum of squared errors of an indexing
  function over a key list.
* :func:`fit_and_loss` — the refitted loss ``min_{w,b} L(K)`` that
  Eq. 4 optimises.
* :func:`hierarchy_loss` — Eq. 2, the total loss over a partition of
  the key space into per-function segments.
* :func:`exact_refit_loss` — an arbitrary-precision
  :class:`fractions.Fraction` computation of the refitted loss, immune
  to floating-point error.  Slow; test/verification use only.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from .exceptions import InvalidKeysError
from .linear_model import LinearModel, QuadraticModel, fit_linear

__all__ = [
    "sse_loss",
    "fit_and_loss",
    "hierarchy_loss",
    "exact_refit_loss",
    "exact_refit_model",
]


def sse_loss(
    keys: Sequence[int] | np.ndarray,
    model: LinearModel | QuadraticModel,
    positions: Sequence[int] | np.ndarray | None = None,
) -> float:
    """Eq. 1: ``Σ (f(k_i) - rank(k_i))²`` for the given *model*.

    *positions* defaults to ranks ``0..n-1``.
    """
    k = np.asarray(keys, dtype=np.float64)
    if k.ndim != 1 or k.size == 0:
        raise InvalidKeysError("keys must be a non-empty 1-D array")
    if positions is None:
        y = np.arange(k.size, dtype=np.float64)
    else:
        y = np.asarray(positions, dtype=np.float64)
        if y.shape != k.shape:
            raise InvalidKeysError("keys and positions must have equal length")
    err = model.predict_array(k) - y
    return float(np.dot(err, err))


def fit_and_loss(
    keys: Sequence[int] | np.ndarray,
    positions: Sequence[int] | np.ndarray | None = None,
) -> tuple[LinearModel, float]:
    """Refit a linear model and return ``(model, loss)`` (Eq. 4 inner step)."""
    model = fit_linear(keys, positions)
    return model, sse_loss(keys, model, positions)


def hierarchy_loss(segments: Iterable[Sequence[int] | np.ndarray]) -> float:
    """Eq. 2: total refitted SSE over a partition of the key list.

    Each element of *segments* is one ``K_i`` indexed by its own
    function ``f_i``; ranks are local to the segment, matching how
    hierarchical indexes address their per-node storage.
    """
    total = 0.0
    for segment in segments:
        __, loss = fit_and_loss(segment)
        total += loss
    return total


def _exact_fit(keys: Sequence[int], positions: Sequence[int]) -> tuple[Fraction, Fraction]:
    n = len(keys)
    if n == 0:
        raise InvalidKeysError("keys must be non-empty")
    sk = Fraction(sum(int(k) for k in keys))
    sy = Fraction(sum(int(y) for y in positions))
    skk = Fraction(sum(int(k) * int(k) for k in keys))
    sky = Fraction(sum(int(k) * int(y) for k, y in zip(keys, positions)))
    var = skk - sk * sk / n
    if var == 0:
        return Fraction(0), sy / n
    cov = sky - sk * sy / n
    w = cov / var
    b = sy / n - w * sk / n
    return w, b


def exact_refit_model(
    keys: Sequence[int],
    positions: Sequence[int] | None = None,
) -> tuple[Fraction, Fraction]:
    """Exact OLS ``(slope, intercept)`` as Fractions (test oracle)."""
    keys = [int(k) for k in keys]
    if positions is None:
        positions = list(range(len(keys)))
    return _exact_fit(keys, list(positions))


def exact_refit_loss(
    keys: Sequence[int],
    positions: Sequence[int] | None = None,
) -> Fraction:
    """Exact refitted SSE as a Fraction (test oracle for the fast path)."""
    keys = [int(k) for k in keys]
    if positions is None:
        positions = list(range(len(keys)))
    positions = [int(y) for y in positions]
    w, b = _exact_fit(keys, positions)
    total = Fraction(0)
    for k, y in zip(keys, positions):
        err = w * k + b - y
        total += err * err
    return total
