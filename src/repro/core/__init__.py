"""Core algorithms: CDF smoothing (Algorithm 1), CSV (Algorithm 2),
cost model (Eq. 22), and the related baselines/ablations."""

from .candidates import (
    all_free_values,
    derivative_curve,
    enumerate_gaps,
    filtered_candidates,
    loss_curve,
)
from .cost_model import (
    CostConstants,
    calibrate_from_samples,
    expected_search_steps,
    node_cost,
    rebuild_cost_delta,
)
from .csv_algorithm import CsvAdapter, CsvConfig, CsvNodeRecord, CsvReport, apply_csv
from .derivative import GapContext, loss_derivative
from .exceptions import (
    CalibrationError,
    IndexStateError,
    InvalidKeysError,
    KeyNotFoundError,
    ReproError,
    SmoothingBudgetError,
)
from .gap_insertion import GapInsertionLayout, build_gap_insertion
from .linear_model import LinearModel, QuadraticModel, fit_linear, fit_quadratic
from .loss import exact_refit_loss, exact_refit_model, fit_and_loss, hierarchy_loss, sse_loss
from .poisoning import PoisoningResult, poison_keys
from .quadratic_smoothing import (
    QuadraticSmoothingResult,
    quadratic_fit_and_loss,
    smooth_keys_quadratic,
)
from .segment_stats import CandidateEvaluation, SegmentStats, validate_keys
from .weighted_smoothing import (
    WeightedSmoothingResult,
    smooth_keys_weighted,
    weighted_loss,
)
from .smoothing import (
    SmoothingResult,
    resolve_budget,
    smooth_keys,
    smooth_keys_exhaustive,
    smooth_keys_fixed_model,
)

__all__ = [
    "CalibrationError",
    "CandidateEvaluation",
    "CostConstants",
    "CsvAdapter",
    "CsvConfig",
    "CsvNodeRecord",
    "CsvReport",
    "GapContext",
    "GapInsertionLayout",
    "IndexStateError",
    "InvalidKeysError",
    "KeyNotFoundError",
    "LinearModel",
    "PoisoningResult",
    "QuadraticModel",
    "QuadraticSmoothingResult",
    "ReproError",
    "SegmentStats",
    "SmoothingBudgetError",
    "SmoothingResult",
    "WeightedSmoothingResult",
    "all_free_values",
    "apply_csv",
    "build_gap_insertion",
    "calibrate_from_samples",
    "derivative_curve",
    "enumerate_gaps",
    "exact_refit_loss",
    "exact_refit_model",
    "expected_search_steps",
    "filtered_candidates",
    "fit_and_loss",
    "fit_linear",
    "fit_quadratic",
    "hierarchy_loss",
    "loss_curve",
    "loss_derivative",
    "node_cost",
    "poison_keys",
    "quadratic_fit_and_loss",
    "rebuild_cost_delta",
    "resolve_budget",
    "smooth_keys",
    "smooth_keys_exhaustive",
    "smooth_keys_fixed_model",
    "smooth_keys_quadratic",
    "smooth_keys_weighted",
    "sse_loss",
    "validate_keys",
    "weighted_loss",
]
