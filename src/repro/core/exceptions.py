"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidKeysError(ReproError, ValueError):
    """Raised when a key array violates a precondition.

    Key arrays passed to smoothing and index construction must be
    one-dimensional, sorted in ascending order, and free of duplicates
    (LIPP and SALI do not support duplicate keys; see Section 6.1 of the
    paper).
    """


class SmoothingBudgetError(ReproError, ValueError):
    """Raised when a smoothing threshold or budget is out of range.

    The paper constrains the smoothing threshold ``alpha`` to (0, 1) so
    that the space overhead stays linear (Section 3).
    """


class IndexStateError(ReproError, RuntimeError):
    """Raised when an index is used before it is built, or rebuilt
    inconsistently (e.g. CSV rebuilding a node that no longer exists)."""


class KeyNotFoundError(ReproError, KeyError):
    """Raised by strict lookup APIs when a key is absent from an index."""


class CalibrationError(ReproError, RuntimeError):
    """Raised when cost-model calibration cannot produce usable constants
    (e.g. an empty query sample)."""
