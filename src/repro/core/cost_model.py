"""Cost model for CSV reconstruction decisions (Section 5.1, Eq. 22).

A CSV rebuild trades *traversal time* (fewer levels) against *leaf-node
search time* (bigger nodes → longer in-node searches, for indexes that
search).  Eq. 22 prices a node's expected query time as::

    cost = search_constant · expected_number_of_searches
         + traversal_constant · index_level

Reconstruction goes ahead only when ``cost_after - cost_before`` falls
below a threshold ``c`` (the paper recommends ``c < 0`` so that only
genuine improvements trigger a rebuild).

To stay hardware independent, the constants can be *calibrated* from a
sample of timed queries (the paper measures per-level traversal time
and per-step search time the same way); deterministic defaults in
"simulated nanoseconds" are provided so experiments are reproducible.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from .exceptions import CalibrationError

__all__ = [
    "CostConstants",
    "expected_search_steps",
    "node_cost",
    "rebuild_cost_delta",
    "calibrate_from_samples",
]


@dataclass(frozen=True)
class CostConstants:
    """Latency constants in (simulated) nanoseconds.

    Defaults approximate an in-memory learned index on commodity
    hardware: one pointer chase + model evaluation per level, one
    cache-resident comparison per search step, and a fixed overhead.
    Absolute values do not matter for the paper's relative metrics;
    only their ratio shapes the trade-off.
    """

    traversal_ns: float = 40.0
    search_ns: float = 12.0
    base_ns: float = 20.0

    def query_ns(self, levels: int, search_steps: int) -> float:
        """Simulated latency of one query given its traversal stats."""
        return self.base_ns + self.traversal_ns * levels + self.search_ns * search_steps

    def query_ns_batch(self, levels, search_steps):
        """Vectorised :meth:`query_ns` over parallel stat arrays.

        Accepts numpy arrays (or anything broadcastable) and returns a
        float64 array — the kernel behind
        :meth:`repro.indexes.base.BatchQueryStats.simulated_ns`.
        """
        import numpy as np

        return (
            self.base_ns
            + self.traversal_ns * np.asarray(levels, dtype=np.float64)
            + self.search_ns * np.asarray(search_steps, dtype=np.float64)
        )


def expected_search_steps(loss: float, n_keys: int) -> float:
    """Expected exponential-search iterations from a node's SSE.

    ALEX estimates in-node search cost from the log2 of the model
    error; with SSE ``L`` over ``n`` keys the RMS prediction error is
    ``sqrt(L / n)`` and an exponential search centred on the prediction
    inspects about ``log2(err + 1) + 1`` probe pairs.
    """
    if n_keys <= 0:
        return 0.0
    rms_error = math.sqrt(max(loss, 0.0) / n_keys)
    return math.log2(rms_error + 1.0) + 1.0


def node_cost(
    expected_searches: float,
    index_level: int,
    constants: CostConstants | None = None,
) -> float:
    """Eq. 22: the modelled query cost of a node at *index_level*."""
    consts = constants or CostConstants()
    return consts.search_ns * expected_searches + consts.traversal_ns * index_level


def rebuild_cost_delta(
    loss_before: float,
    n_before: int,
    avg_level_before: float,
    loss_after: float,
    n_after: int,
    level_after: int,
    constants: CostConstants | None = None,
) -> float:
    """Cost change of merging a subtree into one node (ALEX condition).

    ``before`` describes the subtree as currently laid out (its average
    key level and aggregate model loss), ``after`` the single merged
    node CSV would build.  Negative means the rebuild is expected to
    make queries faster; CSV rebuilds when the delta is below the
    user's threshold ``c``.
    """
    consts = constants or CostConstants()
    before = node_cost(expected_search_steps(loss_before, n_before), 1, consts)
    before += consts.traversal_ns * max(avg_level_before - 1.0, 0.0)
    after = node_cost(expected_search_steps(loss_after, n_after), 1, consts)
    # The merged node sits at `level_after`; extra levels are gone.
    return after - before


def calibrate_from_samples(
    timed_queries: Sequence[tuple[int, int, float]],
) -> CostConstants:
    """Least-squares fit of the cost constants from measured queries.

    *timed_queries* contains ``(levels, search_steps, elapsed_ns)``
    triples, e.g. from timing a sample of lookups on the target
    machine.  Solves ``elapsed ≈ base + traversal·levels +
    search·steps`` and clamps the constants to non-negative values.
    """
    if len(timed_queries) < 3:
        raise CalibrationError("need at least 3 timed queries to calibrate")
    import numpy as np

    rows = np.asarray(timed_queries, dtype=np.float64)
    design = np.column_stack([np.ones(rows.shape[0]), rows[:, 0], rows[:, 1]])
    coeffs, *_ = np.linalg.lstsq(design, rows[:, 2], rcond=None)
    base, traversal, search = (max(float(c), 0.0) for c in coeffs)
    if traversal == 0.0 and search == 0.0:
        raise CalibrationError("calibration produced degenerate constants")
    return CostConstants(traversal_ns=traversal, search_ns=search, base_ns=base)


def time_queries(
    lookup: Callable[[int], object],
    keys: Sequence[int],
    stats_of: Callable[[int], tuple[int, int]],
) -> list[tuple[int, int, float]]:
    """Time *lookup* over *keys*, pairing wall time with query stats.

    *stats_of* maps a key to its ``(levels, search_steps)``; returns the
    triples accepted by :func:`calibrate_from_samples`.
    """
    samples = []
    for key in keys:
        start = time.perf_counter_ns()
        lookup(int(key))
        elapsed = time.perf_counter_ns() - start
        levels, steps = stats_of(int(key))
        samples.append((levels, steps, float(elapsed)))
    return samples
