"""CDF smoothing with a quadratic indexing function (extension).

Section 1 of the paper notes that "CDF smoothing can naturally extend
to more complex (e.g., quadratic) functions".  This module provides
that extension: greedy virtual-point insertion where the refitted
model is ``f(k) = a·k² + b·k + c``.

The incremental machinery mirrors the linear case with two more
moments.  For the pivoted keys ``t_i = k_i - pivot`` we maintain

    S1..S4 = Σ t, Σ t², Σ t³, Σ t⁴     and    Sy, Sty, Stty

under rank shifts, solve the 3×3 weighted-normal equations per
candidate, and read the SSE in O(1).  Gaps are no longer guaranteed a
single interior stationary point in closed form, so each gap is scored
at its endpoints plus a geometric ladder of interior probes — still a
tiny candidate set per gap, preserving the spirit of the Section 4.2
filter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .linear_model import QuadraticModel
from .segment_stats import sum_of_rank_squares, sum_of_ranks, validate_keys
from .smoothing import resolve_budget

__all__ = ["QuadraticSmoothingResult", "smooth_keys_quadratic", "quadratic_fit_and_loss"]

#: Interior probes per gap (besides the two endpoints).
PROBES_PER_GAP = 3


def quadratic_fit_and_loss(
    keys: np.ndarray, ranks: np.ndarray | None = None
) -> tuple[QuadraticModel, float]:
    """Quadratic OLS fit and SSE (reference path, O(n))."""
    keys = validate_keys(keys)
    if ranks is None:
        ranks = np.arange(keys.size, dtype=np.float64)
    else:
        ranks = np.asarray(ranks, dtype=np.float64)
    pivot = int(keys[0])
    t = (keys - np.int64(pivot)).astype(np.float64)
    scale = float(t.max() - t.min()) or 1.0
    u = t / scale
    design = np.column_stack([u * u, u, np.ones_like(u)])
    coeffs, *__ = np.linalg.lstsq(design, ranks, rcond=None)
    a_u, b_u, c_u = (float(c) for c in coeffs)
    model = QuadraticModel(a_u / (scale * scale), b_u / scale, c_u, pivot)
    err = model.predict_array(keys) - ranks
    return model, float(np.dot(err, err))


class _QuadState:
    """Moment sums for O(1) quadratic refits under point insertion."""

    def __init__(self, keys: np.ndarray):
        self.points = keys.copy()
        self.pivot = int(keys[0])
        self._refresh()

    def _refresh(self) -> None:
        t = (self.points - np.int64(self.pivot)).astype(np.float64)
        self.scale = float(t.max() - t.min()) or 1.0
        u = t / self.scale
        y = np.arange(u.size, dtype=np.float64)
        self.u = u
        self.s1 = float(u.sum())
        self.s2 = float(np.dot(u, u))
        u2 = u * u
        self.s3 = float(np.dot(u2, u))
        self.s4 = float(np.dot(u2, u2))
        self.sy = float(y.sum())
        self.suy = float(np.dot(u, y))
        self.su2y = float(np.dot(u2, y))
        # prefix sums for suffix queries under a rank shift
        self.prefix_u = np.cumsum(u)
        self.prefix_u2 = np.cumsum(u2)

    @property
    def n(self) -> int:
        return int(self.points.size)

    def _suffix(self, prefix: np.ndarray, rank: int) -> float:
        total = float(prefix[-1])
        if rank <= 0:
            return total
        if rank >= self.n:
            return 0.0
        return total - float(prefix[rank - 1])

    def candidate_loss(self, value: int, rank: int) -> float:
        """SSE of the quadratic refit if (value, rank) were inserted."""
        n = self.n
        big_n = n + 1
        uv = (float(value - self.pivot)) / self.scale
        s1 = self.s1 + uv
        s2 = self.s2 + uv * uv
        s3 = self.s3 + uv**3
        s4 = self.s4 + uv**4
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        suy = self.suy + self._suffix(self.prefix_u, rank) + uv * rank
        su2y = self.su2y + self._suffix(self.prefix_u2, rank) + uv * uv * rank
        # Normal equations for [a, b, c] over (u², u, 1).
        gram = np.array(
            [[s4, s3, s2], [s3, s2, s1], [s2, s1, float(big_n)]], dtype=np.float64
        )
        rhs = np.array([su2y, suy, sy], dtype=np.float64)
        try:
            coeffs = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            return float("inf")
        a, b, c = (float(x) for x in coeffs)
        # SSE = Σy² - 2·coeffᵀrhs + coeffᵀ G coeff  (quadratic form)
        sse = syy - 2.0 * float(np.dot(coeffs, rhs)) + float(
            coeffs @ gram @ coeffs
        )
        return max(sse, 0.0)

    def best_candidate(self) -> tuple[int, float] | None:
        lows = self.points[:-1] + 1
        highs = self.points[1:] - 1
        open_gaps = np.nonzero(highs >= lows)[0]
        if open_gaps.size == 0:
            return None
        best_value = None
        best_loss = float("inf")
        for i in open_gaps.tolist():
            low = int(lows[i])
            high = int(highs[i])
            rank = i + 1
            probes = {low, high}
            span = high - low
            for j in range(1, PROBES_PER_GAP + 1):
                probes.add(low + span * j // (PROBES_PER_GAP + 1))
            for value in probes:
                loss = self.candidate_loss(value, rank)
                if loss < best_loss:
                    best_loss = loss
                    best_value = value
        if best_value is None:
            return None
        return best_value, best_loss

    def commit(self, value: int) -> None:
        rank = int(np.searchsorted(self.points, value))
        self.points = np.insert(self.points, rank, value)
        self._refresh()


@dataclass
class QuadraticSmoothingResult:
    """Outcome of a quadratic smoothing run."""

    original_keys: np.ndarray
    virtual_points: list[int]
    points: np.ndarray
    original_loss: float
    final_loss: float
    model: QuadraticModel
    budget: int
    loss_trace: list[float] = field(default_factory=list)
    stopped_early: bool = False
    elapsed_seconds: float = 0.0

    @property
    def n_virtual(self) -> int:
        return len(self.virtual_points)

    @property
    def loss_improvement_pct(self) -> float:
        if self.original_loss == 0.0:
            return 0.0
        return 100.0 * (self.original_loss - self.final_loss) / self.original_loss


def smooth_keys_quadratic(
    keys: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
) -> QuadraticSmoothingResult:
    """Greedy CDF smoothing against a refitted quadratic model.

    On curved CDFs the quadratic starts from a much lower loss than
    the linear model, so fewer virtual points are needed; the paper's
    caveat applies — the model itself is costlier to evaluate at query
    time (compare in ``bench_ablation_quadratic.py``).
    """
    original = validate_keys(keys)
    lam = resolve_budget(original.size, alpha, budget)
    start = time.perf_counter()
    state = _QuadState(original)
    __, original_loss = quadratic_fit_and_loss(original)
    previous = original_loss
    trace = [previous]
    virtual: list[int] = []
    stopped_early = False
    while len(virtual) < lam:
        found = state.best_candidate()
        if found is None:
            stopped_early = True
            break
        value, loss = found
        if loss >= previous:
            stopped_early = True
            break
        state.commit(value)
        virtual.append(value)
        previous = loss
        trace.append(loss)
    model, final = quadratic_fit_and_loss(state.points)
    return QuadraticSmoothingResult(
        original_keys=original,
        virtual_points=virtual,
        points=state.points,
        original_loss=original_loss,
        final_loss=final,
        model=model,
        budget=lam,
        loss_trace=trace,
        stopped_early=stopped_early,
        elapsed_seconds=time.perf_counter() - start,
    )
