"""CDF smoothing with a quadratic indexing function (extension).

Section 1 of the paper notes that "CDF smoothing can naturally extend
to more complex (e.g., quadratic) functions".  This module provides
that extension: greedy virtual-point insertion where the refitted
model is ``f(k) = a·k² + b·k + c``.

The incremental machinery mirrors the linear case with two more
moments.  For the pivoted keys ``t_i = k_i - pivot`` we maintain

    S1..S4 = Σ t, Σ t², Σ t³, Σ t⁴     and    Sy, Sty, Stty

under rank shifts, solve the 3×3 weighted-normal equations per
candidate, and read the SSE in O(1).  Gaps are no longer guaranteed a
single interior stationary point in closed form, so each gap is scored
at its endpoints plus a geometric ladder of interior probes — still a
tiny candidate set per gap, preserving the spirit of the Section 4.2
filter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .linear_model import QuadraticModel
from .segment_stats import sum_of_rank_squares, sum_of_ranks, validate_keys
from .smoothing import resolve_budget

__all__ = ["QuadraticSmoothingResult", "smooth_keys_quadratic", "quadratic_fit_and_loss"]

#: Interior probes per gap (besides the two endpoints).
PROBES_PER_GAP = 3


def quadratic_fit_and_loss(
    keys: np.ndarray, ranks: np.ndarray | None = None
) -> tuple[QuadraticModel, float]:
    """Quadratic OLS fit and SSE (reference path, O(n))."""
    keys = validate_keys(keys)
    if ranks is None:
        ranks = np.arange(keys.size, dtype=np.float64)
    else:
        ranks = np.asarray(ranks, dtype=np.float64)
    pivot = int(keys[0])
    t = (keys - np.int64(pivot)).astype(np.float64)
    scale = float(t.max() - t.min()) or 1.0
    u = t / scale
    design = np.column_stack([u * u, u, np.ones_like(u)])
    coeffs, *__ = np.linalg.lstsq(design, ranks, rcond=None)
    a_u, b_u, c_u = (float(c) for c in coeffs)
    model = QuadraticModel(a_u / (scale * scale), b_u / scale, c_u, pivot)
    err = model.predict_array(keys) - ranks
    return model, float(np.dot(err, err))


class _QuadState:
    """Moment sums for O(1) quadratic refits under point insertion.

    Mirrors the incremental design of
    :class:`~repro.core.segment_stats.SegmentStats`: points and the two
    prefix arrays live in amortised capacity-doubling buffers, and each
    :meth:`commit` updates the moments in O(1) plus an O(shift) memmove
    — the normalisation ``scale`` is fixed by the endpoint span at
    construction, and virtual points are strictly interior, so no
    commit can ever change it.
    """

    def __init__(self, keys: np.ndarray):
        n = int(keys.size)
        self._buf = keys.copy()
        self._size = n
        self.pivot = int(keys[0])
        t = (keys - np.int64(self.pivot)).astype(np.float64)
        self.scale = float(t.max() - t.min()) or 1.0
        u = t / self.scale
        y = np.arange(n, dtype=np.float64)
        self.s1 = float(u.sum())
        self.s2 = float(np.dot(u, u))
        u2 = u * u
        self.s3 = float(np.dot(u2, u))
        self.s4 = float(np.dot(u2, u2))
        self.suy = float(np.dot(u, y))
        self.su2y = float(np.dot(u2, y))
        # prefix sums for suffix queries under a rank shift
        self._prefix_u_buf = np.empty(n, dtype=np.float64)
        np.cumsum(u, out=self._prefix_u_buf)
        self._prefix_u2_buf = np.empty(n, dtype=np.float64)
        np.cumsum(u2, out=self._prefix_u2_buf)

    @property
    def points(self) -> np.ndarray:
        return self._buf[: self._size]

    @property
    def n(self) -> int:
        return self._size

    @property
    def prefix_u(self) -> np.ndarray:
        return self._prefix_u_buf[: self._size]

    @property
    def prefix_u2(self) -> np.ndarray:
        return self._prefix_u2_buf[: self._size]

    def _suffix(self, prefix: np.ndarray, rank: int) -> float:
        total = float(prefix[self._size - 1])
        if rank <= 0:
            return total
        if rank >= self._size:
            return 0.0
        return total - float(prefix[rank - 1])

    def _suffixes(self, prefix: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`_suffix` over an array of ranks."""
        n = self._size
        total = float(prefix[n - 1])
        idx = np.clip(ranks - 1, 0, n - 1)
        return np.where(
            ranks <= 0, total, np.where(ranks >= n, 0.0, total - prefix[idx])
        )

    def candidate_loss(self, value: int, rank: int) -> float:
        """SSE of the quadratic refit if (value, rank) were inserted."""
        n = self.n
        big_n = n + 1
        uv = (float(value - self.pivot)) / self.scale
        s1 = self.s1 + uv
        s2 = self.s2 + uv * uv
        s3 = self.s3 + uv**3
        s4 = self.s4 + uv**4
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        suy = self.suy + self._suffix(self.prefix_u, rank) + uv * rank
        su2y = self.su2y + self._suffix(self.prefix_u2, rank) + uv * uv * rank
        # Normal equations for [a, b, c] over (u², u, 1).
        gram = np.array(
            [[s4, s3, s2], [s3, s2, s1], [s2, s1, float(big_n)]], dtype=np.float64
        )
        rhs = np.array([su2y, suy, sy], dtype=np.float64)
        try:
            coeffs = np.linalg.solve(gram, rhs)
        except np.linalg.LinAlgError:
            return float("inf")
        a, b, c = (float(x) for x in coeffs)
        # SSE = Σy² - 2·coeffᵀrhs + coeffᵀ G coeff  (quadratic form)
        sse = syy - 2.0 * float(np.dot(coeffs, rhs)) + float(
            coeffs @ gram @ coeffs
        )
        return max(sse, 0.0)

    def best_candidate(self) -> tuple[int, float] | None:
        """Vectorised global best ``(value, loss)`` over every gap.

        Every gap contributes its endpoints plus a geometric ladder of
        interior probes; all candidates are scored in one batch — the
        3×3 normal equations become an ``(N, 3, 3)`` stacked solve.
        Falls back to the scalar path if the batched solve hits a
        singular system (the scalar path prices those as ``inf``).

        Ties resolve to the earliest gap (like the scalar loop) and,
        within a gap, to the fixed candidate order low → high →
        interior ladder (the scalar loop's ``set`` iteration order was
        arbitrary there; equal-loss candidates are interchangeable).
        """
        points = self.points
        lows = points[:-1] + 1
        highs = points[1:] - 1
        open_gaps = np.nonzero(highs >= lows)[0]
        if open_gaps.size == 0:
            return None
        lows = lows[open_gaps]
        highs = highs[open_gaps]
        ranks = open_gaps + 1
        spans = highs - lows
        # Candidate matrix: endpoints + interior ladder (dupes in tiny
        # gaps are harmless — equal values give equal losses).
        cols = [lows, highs]
        for j in range(1, PROBES_PER_GAP + 1):
            cols.append(lows + spans * j // (PROBES_PER_GAP + 1))
        values = np.concatenate(cols)
        value_ranks = np.tile(ranks, PROBES_PER_GAP + 2)
        losses = self._candidate_losses(values, value_ranks)
        if losses is None:
            # Singular batch: score candidates one by one (rare).
            losses = np.asarray(
                [self.candidate_loss(int(v), int(r)) for v, r in zip(values, value_ranks)]
            )
        # (candidate, gap) layout: pick the best per gap (candidate
        # order breaks within-gap ties), then the earliest best gap.
        per_gap = losses.reshape(PROBES_PER_GAP + 2, open_gaps.size)
        value_matrix = values.reshape(PROBES_PER_GAP + 2, open_gaps.size)
        cand_pick = np.argmin(per_gap, axis=0)
        gap_cols = np.arange(open_gaps.size)
        gap_losses = per_gap[cand_pick, gap_cols]
        best_gap = int(np.argmin(gap_losses))
        return (
            int(value_matrix[cand_pick[best_gap], best_gap]),
            float(gap_losses[best_gap]),
        )

    def _candidate_losses(self, values: np.ndarray, ranks: np.ndarray) -> np.ndarray | None:
        """Batched :meth:`candidate_loss`; None if any system is singular."""
        n = self._size
        big_n = n + 1
        uv = (values - np.int64(self.pivot)).astype(np.float64) / self.scale
        uv2 = uv * uv
        s1 = self.s1 + uv
        s2 = self.s2 + uv2
        s3 = self.s3 + uv2 * uv
        s4 = self.s4 + uv2 * uv2
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        suy = self.suy + self._suffixes(self.prefix_u, ranks) + uv * ranks
        su2y = self.su2y + self._suffixes(self.prefix_u2, ranks) + uv2 * ranks
        m = values.size
        gram = np.empty((m, 3, 3), dtype=np.float64)
        gram[:, 0, 0] = s4
        gram[:, 0, 1] = gram[:, 1, 0] = s3
        gram[:, 0, 2] = gram[:, 2, 0] = gram[:, 1, 1] = s2
        gram[:, 1, 2] = gram[:, 2, 1] = s1
        gram[:, 2, 2] = float(big_n)
        rhs = np.stack([su2y, suy, np.full(m, sy)], axis=1)
        try:
            # trailing singleton axis: one RHS vector per stacked system
            coeffs = np.linalg.solve(gram, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            return None
        # SSE = Σy² - 2·coeffᵀrhs + coeffᵀ G coeff  (quadratic form)
        sse = (
            syy
            - 2.0 * np.einsum("ij,ij->i", coeffs, rhs)
            + np.einsum("ij,ijk,ik->i", coeffs, gram, coeffs)
        )
        return np.maximum(sse, 0.0)

    def commit(self, value: int) -> None:
        """Insert *value*: O(1) moment updates + O(shift) memmoves."""
        value = int(value)
        rank = int(np.searchsorted(self.points, value))
        n = self._size
        if n + 1 > self._buf.size:
            new_cap = max(2 * self._buf.size, n + 1)
            for name in ("_buf", "_prefix_u_buf", "_prefix_u2_buf"):
                old = getattr(self, name)
                grown = np.empty(new_cap, dtype=old.dtype)
                grown[:n] = old[:n]
                setattr(self, name, grown)
        uv = float(value - self.pivot) / self.scale
        uv2 = uv * uv
        self.suy += self._suffix(self.prefix_u, rank) + uv * rank
        self.su2y += self._suffix(self.prefix_u2, rank) + uv2 * rank
        self.s1 += uv
        self.s2 += uv2
        self.s3 += uv2 * uv
        self.s4 += uv2 * uv2
        self._buf[rank + 1 : n + 1] = self._buf[rank:n]
        self._buf[rank] = value
        for buf, delta in ((self._prefix_u_buf, uv), (self._prefix_u2_buf, uv2)):
            prev = float(buf[rank - 1]) if rank > 0 else 0.0
            buf[rank + 1 : n + 1] = buf[rank:n] + delta
            buf[rank] = prev + delta
        self._size = n + 1


@dataclass
class QuadraticSmoothingResult:
    """Outcome of a quadratic smoothing run."""

    original_keys: np.ndarray
    virtual_points: list[int]
    points: np.ndarray
    original_loss: float
    final_loss: float
    model: QuadraticModel
    budget: int
    loss_trace: list[float] = field(default_factory=list)
    stopped_early: bool = False
    elapsed_seconds: float = 0.0

    @property
    def n_virtual(self) -> int:
        return len(self.virtual_points)

    @property
    def loss_improvement_pct(self) -> float:
        if self.original_loss == 0.0:
            return 0.0
        return 100.0 * (self.original_loss - self.final_loss) / self.original_loss


def smooth_keys_quadratic(
    keys: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
) -> QuadraticSmoothingResult:
    """Greedy CDF smoothing against a refitted quadratic model.

    On curved CDFs the quadratic starts from a much lower loss than
    the linear model, so fewer virtual points are needed; the paper's
    caveat applies — the model itself is costlier to evaluate at query
    time (compare in ``bench_ablation_quadratic.py``).
    """
    original = validate_keys(keys)
    lam = resolve_budget(original.size, alpha, budget)
    start = time.perf_counter()
    state = _QuadState(original)
    __, original_loss = quadratic_fit_and_loss(original)
    previous = original_loss
    trace = [previous]
    virtual: list[int] = []
    stopped_early = False
    while len(virtual) < lam:
        found = state.best_candidate()
        if found is None:
            stopped_early = True
            break
        value, loss = found
        if loss >= previous:
            stopped_early = True
            break
        state.commit(value)
        virtual.append(value)
        previous = loss
        trace.append(loss)
    model, final = quadratic_fit_and_loss(state.points)
    return QuadraticSmoothingResult(
        original_keys=original,
        virtual_points=virtual,
        points=state.points.copy(),
        original_loss=original_loss,
        final_loss=final,
        model=model,
        budget=lam,
        loss_trace=trace,
        stopped_early=stopped_early,
        elapsed_seconds=time.perf_counter() - start,
    )
