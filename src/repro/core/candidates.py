"""Candidate virtual-point enumeration and filtering (Section 4.2).

Candidates are integer values strictly inside ``(min K, max K)`` that
do not collide with an existing point:

* values below ``min K`` shift every rank uniformly and cannot improve
  the fit;
* values above ``max K`` change no rank at all;
* existing key values are skipped for compatibility with indexes that
  reject duplicates (LIPP, SALI).

Maximal runs of free integers between two adjacent points form the
paper's *sub-sequences*.  :func:`enumerate_gaps` yields one
:class:`~repro.core.derivative.GapContext` per sub-sequence and
:func:`filtered_candidates` applies the derivative-based filter of
Algorithm 1 to produce the (much smaller) candidate set.  A vectorised
variant used by the greedy smoother lives in
:mod:`repro.core.smoothing`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .derivative import GapContext
from .segment_stats import SegmentStats

__all__ = [
    "enumerate_gaps",
    "filtered_candidates",
    "all_free_values",
    "loss_curve",
    "derivative_curve",
]


def enumerate_gaps(stats: SegmentStats) -> Iterator[GapContext]:
    """Yield a :class:`GapContext` for every non-empty sub-sequence.

    The gap between adjacent points ``p_i < p_{i+1}`` is non-empty when
    ``p_{i+1} - p_i >= 2``; its free values are ``p_i+1 .. p_{i+1}-1``
    and every one of them has insertion rank ``i + 1``.
    """
    points = stats.points
    for i in range(points.size - 1):
        low = int(points[i]) + 1
        high = int(points[i + 1]) - 1
        if high >= low:
            yield GapContext.from_stats(stats, low, high, i + 1)


def filtered_candidates(stats: SegmentStats) -> list[tuple[int, float]]:
    """Derivative-filtered ``(value, loss)`` candidates over all gaps.

    This is the scalar reference implementation of the filtering in
    Algorithm 1 (Lines 6-22); the greedy loop uses the vectorised
    equivalent.  Candidates are unique and sorted by value.
    """
    out: dict[int, float] = {}
    for gap in enumerate_gaps(stats):
        for value in gap.candidate_values():
            if value not in out:
                out[value] = gap.loss(value)
    return sorted(out.items())


def all_free_values(stats: SegmentStats) -> np.ndarray:
    """Every admissible candidate value (no filtering).

    Used by the exhaustive solver (Table 2) and the filtering ablation.
    The result can be large: it has ``max K - min K + 1 - n`` entries.
    """
    lo = stats.key_min
    hi = stats.key_max
    universe = np.arange(lo + 1, hi, dtype=np.int64)
    mask = np.ones(universe.size, dtype=bool)
    inner = stats.points[(stats.points > lo) & (stats.points < hi)]
    mask[inner - (lo + 1)] = False
    return universe[mask]


def loss_curve(stats: SegmentStats) -> tuple[np.ndarray, np.ndarray]:
    """``(values, losses)`` over every free value — reproduces Fig. 3.

    Each point of the curve is the refitted SSE if a single virtual
    point took that value; gaps in the curve at existing keys appear as
    discontinuities in the value axis.
    """
    values = all_free_values(stats)
    ranks = np.searchsorted(stats.points, values, side="left")
    losses = stats.evaluate_many(values, ranks)
    return values, losses


def derivative_curve(stats: SegmentStats) -> tuple[np.ndarray, np.ndarray]:
    """``(values, dL/dvalue)`` over every free value — reproduces Fig. 4."""
    values: list[int] = []
    derivs: list[float] = []
    for gap in enumerate_gaps(stats):
        for value in range(gap.low, gap.high + 1):
            values.append(value)
            derivs.append(gap.derivative(value))
    return np.asarray(values, dtype=np.int64), np.asarray(derivs, dtype=np.float64)
