"""Sufficient statistics for O(1) candidate-loss evaluation.

This module implements the "efficient loss calculation" of Section 4.1
of the paper.  The paper's Eqs. 5-16 separate the loss terms that
depend only on the original key set from the terms contributed by a
candidate virtual point, so that, after an O(n) precomputation, the
refitted-model loss ``L(K ∪ {k_v})`` costs O(1) per candidate.

We realise the same separation with ordinary-least-squares sufficient
statistics.  For a sorted key list ``K`` with ranks ``0..n-1`` define

    Sk  = Σ k_i        Skk = Σ k_i²       Sky = Σ k_i · rank(k_i)

Inserting a virtual point with value ``k_v`` and insertion rank ``y_v``
(the number of keys smaller than ``k_v``) shifts the rank of every key
with rank ≥ y_v up by one.  The combined statistics become

    Sk'  = Sk + k_v
    Skk' = Skk + k_v²
    Sky' = Sky + suffix_key_sum(y_v) + k_v · y_v
    Sy'  = 0 + 1 + ... + n           (independent of y_v!)
    Syy' = 0² + 1² + ... + n²        (independent of y_v!)

where ``suffix_key_sum(y_v) = Σ_{rank ≥ y_v} k_i`` comes from a prefix
sum precomputed once per committed state.  With those statistics the
OLS refit (Eqs. 6-7 / 15-16) and the refitted SSE are closed-form:

    cov = Sky' - Sk'·Sy'/N      var = Skk' - Sk'²/N
    w = cov / var               b = Sy'/N - w·Sk'/N
    SSE = (Syy' - Sy'²/N) - cov²/var

All key sums are computed over *centered* keys (``k - ref``) so that
64-bit key magnitudes do not lose the covariance to floating-point
cancellation.  :mod:`repro.core.loss` provides an exact Fraction-based
reference used by the property tests to validate this fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import InvalidKeysError
from .linear_model import LinearModel

__all__ = ["CandidateEvaluation", "SegmentStats", "validate_keys"]


def validate_keys(keys: np.ndarray | list) -> np.ndarray:
    """Validate and normalise a key array.

    Returns a 1-D ``int64`` numpy array.  Raises
    :class:`~repro.core.exceptions.InvalidKeysError` if the input is
    empty, not one-dimensional, unsorted, or contains duplicates.
    """
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise InvalidKeysError("keys must be one-dimensional")
    if arr.size == 0:
        raise InvalidKeysError("keys must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        as_int = arr.astype(np.int64)
        if not np.array_equal(as_int.astype(arr.dtype), arr):
            raise InvalidKeysError("keys must be integer-valued")
        arr = as_int
    else:
        arr = arr.astype(np.int64)
    if arr.size > 1:
        diffs = np.diff(arr)
        if np.any(diffs < 0):
            raise InvalidKeysError("keys must be sorted ascending")
        if np.any(diffs == 0):
            raise InvalidKeysError("keys must not contain duplicates")
    return arr


def sum_of_ranks(count: int) -> float:
    """Σ of ranks ``0..count-1`` (= Sy for *count* points)."""
    return count * (count - 1) / 2.0


def sum_of_rank_squares(count: int) -> float:
    """Σ of squared ranks ``0..count-1`` (= Syy for *count* points)."""
    return (count - 1) * count * (2 * count - 1) / 6.0


@dataclass(frozen=True)
class CandidateEvaluation:
    """Result of evaluating one candidate virtual point.

    Attributes:
        value: the candidate key value ``k_v``.
        rank: its insertion rank ``y_v`` in the current point set.
        loss: SSE of the model refitted over the combined point set
            (this is ``L_{f'}(K ∪ V)`` in the paper's notation).
        model: the refitted linear indexing function.
    """

    value: int
    rank: int
    loss: float
    model: LinearModel


class SegmentStats:
    """Sufficient statistics over a sorted point set (keys + committed
    virtual points).

    Instances are mutated only through :meth:`commit`; candidate
    evaluation is read-only and O(1).  ``points`` is the current sorted
    array of all point values, which the greedy smoother also uses to
    enumerate gaps.
    """

    __slots__ = ("points", "_ref", "_centered", "_sk", "_skk", "_sky", "_prefix")

    def __init__(self, keys: np.ndarray | list):
        points = validate_keys(keys)
        self.points = points
        self._ref = int(points[0])
        self._recompute()

    def _recompute(self) -> None:
        # Subtract the pivot in integer arithmetic BEFORE the float
        # conversion: int64 keys exceed float64's mantissa, and losing
        # the low bits here would corrupt every loss computation.
        centered = (self.points - np.int64(self._ref)).astype(np.float64)
        ranks = np.arange(centered.size, dtype=np.float64)
        self._centered = centered
        self._sk = float(centered.sum())
        self._skk = float(np.dot(centered, centered))
        self._sky = float(np.dot(centered, ranks))
        self._prefix = np.cumsum(centered)

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of points in the current set."""
        return int(self.points.size)

    @property
    def key_min(self) -> int:
        return int(self.points[0])

    @property
    def key_max(self) -> int:
        return int(self.points[-1])

    @property
    def reference(self) -> int:
        """The integer pivot subtracted from every key."""
        return self._ref

    def centered_sums(self) -> tuple[float, float, float]:
        """Return ``(Sk, Skk, Sky)`` over centered keys for the base set."""
        return self._sk, self._skk, self._sky

    def suffix_key_sum(self, rank: int) -> float:
        """Σ of centered key values with rank ≥ *rank* in the base set."""
        if rank <= 0:
            return self._sk
        if rank >= self.n:
            return 0.0
        return self._sk - float(self._prefix[rank - 1])

    def insertion_rank(self, value: int) -> int:
        """Rank a virtual point with this value would take (Eq. 9 context)."""
        return int(np.searchsorted(self.points, value, side="left"))

    def contains(self, value: int) -> bool:
        """True if *value* already exists in the point set."""
        idx = self.insertion_rank(value)
        return idx < self.n and int(self.points[idx]) == int(value)

    # ------------------------------------------------------------------
    # Base-set loss and model (no virtual point)
    # ------------------------------------------------------------------
    def base_model(self) -> LinearModel:
        """OLS fit of the current point set against its ranks."""
        n = self.n
        if n == 1:
            return LinearModel(0.0, 0.0)
        sy = sum_of_ranks(n)
        cov = self._sky - self._sk * sy / n
        var = self._skk - self._sk * self._sk / n
        if var <= 0.0:
            return LinearModel(0.0, sy / n, self._ref)
        w = cov / var
        b_centered = sy / n - w * self._sk / n
        return LinearModel(w, b_centered, self._ref)

    def base_loss(self) -> float:
        """SSE of the OLS fit over the current point set (Eq. 1)."""
        n = self.n
        if n <= 2:
            return 0.0
        sy = sum_of_ranks(n)
        syy = sum_of_rank_squares(n)
        cov = self._sky - self._sk * sy / n
        var = self._skk - self._sk * self._sk / n
        total = syy - sy * sy / n
        if var <= 0.0:
            return max(total, 0.0)
        return max(total - cov * cov / var, 0.0)

    # ------------------------------------------------------------------
    # Candidate evaluation (O(1) each)
    # ------------------------------------------------------------------
    def candidate_terms(self, rank: int) -> tuple[float, float, float, float, float, float]:
        """Gap-level constants for a candidate inserted at *rank*.

        Returns ``(c0, c1, v0, v1, v2)`` plus the total sum of squares
        ``SyyC`` such that, for a candidate with centered value ``t``:

            cov(t) = c0 + c1·t
            var(t) = v0 + v1·t + v2·t²
            SSE(t) = SyyC - cov(t)² / var(t)

        These are the separated terms of the paper's Eqs. 10-16: the
        candidate value appears only through ``t`` while every constant
        is derived from base-set statistics.
        """
        n = self.n
        big_n = n + 1
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        ybar = sy / big_n
        suffix = self.suffix_key_sum(rank)
        c0 = (self._sky + suffix) - self._sk * ybar
        c1 = rank - ybar
        v0 = self._skk - self._sk * self._sk / big_n
        v1 = -2.0 * self._sk / big_n
        v2 = 1.0 - 1.0 / big_n
        syyc = syy - sy * sy / big_n
        return c0, c1, v0, v1, v2, syyc

    def evaluate(self, value: int) -> CandidateEvaluation:
        """Loss and refitted model if *value* were inserted (Eq. 4).

        The value must not already be present.  O(log n) for the rank
        lookup, O(1) arithmetic.
        """
        value = int(value)
        rank = self.insertion_rank(value)
        if rank < self.n and int(self.points[rank]) == value:
            raise InvalidKeysError(f"candidate {value} already exists in the point set")
        t = float(value - self._ref)
        c0, c1, v0, v1, v2, syyc = self.candidate_terms(rank)
        cov = c0 + c1 * t
        var = v0 + v1 * t + v2 * t * t
        big_n = self.n + 1
        sy = sum_of_ranks(big_n)
        if var <= 0.0:
            loss = max(syyc, 0.0)
            model = LinearModel(0.0, sy / big_n, self._ref)
        else:
            loss = max(syyc - cov * cov / var, 0.0)
            w = cov / var
            b_centered = sy / big_n - w * (self._sk + t) / big_n
            model = LinearModel(w, b_centered, self._ref)
        return CandidateEvaluation(value=value, rank=rank, loss=loss, model=model)

    def evaluate_many(self, values: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Vectorised candidate losses.

        *values* and *ranks* are parallel arrays; each entry is treated
        as an independent single-point insertion into the current set.
        Returns the array of refitted SSE losses.
        """
        values_arr = np.asarray(values)
        if np.issubdtype(values_arr.dtype, np.integer):
            t = (values_arr - np.int64(self._ref)).astype(np.float64)
        else:
            t = values_arr.astype(np.float64) - float(self._ref)
        ranks = np.asarray(ranks, dtype=np.int64)
        n = self.n
        big_n = n + 1
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        ybar = sy / big_n
        # suffix sums for each rank, vectorised over the prefix array
        suffix = np.where(
            ranks <= 0,
            self._sk,
            np.where(ranks >= n, 0.0, self._sk - self._prefix[np.clip(ranks - 1, 0, n - 1)]),
        )
        cov = (self._sky + suffix - self._sk * ybar) + (ranks - ybar) * t
        var = (self._skk - self._sk * self._sk / big_n) + (-2.0 * self._sk / big_n) * t + (1.0 - 1.0 / big_n) * t * t
        syyc = syy - sy * sy / big_n
        with np.errstate(divide="ignore", invalid="ignore"):
            loss = syyc - np.where(var > 0.0, cov * cov / var, 0.0)
        return np.maximum(loss, 0.0)

    # ------------------------------------------------------------------
    # Commit (the "adjustment for multiple virtual points" of Sec. 4.1)
    # ------------------------------------------------------------------
    def commit(self, value: int) -> int:
        """Insert *value* into the point set and refresh statistics.

        Returns the rank at which the point was inserted.  O(n) for the
        array insertion and prefix-sum refresh; candidate evaluation
        afterwards treats the merged set as the new base set, exactly as
        the paper's "treat the key set with the previous virtual point
        inserted as the new original" step.
        """
        value = int(value)
        rank = self.insertion_rank(value)
        if rank < self.n and int(self.points[rank]) == value:
            raise InvalidKeysError(f"cannot commit duplicate point {value}")
        self.points = np.insert(self.points, rank, value)
        self._recompute()
        return rank
