"""Sufficient statistics for O(1) candidate-loss evaluation.

This module implements the "efficient loss calculation" of Section 4.1
of the paper.  The paper's Eqs. 5-16 separate the loss terms that
depend only on the original key set from the terms contributed by a
candidate virtual point, so that, after an O(n) precomputation, the
refitted-model loss ``L(K ∪ {k_v})`` costs O(1) per candidate.

We realise the same separation with ordinary-least-squares sufficient
statistics.  For a sorted key list ``K`` with ranks ``0..n-1`` define

    Sk  = Σ k_i        Skk = Σ k_i²       Sky = Σ k_i · rank(k_i)

Inserting a virtual point with value ``k_v`` and insertion rank ``y_v``
(the number of keys smaller than ``k_v``) shifts the rank of every key
with rank ≥ y_v up by one.  The combined statistics become

    Sk'  = Sk + k_v
    Skk' = Skk + k_v²
    Sky' = Sky + suffix_key_sum(y_v) + k_v · y_v
    Sy'  = 0 + 1 + ... + n           (independent of y_v!)
    Syy' = 0² + 1² + ... + n²        (independent of y_v!)

where ``suffix_key_sum(y_v) = Σ_{rank ≥ y_v} k_i`` comes from a prefix
sum precomputed once per committed state.  With those statistics the
OLS refit (Eqs. 6-7 / 15-16) and the refitted SSE are closed-form:

    cov = Sky' - Sk'·Sy'/N      var = Skk' - Sk'²/N
    w = cov / var               b = Sy'/N - w·Sk'/N
    SSE = (Syy' - Sy'²/N) - cov²/var

All key sums are computed over *centered* keys (``k - ref``) so that
64-bit key magnitudes do not lose the covariance to floating-point
cancellation.  :mod:`repro.core.loss` provides an exact Fraction-based
reference used by the property tests to validate this fast path.

Incremental commits
-------------------

:meth:`SegmentStats.commit` is the hot mutation of Algorithm 1 — one
call per committed virtual point.  It updates the statistics
*incrementally* instead of rebuilding them:

* the point array and the prefix-sum array live in amortised
  capacity-doubling buffers, so a commit costs one ``O(shift)``
  memmove (``shift`` = points above the insertion rank) instead of a
  fresh ``np.insert`` allocation;
* ``Sk/Skk/Sky`` are maintained as exact Python integers (centered
  keys are integers), so the incremental update after each commit is
  *bit-identical* to a from-scratch rebuild — the parity the property
  tests in ``tests/core/test_incremental_stats.py`` assert;
* the prefix array is kept in exact ``int64`` while the worst-case
  partial sum provably fits (``n · span < 2^62``); pathological spans
  degrade once to the legacy float path, which recomputes from scratch
  per commit and therefore stays trivially rebuild-identical.

Candidate evaluation reads the float mirrors of the integer sums, so
:meth:`evaluate_many` (and the vectorised
:meth:`suffix_key_sums` that backs the greedy smoother's gap scan)
remain pure float64 array kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .exceptions import InvalidKeysError
from .linear_model import LinearModel

__all__ = ["CandidateEvaluation", "SegmentStats", "validate_keys"]

#: Exact-int64 prefix sums are used while ``n_points * span`` stays
#: below this bound (headroom under the 2^63 int64 limit).
_INT64_SAFE_BOUND = 2**62


def validate_keys(keys: np.ndarray | list) -> np.ndarray:
    """Validate and normalise a key array.

    Returns a 1-D ``int64`` numpy array.  Raises
    :class:`~repro.core.exceptions.InvalidKeysError` if the input is
    empty, not one-dimensional, unsorted, or contains duplicates.
    """
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise InvalidKeysError("keys must be one-dimensional")
    if arr.size == 0:
        raise InvalidKeysError("keys must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        as_int = arr.astype(np.int64)
        if not np.array_equal(as_int.astype(arr.dtype), arr):
            raise InvalidKeysError("keys must be integer-valued")
        arr = as_int
    else:
        arr = arr.astype(np.int64)
    if arr.size > 1:
        diffs = np.diff(arr)
        if np.any(diffs < 0):
            raise InvalidKeysError("keys must be sorted ascending")
        if np.any(diffs == 0):
            raise InvalidKeysError("keys must not contain duplicates")
    return arr


def sum_of_ranks(count: int) -> float:
    """Σ of ranks ``0..count-1`` (= Sy for *count* points)."""
    return count * (count - 1) / 2.0


def sum_of_rank_squares(count: int) -> float:
    """Σ of squared ranks ``0..count-1`` (= Syy for *count* points)."""
    return (count - 1) * count * (2 * count - 1) / 6.0


@dataclass(frozen=True)
class CandidateEvaluation:
    """Result of evaluating one candidate virtual point.

    Attributes:
        value: the candidate key value ``k_v``.
        rank: its insertion rank ``y_v`` in the current point set.
        loss: SSE of the model refitted over the combined point set
            (this is ``L_{f'}(K ∪ V)`` in the paper's notation).
        model: the refitted linear indexing function.
    """

    value: int
    rank: int
    loss: float
    model: LinearModel


class SegmentStats:
    """Sufficient statistics over a sorted point set (keys + committed
    virtual points).

    Instances are mutated only through :meth:`commit`; candidate
    evaluation is read-only and O(1).  :attr:`points` is a read-only
    view of the current sorted point array, which the greedy smoother
    also uses to enumerate gaps.
    """

    __slots__ = (
        "_buf",
        "_prefix",
        "_size",
        "_ref",
        "_span",
        "_exact",
        "_sk_int",
        "_skk_int",
        "_sky_int",
        "_sk",
        "_skk",
        "_sky",
    )

    def __init__(self, keys: np.ndarray | list):
        points = validate_keys(keys)
        n = int(points.size)
        self._buf = points.copy()
        self._size = n
        self._ref = int(points[0])
        self._span = int(points[-1]) - int(points[0])
        self._exact = (n + 1) * max(self._span, 1) < _INT64_SAFE_BOUND
        if self._exact:
            self._recompute_exact()
        else:
            self._recompute_float()

    # ------------------------------------------------------------------
    # Statistic (re)computation
    # ------------------------------------------------------------------
    def _recompute_exact(self) -> None:
        """Exact integer sums + int64 prefix array (the common path).

        Centered keys are int64, so all three moments are integers; the
        guard in :meth:`commit` ensures every intermediate fits int64
        where an array is involved, while the scalar moments use Python
        arbitrary-precision integers.  The float mirrors are derived
        with exactly one rounding each, which makes incremental updates
        and from-scratch rebuilds agree bit-for-bit.
        """
        n = self._size
        centered = self._buf[:n] - np.int64(self._ref)
        span = max(self._span, 1)
        self._sk_int = int(centered.sum(dtype=np.int64))
        if span * span * n < _INT64_SAFE_BOUND:
            self._skk_int = int((centered * centered).sum(dtype=np.int64))
        else:
            self._skk_int = sum(x * x for x in centered.tolist())
        ranks = np.arange(n, dtype=np.int64)
        if span * n * n < _INT64_SAFE_BOUND:
            self._sky_int = int((centered * ranks).sum(dtype=np.int64))
        else:
            self._sky_int = sum(x * i for i, x in enumerate(centered.tolist()))
        self._prefix = np.empty(self._buf.size, dtype=np.int64)
        np.cumsum(centered, out=self._prefix[:n])
        self._sync_float_mirrors()

    def _recompute_float(self) -> None:
        """Legacy float path for pathological ``n·span`` magnitudes.

        Subtract the pivot in integer arithmetic BEFORE the float
        conversion: int64 keys exceed float64's mantissa, and losing
        the low bits here would corrupt every loss computation.
        """
        n = self._size
        centered = (self._buf[:n] - np.int64(self._ref)).astype(np.float64)
        ranks = np.arange(n, dtype=np.float64)
        self._sk_int = self._skk_int = self._sky_int = None
        self._sk = float(centered.sum())
        self._skk = float(np.dot(centered, centered))
        self._sky = float(np.dot(centered, ranks))
        self._prefix = np.empty(self._buf.size, dtype=np.float64)
        np.cumsum(centered, out=self._prefix[:n])

    def _sync_float_mirrors(self) -> None:
        self._sk = float(self._sk_int)
        self._skk = float(self._skk_int)
        self._sky = float(self._sky_int)

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The current sorted point array (a view; do not mutate)."""
        return self._buf[: self._size]

    @property
    def n(self) -> int:
        """Number of points in the current set."""
        return self._size

    @property
    def key_min(self) -> int:
        return int(self._buf[0])

    @property
    def key_max(self) -> int:
        return int(self._buf[self._size - 1])

    @property
    def reference(self) -> int:
        """The integer pivot subtracted from every key."""
        return self._ref

    def centered_sums(self) -> tuple[float, float, float]:
        """Return ``(Sk, Skk, Sky)`` over centered keys for the base set."""
        return self._sk, self._skk, self._sky

    def suffix_key_sum(self, rank: int) -> float:
        """Σ of centered key values with rank ≥ *rank* in the base set."""
        if rank <= 0:
            return self._sk
        if rank >= self._size:
            return 0.0
        if self._exact:
            return float(self._sk_int - int(self._prefix[rank - 1]))
        return self._sk - float(self._prefix[rank - 1])

    def suffix_key_sums(self, ranks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`suffix_key_sum` over an array of ranks.

        This is the kernel behind the greedy smoother's per-gap scan:
        one fancy-indexed read of the prefix array replaces a Python
        comprehension over every gap.
        """
        ranks = np.asarray(ranks, dtype=np.int64)
        n = self._size
        idx = np.clip(ranks - 1, 0, n - 1)
        if self._exact:
            inner = np.int64(self._sk_int) - self._prefix[idx]
            out = np.where(
                ranks <= 0,
                np.int64(self._sk_int),
                np.where(ranks >= n, np.int64(0), inner),
            ).astype(np.float64)
        else:
            out = np.where(
                ranks <= 0,
                self._sk,
                np.where(ranks >= n, 0.0, self._sk - self._prefix[idx]),
            )
        return out

    def insertion_rank(self, value: int) -> int:
        """Rank a virtual point with this value would take (Eq. 9 context)."""
        return int(np.searchsorted(self.points, value, side="left"))

    def contains(self, value: int) -> bool:
        """True if *value* already exists in the point set."""
        idx = self.insertion_rank(value)
        return idx < self._size and int(self._buf[idx]) == int(value)

    # ------------------------------------------------------------------
    # Base-set loss and model (no virtual point)
    # ------------------------------------------------------------------
    def base_model(self) -> LinearModel:
        """OLS fit of the current point set against its ranks."""
        n = self.n
        if n == 1:
            return LinearModel(0.0, 0.0)
        sy = sum_of_ranks(n)
        cov = self._sky - self._sk * sy / n
        var = self._skk - self._sk * self._sk / n
        if var <= 0.0:
            return LinearModel(0.0, sy / n, self._ref)
        w = cov / var
        b_centered = sy / n - w * self._sk / n
        return LinearModel(w, b_centered, self._ref)

    def base_loss(self) -> float:
        """SSE of the OLS fit over the current point set (Eq. 1)."""
        n = self.n
        if n <= 2:
            return 0.0
        sy = sum_of_ranks(n)
        syy = sum_of_rank_squares(n)
        cov = self._sky - self._sk * sy / n
        var = self._skk - self._sk * self._sk / n
        total = syy - sy * sy / n
        if var <= 0.0:
            return max(total, 0.0)
        return max(total - cov * cov / var, 0.0)

    # ------------------------------------------------------------------
    # Candidate evaluation (O(1) each)
    # ------------------------------------------------------------------
    def candidate_terms(self, rank: int) -> tuple[float, float, float, float, float, float]:
        """Gap-level constants for a candidate inserted at *rank*.

        Returns ``(c0, c1, v0, v1, v2)`` plus the total sum of squares
        ``SyyC`` such that, for a candidate with centered value ``t``:

            cov(t) = c0 + c1·t
            var(t) = v0 + v1·t + v2·t²
            SSE(t) = SyyC - cov(t)² / var(t)

        These are the separated terms of the paper's Eqs. 10-16: the
        candidate value appears only through ``t`` while every constant
        is derived from base-set statistics.
        """
        n = self.n
        big_n = n + 1
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        ybar = sy / big_n
        suffix = self.suffix_key_sum(rank)
        c0 = (self._sky + suffix) - self._sk * ybar
        c1 = rank - ybar
        v0 = self._skk - self._sk * self._sk / big_n
        v1 = -2.0 * self._sk / big_n
        v2 = 1.0 - 1.0 / big_n
        syyc = syy - sy * sy / big_n
        return c0, c1, v0, v1, v2, syyc

    def evaluate(self, value: int) -> CandidateEvaluation:
        """Loss and refitted model if *value* were inserted (Eq. 4).

        The value must not already be present.  O(log n) for the rank
        lookup, O(1) arithmetic.
        """
        value = int(value)
        rank = self.insertion_rank(value)
        if rank < self.n and int(self._buf[rank]) == value:
            raise InvalidKeysError(f"candidate {value} already exists in the point set")
        t = float(value - self._ref)
        c0, c1, v0, v1, v2, syyc = self.candidate_terms(rank)
        cov = c0 + c1 * t
        var = v0 + v1 * t + v2 * t * t
        big_n = self.n + 1
        sy = sum_of_ranks(big_n)
        if var <= 0.0:
            loss = max(syyc, 0.0)
            model = LinearModel(0.0, sy / big_n, self._ref)
        else:
            loss = max(syyc - cov * cov / var, 0.0)
            w = cov / var
            b_centered = sy / big_n - w * (self._sk + t) / big_n
            model = LinearModel(w, b_centered, self._ref)
        return CandidateEvaluation(value=value, rank=rank, loss=loss, model=model)

    def evaluate_many(self, values: np.ndarray, ranks: np.ndarray) -> np.ndarray:
        """Vectorised candidate losses.

        *values* and *ranks* are parallel arrays; each entry is treated
        as an independent single-point insertion into the current set.
        Returns the array of refitted SSE losses.
        """
        values_arr = np.asarray(values)
        if np.issubdtype(values_arr.dtype, np.integer):
            t = (values_arr - np.int64(self._ref)).astype(np.float64)
        else:
            t = values_arr.astype(np.float64) - float(self._ref)
        ranks = np.asarray(ranks, dtype=np.int64)
        n = self.n
        big_n = n + 1
        sy = sum_of_ranks(big_n)
        syy = sum_of_rank_squares(big_n)
        ybar = sy / big_n
        suffix = self.suffix_key_sums(ranks)
        cov = (self._sky + suffix - self._sk * ybar) + (ranks - ybar) * t
        var = (self._skk - self._sk * self._sk / big_n) + (-2.0 * self._sk / big_n) * t + (1.0 - 1.0 / big_n) * t * t
        syyc = syy - sy * sy / big_n
        with np.errstate(divide="ignore", invalid="ignore"):
            loss = syyc - np.where(var > 0.0, cov * cov / var, 0.0)
        return np.maximum(loss, 0.0)

    # ------------------------------------------------------------------
    # Commit (the "adjustment for multiple virtual points" of Sec. 4.1)
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        """Double the points/prefix buffers (amortised O(1) per commit)."""
        new_cap = max(2 * self._buf.size, self._size + 1)
        buf = np.empty(new_cap, dtype=np.int64)
        buf[: self._size] = self._buf[: self._size]
        self._buf = buf
        prefix = np.empty(new_cap, dtype=self._prefix.dtype)
        prefix[: self._size] = self._prefix[: self._size]
        self._prefix = prefix

    def commit(self, value: int) -> int:
        """Insert *value* into the point set and refresh statistics.

        Returns the rank at which the point was inserted.  On the exact
        path this is O(log n) for the rank lookup plus O(shift) for the
        buffer memmoves (shift = points above the insertion rank); the
        moment updates themselves are O(1).  Candidate evaluation
        afterwards treats the merged set as the new base set, exactly as
        the paper's "treat the key set with the previous virtual point
        inserted as the new original" step.
        """
        value = int(value)
        rank = self.insertion_rank(value)
        n = self._size
        if rank < n and int(self._buf[rank]) == value:
            raise InvalidKeysError(f"cannot commit duplicate point {value}")
        if n + 1 > self._buf.size:
            self._grow()
        # Shift the tail right by one (numpy handles the overlap).
        self._buf[rank + 1 : n + 1] = self._buf[rank:n]
        self._buf[rank] = value
        self._size = n + 1
        if self._exact and (n + 2) * max(self._span, 1) < _INT64_SAFE_BOUND:
            c = value - self._ref
            prev = int(self._prefix[rank - 1]) if rank > 0 else 0
            suffix = self._sk_int - prev
            self._prefix[rank + 1 : n + 1] = self._prefix[rank:n] + np.int64(c)
            self._prefix[rank] = prev + c
            self._sk_int += c
            self._skk_int += c * c
            self._sky_int += suffix + c * rank
            self._sync_float_mirrors()
        else:
            if self._exact:
                # One-time degrade: future prefix sums could overflow
                # int64, so fall back to the float recompute path.
                self._exact = False
            self._recompute_float()
        return rank
