"""Gap Insertion (GI) baseline (Li et al. [16], discussed in Section 2.2).

GI straightens the CDF by manipulating *storage positions* instead of
the key set: each key is placed at ``round(g · f(k))`` for a fitted
model ``f`` and a gap factor ``g ≥ 1``.  Keys whose assigned positions
collide are evicted to an overflow array, which adds a search step at
query time — the drawback (and the up-to-87% space blow-up) the paper
contrasts CSV against in Table 1.

This implementation exists as a comparison baseline: it reports the
storage expansion, the conflict (overflow) rate, and per-query search
steps so the ablation bench can put CSV and GI side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .exceptions import SmoothingBudgetError
from .linear_model import LinearModel, fit_linear
from .segment_stats import validate_keys

__all__ = ["GapInsertionLayout", "build_gap_insertion"]


@dataclass
class GapInsertionLayout:
    """A gapped storage layout produced by the GI technique.

    Attributes:
        model: the indexing function addressing the gapped array.
        slots: array of length ``capacity``; ``-1`` marks an empty slot,
            other entries are key values placed at their predicted slot.
        overflow: keys evicted by position conflicts, kept sorted.
        gap_factor: the expansion factor ``g`` applied to predictions.
    """

    model: LinearModel
    slots: np.ndarray
    overflow: np.ndarray
    gap_factor: float
    _overflow_set: set[int] = field(repr=False, default_factory=set)

    def __post_init__(self) -> None:
        self._overflow_set = set(int(k) for k in self.overflow.tolist())

    @property
    def capacity(self) -> int:
        return int(self.slots.size)

    @property
    def n_keys(self) -> int:
        return int(np.count_nonzero(self.slots >= 0) + self.overflow.size)

    @property
    def storage_expansion_pct(self) -> float:
        """Extra storage relative to a dense array of the keys."""
        dense = self.n_keys
        used = self.capacity + self.overflow.size
        return 100.0 * (used - dense) / dense if dense else 0.0

    @property
    def overflow_rate_pct(self) -> float:
        """Share of keys living in the conflict overflow array."""
        return 100.0 * self.overflow.size / self.n_keys if self.n_keys else 0.0

    def lookup_steps(self, key: int) -> tuple[bool, int]:
        """``(found, search_steps)`` for *key* under this layout.

        A hit at the predicted slot costs one step.  A miss probes
        outward (the local search GI needs because neighbours shift)
        and finally binary-searches the overflow array.
        """
        key = int(key)
        predicted = self.model.predict_clamped(key, self.capacity)
        steps = 1
        if int(self.slots[predicted]) == key:
            return True, steps
        for radius in range(1, 3):
            for pos in (predicted - radius, predicted + radius):
                if 0 <= pos < self.capacity:
                    steps += 1
                    if int(self.slots[pos]) == key:
                        return True, steps
        if self.overflow.size:
            steps += int(np.ceil(np.log2(self.overflow.size + 1)))
            if key in self._overflow_set:
                return True, steps
        return False, steps


def build_gap_insertion(
    keys: np.ndarray | list,
    gap_factor: float = 1.5,
) -> GapInsertionLayout:
    """Lay out *keys* with the GI technique at the given *gap_factor*.

    The model is fitted on the original ranks (GI does not refit), its
    output scaled by ``gap_factor``, and each key placed at its rounded
    predicted slot; later keys that collide go to the overflow array.
    """
    arr = validate_keys(keys)
    if gap_factor < 1.0:
        raise SmoothingBudgetError(f"gap_factor must be >= 1, got {gap_factor}")
    base = fit_linear(arr)
    model = base.scaled(gap_factor)
    capacity = int(np.ceil(arr.size * gap_factor)) + 1
    slots = np.full(capacity, -1, dtype=np.int64)
    overflow: list[int] = []
    for key in arr.tolist():
        pos = model.predict_clamped(key, capacity)
        if slots[pos] == -1:
            slots[pos] = key
        else:
            overflow.append(int(key))
    return GapInsertionLayout(
        model=model,
        slots=slots,
        overflow=np.asarray(sorted(overflow), dtype=np.int64),
        gap_factor=gap_factor,
    )
