"""CDF smoothing for a single linear model (Section 4, Algorithm 1).

Given a sorted key list ``K`` and a smoothing budget ``λ = α·n``, insert
up to ``λ`` virtual points so that the *refitted* linear indexing
function has minimal SSE over the combined point set (Eq. 4).  The
problem is NP-hard (Lemma 3.1); this module provides:

* :func:`smooth_keys` — the paper's greedy Algorithm 1.  One virtual
  point is chosen per iteration: every sub-sequence of free values is
  reduced to at most a handful of candidates via the derivative filter
  (Section 4.2), each candidate is scored with the O(1) incremental
  loss (Section 4.1), and the global minimiser is committed.  The loop
  stops early when no candidate reduces the loss (Line 27-28).
* :func:`smooth_keys_exhaustive` — the exponential exact solver used
  for the approximation-quality study (Table 2).
* :func:`smooth_keys_fixed_model` — an ablation that inserts points to
  fit the *original* (non-refitted) function, quantifying the value of
  refitting.

The greedy inner loop is vectorised with numpy: for every gap it scores
the two endpoints plus the closed-form interior stationary point — a
superset of the candidates Algorithm 1's sign test would retain, so the
selected point is identical while the work per iteration stays O(n)
with small constants.  The per-gap suffix key sums come from
:meth:`~repro.core.segment_stats.SegmentStats.suffix_key_sums` (one
fancy-indexed read of the prefix array) and each committed point
updates the statistics incrementally, so a full run over n keys does
no per-gap Python work at all.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import get_registry
from ..obs.tracing import trace as _span
from .candidates import all_free_values
from .exceptions import SmoothingBudgetError
from .linear_model import LinearModel
from .loss import fit_and_loss
from .segment_stats import SegmentStats, sum_of_rank_squares, sum_of_ranks, validate_keys

__all__ = [
    "SmoothingResult",
    "smooth_keys",
    "smooth_keys_exhaustive",
    "smooth_keys_fixed_model",
    "resolve_budget",
]

#: Safety valve for the exhaustive solver: refuse searches beyond this
#: many subsets instead of hanging for hours.
MAX_EXHAUSTIVE_SUBSETS = 2_000_000


def resolve_budget(n: int, alpha: float | None, budget: int | None) -> int:
    """Turn ``(alpha, budget)`` into a concrete number of virtual points.

    Exactly one of *alpha* / *budget* must be given.  ``alpha`` follows
    Section 3: it must lie in ``(0, 1)`` so the space overhead stays a
    fraction of ``n``.  An explicit *budget* may be any positive count.
    """
    if (alpha is None) == (budget is None):
        raise SmoothingBudgetError("specify exactly one of alpha or budget")
    if budget is not None:
        if budget < 1:
            raise SmoothingBudgetError(f"budget must be >= 1, got {budget}")
        return int(budget)
    if not 0.0 < alpha < 1.0:
        raise SmoothingBudgetError(f"alpha must be in (0, 1), got {alpha}")
    return max(1, int(alpha * n))


@dataclass
class SmoothingResult:
    """Outcome of one smoothing run.

    Attributes:
        original_keys: the input key list (sorted, unique).
        virtual_points: inserted values, in insertion order.
        points: final combined sorted point set (keys + virtual points).
        original_loss: refitted SSE over the original keys alone.
        final_loss: refitted SSE over the combined point set
            (``L_{f'}(K ∪ V)``, the quantity in Fig. 2b / Table 2).
        model: the final refitted indexing function.
        budget: the allowed number of virtual points ``λ``.
        loss_trace: loss after each committed insertion (index 0 is the
            original loss).
        stopped_early: True when the greedy loop terminated because no
            candidate reduced the loss before the budget ran out.
        elapsed_seconds: wall time of the smoothing run.
    """

    original_keys: np.ndarray
    virtual_points: list[int]
    points: np.ndarray
    original_loss: float
    final_loss: float
    model: LinearModel
    budget: int
    loss_trace: list[float] = field(default_factory=list)
    stopped_early: bool = False
    elapsed_seconds: float = 0.0

    @property
    def n_virtual(self) -> int:
        return len(self.virtual_points)

    @property
    def loss_improvement_pct(self) -> float:
        """Percentage reduction of the loss versus the original keys."""
        if self.original_loss == 0.0:
            return 0.0
        return 100.0 * (self.original_loss - self.final_loss) / self.original_loss

    def key_ranks(self) -> np.ndarray:
        """Ranks of the *original* keys within the combined point set."""
        return np.searchsorted(self.points, self.original_keys, side="left")

    def loss_over_original_keys(self) -> float:
        """``L_{f'}(K)`` — the final model's SSE on real keys only.

        This is the optimisation target of Definition 1 (the virtual
        points themselves carry no queries); Fig. 2b reports both this
        (2.04) and the combined loss (2.29).
        """
        ranks = self.key_ranks().astype(np.float64)
        err = self.model.predict_array(self.original_keys) - ranks
        return float(np.dot(err, err))


def _best_candidate(stats: SegmentStats) -> tuple[int, float] | None:
    """Vectorised global best ``(value, loss)`` over every gap.

    Scores both endpoints of every sub-sequence plus the interior
    stationary point (where it falls strictly inside), which is a
    superset of Algorithm 1's filtered candidates; the argmin therefore
    matches the scalar implementation exactly.

    The per-gap constants ``c0, c1`` (and the scalar ``v*`` terms) of
    Eqs. 10-16 are computed once per gap from the vectorised suffix
    sums; every candidate in a gap then costs a handful of float ops on
    its centered value ``t`` — the same closed forms
    :meth:`~repro.core.segment_stats.SegmentStats.evaluate_many`
    applies, without materialising a concatenated candidate array.
    Returns ``None`` when no free value exists.
    """
    points = stats.points
    lows = points[:-1] + 1
    highs = points[1:] - 1
    gap_mask = highs >= lows
    if not np.any(gap_mask):
        return None
    lows = lows[gap_mask]
    highs = highs[gap_mask]
    ranks = np.nonzero(gap_mask)[0] + 1

    n = stats.n
    big_n = n + 1
    sy = sum_of_ranks(big_n)
    syy = sum_of_rank_squares(big_n)
    ybar = sy / big_n
    sk, skk, sky = stats.centered_sums()
    suffix = stats.suffix_key_sums(ranks)
    c0 = (sky + suffix) - sk * ybar
    c1 = ranks - ybar
    v0 = skk - sk * sk / big_n
    v1 = -2.0 * sk / big_n
    v2 = 1.0 - 1.0 / big_n
    syyc = syy - sy * sy / big_n
    ref = np.int64(stats.reference)

    def losses_at(t: np.ndarray, cc0: np.ndarray, cc1: np.ndarray) -> np.ndarray:
        cov = cc0 + cc1 * t
        var = v0 + v1 * t + v2 * t * t
        with np.errstate(divide="ignore", invalid="ignore"):
            loss = syyc - np.where(var > 0.0, cov * cov / var, 0.0)
        return np.maximum(loss, 0.0)

    # Candidate blocks, evaluated in the scalar reference's
    # concatenation order: all lows, all highs, interior floors,
    # interior ceils.  Strict `<` between blocks (and first-occurrence
    # argmin inside each) reproduces the reference argmin exactly,
    # ties included.
    blocks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = [
        (lows, c0, c1),
        (highs, c0, c1),
    ]
    denom = c1 * v1 - 2.0 * c0 * v2
    with np.errstate(divide="ignore", invalid="ignore"):
        t_star = np.where(denom != 0.0, (c0 * v1 - 2.0 * c1 * v0) / denom, np.nan)
    star = t_star + stats.reference
    interior = np.isfinite(star) & (star > lows) & (star < highs)
    if np.any(interior):
        idx = np.nonzero(interior)[0]
        lo_i = lows[idx]
        hi_i = highs[idx]
        floor_v = np.clip(np.floor(star[idx]).astype(np.int64), lo_i, hi_i)
        blocks.append((floor_v, c0[idx], c1[idx]))
        blocks.append((np.clip(floor_v + 1, lo_i, hi_i), c0[idx], c1[idx]))

    best_value: int | None = None
    best_loss = np.inf
    for values, cc0, cc1 in blocks:
        losses = losses_at((values - ref).astype(np.float64), cc0, cc1)
        pick = int(np.argmin(losses))
        if float(losses[pick]) < best_loss:
            best_loss = float(losses[pick])
            best_value = int(values[pick])

    reg = get_registry()
    if reg.enabled:
        reg.counter("smooth_gap_segments_total").inc(int(lows.size))
        reg.counter("smooth_candidate_evals_total").inc(
            sum(int(v.size) for v, __, __ in blocks)
        )
    assert best_value is not None
    return best_value, best_loss


def smooth_keys(
    keys: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
    min_gain: float = 0.0,
) -> SmoothingResult:
    """Algorithm 1: greedy CDF smoothing with up to ``λ`` virtual points.

    Args:
        keys: sorted, duplicate-free integer keys.
        alpha: smoothing threshold; ``λ = α·n`` (Section 3).
        budget: explicit ``λ``; mutually exclusive with *alpha*.
        min_gain: minimum absolute loss reduction a candidate must
            achieve to be committed (0 reproduces the paper's
            "strictly smaller" test in Line 27).

    Returns a :class:`SmoothingResult`; ``result.points`` is the
    smoothed point set whose CDF the indexing function now fits better.
    """
    original = validate_keys(keys)
    lam = resolve_budget(original.size, alpha, budget)
    start = time.perf_counter()
    reg = get_registry()
    with _span("smooth_keys", registry=reg, n=int(original.size), budget=lam):
        stats = SegmentStats(original)
        previous_loss = stats.base_loss()
        original_loss = previous_loss
        trace = [previous_loss]
        virtual: list[int] = []
        stopped_early = False
        while len(virtual) < lam:
            found = _best_candidate(stats)
            if found is None:
                stopped_early = True
                break
            value, loss = found
            if loss >= previous_loss - min_gain:
                stopped_early = True
                break
            stats.commit(value)
            virtual.append(value)
            previous_loss = loss
            trace.append(loss)
    elapsed = time.perf_counter() - start
    if reg.enabled:
        reg.counter("smooth_runs_total").inc()
        reg.counter("smooth_virtual_points_total").inc(len(virtual))
        reg.histogram("smooth_seconds").observe(elapsed)
    return SmoothingResult(
        original_keys=original,
        virtual_points=virtual,
        points=stats.points.copy(),
        original_loss=original_loss,
        final_loss=previous_loss,
        model=stats.base_model(),
        budget=lam,
        loss_trace=trace,
        stopped_early=stopped_early,
        elapsed_seconds=elapsed,
    )


def smooth_keys_exhaustive(
    keys: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
) -> SmoothingResult:
    """Exact smoothing by exhausting every size-≤λ candidate subset.

    This is the "Exhaustive" column of Table 2.  Complexity is
    ``O(C(p, λ) · n)`` over ``p`` free values; the function refuses
    instances beyond :data:`MAX_EXHAUSTIVE_SUBSETS` subsets.
    """
    original = validate_keys(keys)
    lam = resolve_budget(original.size, alpha, budget)
    stats = SegmentStats(original)
    candidates = all_free_values(stats)
    p = int(candidates.size)
    take = min(lam, p)
    total_subsets = sum(_n_choose_k(p, size) for size in range(take + 1))
    if total_subsets > MAX_EXHAUSTIVE_SUBSETS:
        raise SmoothingBudgetError(
            f"exhaustive search over {total_subsets} subsets exceeds the "
            f"{MAX_EXHAUSTIVE_SUBSETS} limit; use smooth_keys() instead"
        )
    start = time.perf_counter()
    base_model, base_loss = fit_and_loss(original)
    best_loss = base_loss
    best_subset: tuple[int, ...] = ()
    best_model = base_model
    for size in range(1, take + 1):
        for subset in itertools.combinations(candidates.tolist(), size):
            merged = np.sort(np.concatenate([original, np.asarray(subset, dtype=np.int64)]))
            model, loss = fit_and_loss(merged)
            if loss < best_loss:
                best_loss = loss
                best_subset = subset
                best_model = model
    elapsed = time.perf_counter() - start
    merged = np.sort(
        np.concatenate([original, np.asarray(best_subset, dtype=np.int64)])
    ) if best_subset else original.copy()
    return SmoothingResult(
        original_keys=original,
        virtual_points=list(best_subset),
        points=merged,
        original_loss=base_loss,
        final_loss=best_loss,
        model=best_model,
        budget=lam,
        loss_trace=[base_loss, best_loss],
        stopped_early=False,
        elapsed_seconds=elapsed,
    )


def smooth_keys_fixed_model(
    keys: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
) -> SmoothingResult:
    """Ablation: smooth toward the *original* model without refitting.

    Eq. 4's refitting is the paper's key deviation from the naive
    "spread ranks to match f" scheme; this variant omits it so the
    ablation bench can quantify the difference.  Each iteration commits
    the free value whose insertion most reduces the SSE measured
    against the fixed original function.
    """
    original = validate_keys(keys)
    lam = resolve_budget(original.size, alpha, budget)
    start = time.perf_counter()
    model, original_loss = fit_and_loss(original)
    points = original.astype(np.int64)
    virtual: list[int] = []
    previous_loss = original_loss
    stopped_early = False
    while len(virtual) < lam:
        best_value = None
        best_loss = previous_loss
        lows = points[:-1] + 1
        highs = points[1:] - 1
        for i in np.nonzero(highs >= lows)[0]:
            rank = i + 1
            # With f fixed, the loss within a gap is quadratic in the
            # candidate value with minimum at f^{-1}(rank); only the
            # nearest admissible integers can win.
            if model.slope != 0.0:
                ideal = (rank - model.intercept) / model.slope
            else:
                ideal = float(lows[i])
            for value in {
                int(np.clip(np.floor(ideal), lows[i], highs[i])),
                int(np.clip(np.ceil(ideal), lows[i], highs[i])),
                int(lows[i]),
                int(highs[i]),
            }:
                merged = np.insert(points, rank, value)
                ranks = np.arange(merged.size, dtype=np.float64)
                err = model.predict_array(merged) - ranks
                loss = float(np.dot(err, err))
                if loss < best_loss:
                    best_loss = loss
                    best_value = value
        if best_value is None:
            stopped_early = True
            break
        points = np.insert(points, int(np.searchsorted(points, best_value)), best_value)
        virtual.append(best_value)
        previous_loss = best_loss
    elapsed = time.perf_counter() - start
    return SmoothingResult(
        original_keys=original,
        virtual_points=virtual,
        points=points,
        original_loss=original_loss,
        final_loss=previous_loss,
        model=model,
        budget=lam,
        loss_trace=[original_loss, previous_loss],
        stopped_early=stopped_early,
        elapsed_seconds=elapsed,
    )


def _n_choose_k(n: int, k: int) -> int:
    if k < 0 or k > n:
        return 0
    out = 1
    for i in range(min(k, n - k)):
        out = out * (n - i) // (i + 1)
    return out
