"""Workload-aware CDF smoothing (extension).

The paper optimises the *unweighted* SSE (Eq. 2); SALI's probability
model (Section 2.2) shows why a workload view helps — frequently
queried keys matter more.  This extension generalises Algorithm 1 to a
query-weighted loss::

    L_w(K) = Σ_i  w_i · (f(k_i) - rank_i)²

where ``w_i`` is the (relative) query frequency of key ``k_i`` and the
model ``f`` is refitted by *weighted* least squares.  Virtual points
carry no queries, so they contribute weight 0: inserting one helps
purely by shifting the ranks of the real keys above it.

A pleasant consequence: within one gap every candidate value shares
the insertion rank and contributes nothing itself, so the weighted
loss is **constant across the gap** — the greedy step only has to
choose the best *rank*, in O(1) per gap via weighted prefix sums, and
can place the point anywhere in the gap (we use the middle, which
maximises the room left for future insertions on both sides).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .exceptions import InvalidKeysError
from .linear_model import LinearModel
from .segment_stats import validate_keys
from .smoothing import resolve_budget

__all__ = ["WeightedSmoothingResult", "weighted_loss", "smooth_keys_weighted"]


def _validate_weights(weights, n: int) -> np.ndarray:
    arr = np.asarray(weights, dtype=np.float64)
    if arr.shape != (n,):
        raise InvalidKeysError(f"weights must have shape ({n},), got {arr.shape}")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise InvalidKeysError("weights must be finite and non-negative")
    if float(arr.sum()) <= 0.0:
        raise InvalidKeysError("weights must not be all zero")
    return arr


def weighted_loss(
    keys: np.ndarray,
    weights: np.ndarray,
    ranks: np.ndarray | None = None,
) -> tuple[LinearModel, float]:
    """Weighted-OLS model and loss ``L_w`` for *keys* at *ranks*."""
    keys = validate_keys(keys)
    w = _validate_weights(weights, keys.size)
    if ranks is None:
        y = np.arange(keys.size, dtype=np.float64)
    else:
        y = np.asarray(ranks, dtype=np.float64)
    pivot = int(keys[0])
    t = (keys - np.int64(pivot)).astype(np.float64)
    total_w = float(w.sum())
    t_mean = float(np.dot(w, t)) / total_w
    y_mean = float(np.dot(w, y)) / total_w
    tc = t - t_mean
    var = float(np.dot(w * tc, tc))
    if var <= 0.0:
        model = LinearModel(0.0, y_mean, pivot)
    else:
        cov = float(np.dot(w * tc, y - y_mean))
        slope = cov / var
        model = LinearModel(slope, y_mean - slope * t_mean, pivot)
    err = model.predict_array(keys) - y
    return model, float(np.dot(w, err * err))


@dataclass
class WeightedSmoothingResult:
    """Outcome of a workload-aware smoothing run."""

    original_keys: np.ndarray
    weights: np.ndarray
    virtual_points: list[int]
    key_ranks: np.ndarray
    original_loss: float
    final_loss: float
    model: LinearModel
    budget: int
    loss_trace: list[float] = field(default_factory=list)
    stopped_early: bool = False
    elapsed_seconds: float = 0.0

    @property
    def n_virtual(self) -> int:
        return len(self.virtual_points)

    @property
    def loss_improvement_pct(self) -> float:
        if self.original_loss == 0.0:
            return 0.0
        return 100.0 * (self.original_loss - self.final_loss) / self.original_loss

    @property
    def points(self) -> np.ndarray:
        """Combined sorted point set (keys + virtual points)."""
        return np.sort(
            np.concatenate(
                [self.original_keys, np.asarray(self.virtual_points, dtype=np.int64)]
            )
        )


class _WeightedState:
    """Weighted sufficient statistics with O(1) per-rank evaluation.

    Maintains, over the real keys with their *current* ranks:
    ``W, Swt, Swtt, Swy, Swyy, Swty`` (t = pivoted key) plus suffix
    sums of ``w`` and ``w·t`` indexed by current rank, so that the loss
    after inserting a virtual point at rank ``r`` is closed-form.

    Mirrors the incremental design of
    :class:`~repro.core.segment_stats.SegmentStats`: the point, weight
    and suffix arrays live in amortised capacity-doubling buffers and
    each :meth:`commit` updates the moments and suffix sums in place
    (one O(shift) memmove per array) instead of re-deriving everything
    from scratch.  A committed virtual point carries weight 0, so
    ``W/Swt/Swtt`` are invariant and only the rank-dependent moments
    move — by exactly the suffix terms :meth:`best_rank` already
    evaluates.
    """

    def __init__(self, keys: np.ndarray, weights: np.ndarray):
        n = int(keys.size)
        self._size = n
        self.pivot = int(keys[0])
        self._keys_buf = keys.astype(np.int64)
        self._w_buf = weights.astype(np.float64)
        self._t_buf = (keys - np.int64(self.pivot)).astype(np.float64)
        w, t = self._w_buf, self._t_buf
        y = np.arange(n, dtype=np.float64)
        self.W = float(w.sum())
        self.Swt = float(np.dot(w, t))
        self.Swtt = float(np.dot(w, t * t))
        self.Swy = float(np.dot(w, y))
        self.Swyy = float(np.dot(w, y * y))
        self.Swty = float(np.dot(w, t * y))
        # suffix sums over *key index* (ranks are monotone in index);
        # one trailing 0 sentinel so index ``size`` is addressable.
        self._suffix_w_buf = np.concatenate([np.cumsum(w[::-1])[::-1], [0.0]])
        self._suffix_wt_buf = np.concatenate([np.cumsum((w * t)[::-1])[::-1], [0.0]])
        self._suffix_wy_buf = np.concatenate([np.cumsum((w * y)[::-1])[::-1], [0.0]])

    # ------------------------------------------------------------------
    # Buffer views (read-only)
    # ------------------------------------------------------------------
    @property
    def keys(self) -> np.ndarray:
        return self._keys_buf[: self._size]

    @property
    def w(self) -> np.ndarray:
        return self._w_buf[: self._size]

    @property
    def ranks(self) -> np.ndarray:
        """Current ranks — always ``0..size-1`` since commits keep the
        arrays sorted and contiguous."""
        return np.arange(self._size, dtype=np.float64)

    @property
    def suffix_w(self) -> np.ndarray:
        return self._suffix_w_buf[: self._size + 1]

    @property
    def suffix_wt(self) -> np.ndarray:
        return self._suffix_wt_buf[: self._size + 1]

    @property
    def suffix_wy(self) -> np.ndarray:
        return self._suffix_wy_buf[: self._size + 1]

    def _grow(self) -> None:
        """Double every buffer (amortised O(1) per commit)."""
        new_cap = max(2 * self._keys_buf.size, self._size + 1)

        def grown(buf: np.ndarray, used: int, cap: int) -> np.ndarray:
            out = np.empty(cap, dtype=buf.dtype)
            out[:used] = buf[:used]
            return out

        self._keys_buf = grown(self._keys_buf, self._size, new_cap)
        self._w_buf = grown(self._w_buf, self._size, new_cap)
        self._t_buf = grown(self._t_buf, self._size, new_cap)
        self._suffix_w_buf = grown(self._suffix_w_buf, self._size + 1, new_cap + 1)
        self._suffix_wt_buf = grown(self._suffix_wt_buf, self._size + 1, new_cap + 1)
        self._suffix_wy_buf = grown(self._suffix_wy_buf, self._size + 1, new_cap + 1)

    def loss_at(self, first_shifted: int) -> float:
        """Weighted refit loss if keys from index *first_shifted* on
        shift their rank up by one."""
        ws = self.suffix_w[first_shifted]
        wts = self.suffix_wt[first_shifted]
        wys = self.suffix_wy[first_shifted]
        swy = self.Swy + ws
        swyy = self.Swyy + 2.0 * wys + ws
        swty = self.Swty + wts
        var = self.Swtt - self.Swt * self.Swt / self.W
        total = swyy - swy * swy / self.W
        if var <= 0.0:
            return max(total, 0.0)
        cov = swty - self.Swt * swy / self.W
        return max(total - cov * cov / var, 0.0)

    def best_rank(self) -> tuple[int, float] | None:
        """Best shift index over all gaps; None if no gap exists.

        Vectorised: the loss for every gap comes from the same suffix
        arrays, so all gaps are scored in a handful of numpy ops.
        """
        lows = self.keys[:-1] + 1
        highs = self.keys[1:] - 1
        open_gaps = np.nonzero(highs >= lows)[0]
        if open_gaps.size == 0:
            return None
        first_shifted = open_gaps + 1
        ws = self.suffix_w[first_shifted]
        wts = self.suffix_wt[first_shifted]
        wys = self.suffix_wy[first_shifted]
        swy = self.Swy + ws
        swyy = self.Swyy + 2.0 * wys + ws
        swty = self.Swty + wts
        var = self.Swtt - self.Swt * self.Swt / self.W
        total = swyy - swy * swy / self.W
        if var <= 0.0:
            losses = np.maximum(total, 0.0)
        else:
            cov = swty - self.Swt * swy / self.W
            losses = np.maximum(total - cov * cov / var, 0.0)
        best = int(np.argmin(losses))
        return int(open_gaps[best]), float(losses[best])

    def commit(self, gap_index: int) -> int:
        """Insert a virtual point mid-gap after key *gap_index*.

        The virtual point enters the arrays (for gap bookkeeping) with
        weight 0, so ``W/Swt/Swtt`` are untouched; the rank-dependent
        moments absorb exactly the suffix terms of :meth:`best_rank`'s
        closed form, and the suffix arrays shift in place.
        """
        p = gap_index + 1
        old = self._size
        value = int((int(self._keys_buf[gap_index]) + int(self._keys_buf[p])) // 2)
        if old + 1 > self._keys_buf.size:
            self._grow()
        sw, swt, swy_arr = self._suffix_w_buf, self._suffix_wt_buf, self._suffix_wy_buf
        ws = float(sw[p])
        wts = float(swt[p])
        wys = float(swy_arr[p])
        # Rank-dependent moments: every key with index >= p gains +1.
        self.Swy += ws
        self.Swyy += 2.0 * wys + ws
        self.Swty += wts
        # suffix_wy: entries at or below p gain the shifted weight mass,
        # entries above shift right and gain their own suffix weight.
        old_len = old + 1  # including the trailing sentinel
        tail = swy_arr[p:old_len] + sw[p:old_len]
        swy_arr[: p + 1] += ws
        swy_arr[p + 1 : old_len + 1] = tail
        # suffix_w / suffix_wt: the zero-weight point duplicates the
        # suffix value at p (numpy handles the overlapping copy).
        sw[p + 1 : old_len + 1] = sw[p:old_len]
        swt[p + 1 : old_len + 1] = swt[p:old_len]
        # point arrays
        self._keys_buf[p + 1 : old + 1] = self._keys_buf[p:old]
        self._keys_buf[p] = value
        self._w_buf[p + 1 : old + 1] = self._w_buf[p:old]
        self._w_buf[p] = 0.0
        self._t_buf[p + 1 : old + 1] = self._t_buf[p:old]
        self._t_buf[p] = float(value - self.pivot)
        self._size = old + 1
        return value

    def model(self) -> LinearModel:
        var = self.Swtt - self.Swt * self.Swt / self.W
        y_mean = self.Swy / self.W
        if var <= 0.0:
            return LinearModel(0.0, y_mean, self.pivot)
        cov = self.Swty - self.Swt * self.Swy / self.W
        slope = cov / var
        return LinearModel(slope, y_mean - slope * self.Swt / self.W, self.pivot)


def smooth_keys_weighted(
    keys: np.ndarray | list,
    weights: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
) -> WeightedSmoothingResult:
    """Greedy workload-aware smoothing.

    Like :func:`repro.core.smoothing.smooth_keys` but minimising the
    query-weighted loss; hot regions of the key space attract the
    virtual points.  Uniform weights recover (a mid-gap-placement
    variant of) the unweighted algorithm.
    """
    original = validate_keys(keys)
    w = _validate_weights(weights, original.size)
    lam = resolve_budget(original.size, alpha, budget)
    start = time.perf_counter()
    state = _WeightedState(original.copy(), w.copy())
    __, original_loss = weighted_loss(original, w)
    trace = [original_loss]
    virtual: list[int] = []
    previous = original_loss
    stopped_early = False
    while len(virtual) < lam:
        found = state.best_rank()
        if found is None:
            stopped_early = True
            break
        gap_index, loss = found
        if loss >= previous:
            stopped_early = True
            break
        value = state.commit(gap_index)
        virtual.append(value)
        previous = loss
        trace.append(loss)
    real_mask = state.w > 0.0
    key_ranks = state.ranks[real_mask].astype(np.int64)
    return WeightedSmoothingResult(
        original_keys=original,
        weights=w,
        virtual_points=virtual,
        key_ranks=key_ranks,
        original_loss=original_loss,
        final_loss=previous,
        model=state.model(),
        budget=lam,
        loss_trace=trace,
        stopped_early=stopped_early,
        elapsed_seconds=time.perf_counter() - start,
    )
