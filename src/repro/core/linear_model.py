"""Linear (and quadratic) indexing models.

A learned index approximates the cumulative distribution function of a
sorted key list with an *indexing function* ``f(k) ~= rank(k)``.  The
paper (Section 3) focuses on linear functions because they are what
ALEX, LIPP and SALI use internally; Section 1 notes the technique
"can naturally extend to more complex (e.g., quadratic) functions",
which :class:`QuadraticModel` provides.

Models are immutable value objects of the *pivot* form::

    f(k) = slope * (k - pivot) + intercept

The pivot (an integer key) lets the subtraction happen in exact
integer arithmetic before any float conversion.  This matters: int64
keys such as S2 cell ids exceed float64's 53-bit mantissa, so the
naive ``slope * k + b`` form silently loses the low key bits both at
fit and at predict time.  A pivot of 0 recovers the classic form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .exceptions import InvalidKeysError

__all__ = ["LinearModel", "QuadraticModel", "fit_linear", "fit_quadratic"]


def _delta(keys, pivot: int):
    """``keys - pivot`` computed exactly for integer inputs."""
    arr = np.asarray(keys)
    if np.issubdtype(arr.dtype, np.integer):
        return (arr - np.int64(pivot)).astype(np.float64)
    return arr.astype(np.float64) - float(pivot)


@dataclass(frozen=True)
class LinearModel:
    """An affine indexing function ``f(k) = slope*(k - pivot) + intercept``."""

    slope: float
    intercept: float
    pivot: int = 0

    def predict(self, key) -> float:
        """Return the (unclamped, fractional) predicted position of *key*."""
        if isinstance(key, (int, np.integer)):
            return self.slope * float(int(key) - self.pivot) + self.intercept
        return self.slope * (float(key) - self.pivot) + self.intercept

    def predict_array(self, keys) -> np.ndarray:
        """Vectorised :meth:`predict` over a numpy array of keys."""
        return self.slope * _delta(keys, self.pivot) + self.intercept

    def predict_clamped(self, key, size: int) -> int:
        """Predicted integer slot in ``[0, size - 1]``.

        This is the form used when the model addresses a physical array
        of ``size`` slots (ALEX gapped arrays, LIPP node slots).
        """
        if size <= 0:
            raise ValueError("size must be positive")
        pos = int(round(self.predict(key)))
        if pos < 0:
            return 0
        if pos >= size:
            return size - 1
        return pos

    def shifted(self, delta_positions: float) -> "LinearModel":
        """Return a copy whose output is offset by *delta_positions*."""
        return LinearModel(self.slope, self.intercept + delta_positions, self.pivot)

    def scaled(self, factor: float) -> "LinearModel":
        """Return a copy whose output is multiplied by *factor*.

        Used when a model fitted over ranks ``0..n-1`` must address an
        array expanded to ``factor * n`` slots.
        """
        return LinearModel(self.slope * factor, self.intercept * factor, self.pivot)


@dataclass(frozen=True)
class QuadraticModel:
    """A quadratic indexing function in pivot form:
    ``f(k) = a*t^2 + b*t + c`` with ``t = k - pivot``.

    Provided for the paper's extension remark; the smoothing machinery
    itself operates on linear models.
    """

    a: float
    b: float
    c: float
    pivot: int = 0

    def predict(self, key) -> float:
        """Predicted (fractional) position of *key*."""
        t = float(int(key) - self.pivot) if isinstance(key, (int, np.integer)) else float(key) - self.pivot
        return (self.a * t + self.b) * t + self.c

    def predict_array(self, keys) -> np.ndarray:
        """Vectorised :meth:`predict` over a numpy array of keys."""
        t = _delta(keys, self.pivot)
        return (self.a * t + self.b) * t + self.c

    def predict_clamped(self, key, size: int) -> int:
        """Predicted integer slot clamped into ``[0, size - 1]``."""
        if size <= 0:
            raise ValueError("size must be positive")
        pos = int(round(self.predict(key)))
        return min(max(pos, 0), size - 1)


def _prepare(keys, positions):
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise InvalidKeysError("keys must be one-dimensional")
    if arr.size == 0:
        raise InvalidKeysError("keys must be non-empty")
    if np.issubdtype(arr.dtype, np.integer):
        pivot = int(arr[0])
    else:
        pivot = 0
    t = _delta(arr, pivot)
    if positions is None:
        y = np.arange(arr.size, dtype=np.float64)
    else:
        y = np.asarray(positions, dtype=np.float64)
        if y.shape != t.shape:
            raise InvalidKeysError("keys and positions must have equal length")
    return t, y, pivot


def fit_linear(
    keys: Sequence[int] | np.ndarray,
    positions: Sequence[int] | np.ndarray | None = None,
) -> LinearModel:
    """Fit ``f(k) = w*k + b`` minimising the SSE against *positions*.

    If *positions* is omitted, ranks ``0..n-1`` are used, i.e. the model
    is fitted against the empirical CDF of *keys* (Eq. 1 of the paper).

    A single key fits a constant function (slope 0).  Integer keys are
    pivoted on the first key before any float conversion, so 64-bit
    magnitudes survive the fit exactly.
    """
    t, y, pivot = _prepare(keys, positions)
    if t.size == 1:
        return LinearModel(0.0, float(y[0]), pivot)
    t_mean = float(t.mean())
    y_mean = float(y.mean())
    tc = t - t_mean
    var = float(np.dot(tc, tc))
    if var == 0.0:
        # All keys identical; predict the mean position.
        return LinearModel(0.0, y_mean, pivot)
    cov = float(np.dot(tc, y - y_mean))
    slope = cov / var
    intercept = y_mean - slope * t_mean
    return LinearModel(slope, intercept, pivot)


def fit_quadratic(
    keys: Sequence[int] | np.ndarray,
    positions: Sequence[int] | np.ndarray | None = None,
) -> QuadraticModel:
    """Fit ``f(k) = a*k^2 + b*k + c`` against *positions* (default: ranks).

    Falls back to the linear fit embedded in a quadratic (``a = 0``)
    when there are fewer than three distinct keys.
    """
    t, y, pivot = _prepare(keys, positions)
    if np.unique(t).size < 3:
        lin = fit_linear(keys, positions)
        return QuadraticModel(0.0, lin.slope, lin.intercept, lin.pivot)
    # Scale for conditioning, then undo the transform.
    span = float(t.max() - t.min()) or 1.0
    u = t / span
    coeffs = np.polyfit(u, y, deg=2)
    a_u, b_u, c_u = (float(c) for c in coeffs)
    return QuadraticModel(a_u / (span * span), b_u / span, c_u, pivot)
