"""First-order derivative of the loss within a gap (Section 4.2).

Between two adjacent points of the current set lies a *sub-sequence*
(the paper's term) of free integer values a virtual point could take.
Every value in the sub-sequence shares the same insertion rank, so
within it the refitted loss is a smooth rational function of the
candidate value:

    cov(t) = c0 + c1·t          (linear in the centered value t)
    var(t) = v0 + v1·t + v2·t²  (quadratic)
    SSE(t) = SyyC - cov(t)²/var(t)

(constants from :meth:`repro.core.segment_stats.SegmentStats.candidate_terms`).
Differentiating and clearing the (positive) denominator shows the
stationary points satisfy::

    cov(t) · [ 2·c1·var(t) - cov(t)·var'(t) ] = 0

The bracketed factor is *linear* in ``t`` — its root is the interior
minimiser the paper finds by intersecting the derivative with the
x-axis (Fig. 4) — while ``cov(t) = 0`` corresponds to the interior
*maximum* (zero explained variance).  This module exposes both the raw
derivative (used to reproduce Fig. 4 and the sign test of Algorithm 1)
and the closed-form interior minimiser.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .segment_stats import SegmentStats

__all__ = ["GapContext", "loss_derivative"]


@dataclass(frozen=True)
class GapContext:
    """The loss restricted to one sub-sequence of free values.

    Attributes:
        low: smallest free integer value in the gap.
        high: largest free integer value in the gap (``high >= low``).
        rank: insertion rank shared by every value in the gap.
        reference: centering constant of the parent statistics.
        c0, c1, v0, v1, v2, syyc: separated loss terms (see module doc).
        n: size of the base point set (before insertion).
    """

    low: int
    high: int
    rank: int
    reference: int
    c0: float
    c1: float
    v0: float
    v1: float
    v2: float
    syyc: float
    n: int

    @classmethod
    def from_stats(cls, stats: SegmentStats, low: int, high: int, rank: int) -> "GapContext":
        c0, c1, v0, v1, v2, syyc = stats.candidate_terms(rank)
        return cls(
            low=int(low),
            high=int(high),
            rank=int(rank),
            reference=stats.reference,
            c0=c0,
            c1=c1,
            v0=v0,
            v1=v1,
            v2=v2,
            syyc=syyc,
            n=stats.n,
        )

    @property
    def length(self) -> int:
        """Number of free integer values in this sub-sequence."""
        return self.high - self.low + 1

    # ------------------------------------------------------------------
    def _t(self, value: float) -> float:
        """Centered coordinate; exact for integer values."""
        if isinstance(value, (int, np.integer)):
            return float(int(value) - self.reference)
        return float(value) - self.reference

    def _cov_var(self, value: float) -> tuple[float, float]:
        t = self._t(value)
        cov = self.c0 + self.c1 * t
        var = self.v0 + self.v1 * t + self.v2 * t * t
        return cov, var

    def loss(self, value: float) -> float:
        """Refitted SSE if a virtual point took this value."""
        cov, var = self._cov_var(value)
        if var <= 0.0:
            return max(self.syyc, 0.0)
        return max(self.syyc - cov * cov / var, 0.0)

    def derivative(self, value: float) -> float:
        """d(SSE)/d(value) — the paper's ``L({K ∪ V})'`` (Eq. 17)."""
        t = self._t(value)
        cov = self.c0 + self.c1 * t
        var = self.v0 + self.v1 * t + self.v2 * t * t
        if var <= 0.0:
            return 0.0
        var_prime = self.v1 + 2.0 * self.v2 * t
        return -(2.0 * cov * self.c1 * var - cov * cov * var_prime) / (var * var)

    def stationary_minimum(self) -> float | None:
        """The interior stationary point that is a minimum, if defined.

        Solves ``2·c1·var(t) - cov(t)·var'(t) = 0`` (linear in ``t``)
        and converts back to key coordinates.  Returns ``None`` when the
        linear coefficient vanishes (degenerate gap).
        """
        denom = self.c1 * self.v1 - 2.0 * self.c0 * self.v2
        if denom == 0.0:
            return None
        t_star = (self.c0 * self.v1 - 2.0 * self.c1 * self.v0) / denom
        return t_star + self.reference

    def candidate_values(self) -> list[int]:
        """Candidate values to evaluate for this gap, per Algorithm 1.

        * length ≤ 2 → every value in the sub-sequence (Line 7-8);
        * endpoints' derivative signs equal → endpoints only (the
          minimum cannot be interior, Line 16-17);
        * opposite signs → the interior stationary point, rounded to
          its two neighbouring integers, clamped into the gap
          (Line 14-15 / 20-21).
        """
        if self.length <= 2:
            return list(range(self.low, self.high + 1))
        d_low = self.derivative(self.low)
        d_high = self.derivative(self.high)
        if d_low * d_high >= 0.0:
            return [self.low, self.high]
        star = self.stationary_minimum()
        if star is None:
            return [self.low, self.high]
        floor_v = int(np.floor(star))
        ceil_v = floor_v + 1
        values = {
            min(max(floor_v, self.low), self.high),
            min(max(ceil_v, self.low), self.high),
        }
        return sorted(values)

    def best_candidate(self) -> tuple[int, float]:
        """``(value, loss)`` of the best virtual point in this gap."""
        best_value = self.low
        best_loss = float("inf")
        for value in self.candidate_values():
            loss = self.loss(value)
            if loss < best_loss:
                best_loss = loss
                best_value = value
        return best_value, best_loss


def loss_derivative(stats: SegmentStats, value: int) -> float:
    """Derivative of the refitted loss at a free *value* (Fig. 4 helper).

    Builds the gap context on the fly; *value* must not collide with an
    existing point.
    """
    rank = stats.insertion_rank(value)
    ctx = GapContext.from_stats(stats, value, value, rank)
    return ctx.derivative(value)
