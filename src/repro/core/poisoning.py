"""Loss-maximising point insertion (poisoning attacks, Section 2.3).

CSV's smoothing is "data poisoning run in reverse": Kornaropoulos et
al. insert points that *maximise* the SSE of a learned index's models
to degrade it.  Reusing the incremental machinery from
:mod:`repro.core.segment_stats` we implement the greedy attack, both
as a reproduction of the motivating related work and as a sanity
ablation — smoothing and poisoning should move the loss in opposite
directions from the same starting set.

Within one gap, the refitted loss is ``SyyC - cov(t)²/var(t)``; it is
*maximised* where ``cov(t) = 0`` (the model explains nothing), so the
attack's interior candidate is the root of the covariance rather than
the stationary point of the bracketed factor used for smoothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .exceptions import SmoothingBudgetError
from .segment_stats import SegmentStats, validate_keys
from .smoothing import resolve_budget

__all__ = ["PoisoningResult", "poison_keys"]


@dataclass
class PoisoningResult:
    """Outcome of a greedy poisoning run."""

    original_keys: np.ndarray
    poison_points: list[int] = field(default_factory=list)
    points: np.ndarray | None = None
    original_loss: float = 0.0
    final_loss: float = 0.0
    loss_trace: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def loss_increase_pct(self) -> float:
        if self.original_loss == 0.0:
            return float("inf") if self.final_loss > 0 else 0.0
        return 100.0 * (self.final_loss - self.original_loss) / self.original_loss


def _worst_candidate(stats: SegmentStats) -> tuple[int, float] | None:
    """Global loss-maximising ``(value, loss)`` over every gap."""
    points = stats.points
    lows = points[:-1] + 1
    highs = points[1:] - 1
    mask = highs >= lows
    if not np.any(mask):
        return None
    lows = lows[mask]
    highs = highs[mask]
    ranks = np.nonzero(mask)[0] + 1

    candidate_values = [lows, highs]
    candidate_ranks = [ranks, ranks]
    # Interior maximiser: cov(t) = c0 + c1·t = 0.
    from .segment_stats import sum_of_ranks

    n = stats.n
    big_n = n + 1
    ybar = sum_of_ranks(big_n) / big_n
    sk, __, sky = stats.centered_sums()
    suffix = stats.suffix_key_sums(ranks)
    c0 = (sky + suffix) - sk * ybar
    c1 = ranks - ybar
    with np.errstate(divide="ignore", invalid="ignore"):
        t_zero = np.where(c1 != 0.0, -c0 / c1, np.nan)
    star = t_zero + stats.reference
    interior = np.isfinite(star) & (star > lows) & (star < highs)
    if np.any(interior):
        floor_v = np.floor(star[interior]).astype(np.int64)
        lo_i = lows[interior]
        hi_i = highs[interior]
        candidate_values.append(np.clip(floor_v, lo_i, hi_i))
        candidate_ranks.append(ranks[interior])
        candidate_values.append(np.clip(floor_v + 1, lo_i, hi_i))
        candidate_ranks.append(ranks[interior])

    values = np.concatenate(candidate_values)
    value_ranks = np.concatenate(candidate_ranks)
    losses = stats.evaluate_many(values, value_ranks)
    worst = int(np.argmax(losses))
    return int(values[worst]), float(losses[worst])


def poison_keys(
    keys: np.ndarray | list,
    alpha: float | None = None,
    budget: int | None = None,
) -> PoisoningResult:
    """Greedy poisoning: insert points that maximise the refitted SSE.

    Mirrors :func:`repro.core.smoothing.smooth_keys` with the argmin
    replaced by an argmax.  Stops early only when no free value exists.
    """
    original = validate_keys(keys)
    lam = resolve_budget(original.size, alpha, budget)
    if original.size < 2:
        raise SmoothingBudgetError("poisoning needs at least two keys")
    start = time.perf_counter()
    stats = SegmentStats(original)
    original_loss = stats.base_loss()
    trace = [original_loss]
    poison: list[int] = []
    current_loss = original_loss
    while len(poison) < lam:
        found = _worst_candidate(stats)
        if found is None:
            break
        value, loss = found
        if loss <= current_loss:
            # No free value hurts the fit further; stop (rare, tiny gaps).
            break
        stats.commit(value)
        poison.append(value)
        current_loss = loss
        trace.append(loss)
    return PoisoningResult(
        original_keys=original,
        poison_points=poison,
        points=stats.points.copy(),
        original_loss=original_loss,
        final_loss=current_loss,
        loss_trace=trace,
        elapsed_seconds=time.perf_counter() - start,
    )
