"""Exporters for the metrics registry.

Three views of the same :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`snapshot` / :func:`write_jsonl` — a JSON-lines stream of
  cumulative snapshots (schema below), the machine-readable feed the
  ``serve --metrics-out`` CLI writes and CI validates.
* :func:`to_prometheus` / :func:`snapshot_to_prometheus` — Prometheus
  text exposition (counters, gauges, and cumulative ``_bucket`` lines
  rebuilt from the fixed log-bucket layout).
* :func:`snapshot_table` — the human ``repro metrics`` ASCII table.

JSON-lines schema (one object per line, ``v`` = 1)::

    {"v": 1, "seq": 3, "ts": 1720000000.0,
     "counters":   {"service_lookups_total": 4096, ...},
     "gauges":     {"merge_queue_depth": 0.0, ...},
     "histograms": {"service_lookup_ns{shard=0}":
                      {"count": 512, "sum": ..., "min": ..., "max": ...,
                       "p50": ..., "p90": ..., "p99": ...,
                       "buckets": {"112": 37, ...}}, ...},
     "spans":      [{"name": "merge_shard", "duration_s": ...}, ...]}

Snapshots are *cumulative*: within one stream ``seq`` strictly
increases and every counter (and histogram count) is monotonically
non-decreasing — :func:`validate_metrics_lines` checks exactly that,
plus per-line shape, and is what ``repro metrics --validate`` runs.
Because histogram snapshots carry their sparse bucket counts, two
streams from different processes merge by
:meth:`Histogram.from_snapshot(...).merge(...)
<repro.obs.metrics.Histogram.merge>`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Iterable

from .metrics import Histogram, MetricsRegistry

__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "snapshot",
    "write_jsonl",
    "to_prometheus",
    "snapshot_to_prometheus",
    "snapshot_table",
    "validate_metrics_lines",
]

#: The content type a scrape endpoint must serve the text exposition
#: under (what the HTTP front door's ``GET /metrics`` sends).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Schema version stamped on every snapshot line.
SCHEMA_VERSION = 1

#: Keys every snapshot line must carry.
REQUIRED_KEYS = ("v", "seq", "ts", "counters", "gauges", "histograms")

#: Keys every histogram snapshot must carry.
REQUIRED_HIST_KEYS = ("count", "sum", "buckets", "p50", "p90", "p99")

#: How many of the most recent spans a snapshot line retains.
SNAPSHOT_SPAN_LIMIT = 32


def snapshot(registry: MetricsRegistry, ts: float | None = None) -> dict:
    """One cumulative JSON-safe snapshot of *registry* (see schema)."""
    return {
        "v": SCHEMA_VERSION,
        "seq": registry.next_snapshot_seq(),
        "ts": time.time() if ts is None else float(ts),
        "counters": registry.counters(),
        "gauges": registry.gauges(),
        "histograms": {k: h.snapshot() for k, h in registry.histograms().items()},
        "spans": [s.to_dict() for s in registry.spans()[-SNAPSHOT_SPAN_LIMIT:]],
    }


def write_jsonl(
    target: str | Path | IO[str], registry: MetricsRegistry, ts: float | None = None
) -> dict:
    """Append one snapshot line to *target* (path opens in append mode)."""
    snap = snapshot(registry, ts=ts)
    line = json.dumps(snap, sort_keys=True) + "\n"
    if hasattr(target, "write"):
        target.write(line)
    else:
        with open(target, "a", encoding="utf-8") as fh:
            fh.write(line)
    return snap


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _split_key(key: str) -> tuple[str, str]:
    """``name{a=1,b=2}`` → ``("name", '{a="1",b="2"}')`` (prom-quoted)."""
    if "{" not in key:
        return key, ""
    name, __, raw = key.partition("{")
    pairs = []
    for part in raw.rstrip("}").split(","):
        label, __, value = part.partition("=")
        pairs.append(f'{label}="{value}"')
    return name, "{" + ",".join(pairs) + "}"


def snapshot_to_prometheus(snap: dict) -> str:
    """Render one JSON snapshot as Prometheus text exposition."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snap.get("counters", {}).items():
        name, labels = _split_key(key)
        declare(name, "counter")
        lines.append(f"{name}{labels} {value}")
    for key, value in snap.get("gauges", {}).items():
        name, labels = _split_key(key)
        declare(name, "gauge")
        lines.append(f"{name}{labels} {value}")
    for key, hist_snap in snap.get("histograms", {}).items():
        name, labels = _split_key(key)
        declare(name, "histogram")
        inner = labels[1:-1] if labels else ""
        cum = 0
        for raw in sorted(hist_snap.get("buckets", {}), key=int):
            cum += int(hist_snap["buckets"][raw])
            edge = Histogram.bucket_upper_edge(int(raw))
            sep = "," if inner else ""
            lines.append(f'{name}_bucket{{{inner}{sep}le="{edge:.6g}"}} {cum}')
        sep = "," if inner else ""
        lines.append(f'{name}_bucket{{{inner}{sep}le="+Inf"}} {hist_snap["count"]}')
        lines.append(f"{name}_sum{labels} {hist_snap['sum']}")
        lines.append(f"{name}_count{labels} {hist_snap['count']}")
    return "\n".join(lines) + "\n"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition of the registry's current state."""
    return snapshot_to_prometheus(snapshot(registry))


# ----------------------------------------------------------------------
# Human table
# ----------------------------------------------------------------------
def snapshot_table(snap: dict) -> str:
    """Render one JSON snapshot as the ``repro metrics`` ASCII tables."""
    # Local import: evaluation pulls in the index stack, which must not
    # load just because something imports repro.obs.
    from ..evaluation.reporting import ascii_table

    parts: list[str] = []
    scalar_rows = [["counter", k, _fmt(v)] for k, v in snap.get("counters", {}).items()]
    scalar_rows += [["gauge", k, _fmt(v)] for k, v in snap.get("gauges", {}).items()]
    if scalar_rows:
        parts.append(ascii_table(["kind", "metric", "value"], scalar_rows))
    hist_rows = [
        [
            k,
            h.get("count", 0),
            _fmt(h["sum"] / h["count"] if h.get("count") else 0.0),
            _fmt(h.get("p50", 0.0)),
            _fmt(h.get("p90", 0.0)),
            _fmt(h.get("p99", 0.0)),
        ]
        for k, h in snap.get("histograms", {}).items()
    ]
    if hist_rows:
        parts.append(ascii_table(["histogram", "count", "avg", "p50", "p90", "p99"], hist_rows))
    if not parts:
        return "(no metrics recorded)"
    return "\n\n".join(parts)


def _fmt(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.2f}"
    return f"{int(value):,}"


# ----------------------------------------------------------------------
# Schema validation (the CI smoke contract)
# ----------------------------------------------------------------------
def validate_metrics_lines(lines: Iterable[str]) -> list[str]:
    """Validate a JSON-lines metrics stream; returns error strings.

    Checks, per the schema above: every non-empty line parses as a
    JSON object carrying :data:`REQUIRED_KEYS` with the right shapes;
    ``seq`` strictly increases; every counter value and histogram
    count is numeric and monotonically non-decreasing across lines.
    An empty list means the stream is valid.
    """
    errors: list[str] = []
    prev_seq: int | None = None
    prev_counters: dict[str, float] = {}
    prev_hist_counts: dict[str, int] = {}
    n_lines = 0
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        n_lines += 1
        try:
            snap = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        if not isinstance(snap, dict):
            errors.append(f"line {lineno}: not a JSON object")
            continue
        missing = [k for k in REQUIRED_KEYS if k not in snap]
        if missing:
            errors.append(f"line {lineno}: missing required keys {missing}")
            continue
        if snap["v"] != SCHEMA_VERSION:
            errors.append(f"line {lineno}: schema version {snap['v']!r} != {SCHEMA_VERSION}")
        seq = snap["seq"]
        if not isinstance(seq, int):
            errors.append(f"line {lineno}: seq must be an int")
        elif prev_seq is not None and seq <= prev_seq:
            errors.append(f"line {lineno}: seq {seq} not greater than previous {prev_seq}")
        else:
            prev_seq = seq
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(snap[section], dict):
                errors.append(f"line {lineno}: {section} must be an object")
        counters = snap.get("counters", {})
        if isinstance(counters, dict):
            for key, value in counters.items():
                if not isinstance(value, (int, float)):
                    errors.append(f"line {lineno}: counter {key!r} is not numeric")
                    continue
                if value < prev_counters.get(key, 0):
                    errors.append(
                        f"line {lineno}: counter {key!r} decreased "
                        f"({prev_counters[key]} -> {value})"
                    )
                prev_counters[key] = value
        histograms = snap.get("histograms", {})
        if isinstance(histograms, dict):
            for key, hist_snap in histograms.items():
                if not isinstance(hist_snap, dict):
                    errors.append(f"line {lineno}: histogram {key!r} is not an object")
                    continue
                hist_missing = [k for k in REQUIRED_HIST_KEYS if k not in hist_snap]
                if hist_missing:
                    errors.append(
                        f"line {lineno}: histogram {key!r} missing {hist_missing}"
                    )
                    continue
                count = hist_snap["count"]
                if not isinstance(count, int):
                    errors.append(f"line {lineno}: histogram {key!r} count not an int")
                    continue
                if count < prev_hist_counts.get(key, 0):
                    errors.append(
                        f"line {lineno}: histogram {key!r} count decreased "
                        f"({prev_hist_counts[key]} -> {count})"
                    )
                prev_hist_counts[key] = count
                bucket_total = sum(int(c) for c in hist_snap["buckets"].values())
                if bucket_total != count:
                    errors.append(
                        f"line {lineno}: histogram {key!r} bucket sum "
                        f"{bucket_total} != count {count}"
                    )
    if n_lines == 0:
        errors.append("stream contains no snapshot lines")
    return errors
