"""Observability: structured metrics, tracing spans, logs, and health.

The repo-wide instrumentation substrate (dependency-free: stdlib +
numpy).  Every subsystem reports through one
:class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
**mergeable** fixed-layout log-bucket histograms (percentiles
aggregate across shards and processes by summing bucket counts), plus
lightweight :func:`~repro.obs.tracing.trace` spans into a bounded ring
buffer.  Exporters render the registry as JSON-lines snapshots,
Prometheus text, or the ``repro metrics`` ASCII table.

Instrumentation is off by default: the global registry starts
disabled, and every instrumented hot path guards with a single
``registry.enabled`` check, so the library costs nothing until the
``serve`` CLI (``--metrics-out``) or an embedding application installs
an enabled registry via :func:`~repro.obs.metrics.set_registry` /
:class:`~repro.obs.metrics.scoped_registry`.

See README "Observability" for the metric catalog and span names.
"""

from .health import DRIFT_WARN, IMBALANCE_WARN, HealthReport, ShardHealth
from .log import LOG_FORMATS, configure_logging, get_logger, log_event
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metric_key,
    scoped_registry,
    set_registry,
)
from .tracing import SpanRecord, trace

__all__ = [
    "Counter",
    "DRIFT_WARN",
    "Gauge",
    "HealthReport",
    "Histogram",
    "IMBALANCE_WARN",
    "LOG_FORMATS",
    "MetricsRegistry",
    "ShardHealth",
    "SpanRecord",
    "configure_logging",
    "get_logger",
    "get_registry",
    "log_event",
    "metric_key",
    "scoped_registry",
    "set_registry",
    "trace",
]
