"""Structured metrics: counters, gauges, and mergeable histograms.

The instruments here are deliberately dumb data holders — a
:class:`Counter` adds, a :class:`Gauge` stores, a :class:`Histogram`
bins — with *no* internal enabled/disabled state.  Whether a hot path
records anything at all is decided at the call site with one guard::

    reg = get_registry()
    if reg.enabled:                # the near-zero-cost no-op gate
        reg.counter("merges_total").inc()

so a disabled registry costs a single attribute load and branch per
instrumented block, allocates nothing, and cannot perturb results
(``tests/obs`` asserts bit-identical service output metrics-on vs
metrics-off).

Histogram layout
----------------

Every histogram shares one **fixed log-bucket layout**: bucket ``i``
covers ``[2**(i/S + E), 2**((i+1)/S + E))`` with ``S = 4`` sub-buckets
per octave and ``E = HIST_EXP_MIN`` octaves of underflow headroom.
Because the layout is a global constant, two histograms — from
different shards, threads, processes, or JSON-lines snapshots — merge
by summing their bucket-count arrays, which is what makes per-shard
p50/p90/p99 aggregable into service-wide percentiles without retaining
a single raw sample.  Relative bucket width is ``2**(1/4) ≈ 1.19``, so
any percentile estimate is within ~19% of the exact order statistic
(``tests/obs/test_metrics.py`` pins this against ``np.percentile``).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import TYPE_CHECKING, Iterable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .tracing import SpanRecord

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "scoped_registry",
    "metric_key",
]

#: Sub-buckets per octave (power of two).  Relative bucket width is
#: ``2**(1/HIST_SUBBUCKETS)``; 4 gives ~19% wide buckets.
HIST_SUBBUCKETS = 4
#: Smallest resolvable magnitude is ``2**HIST_EXP_MIN`` (~1e-6, enough
#: for sub-microsecond span durations in seconds); anything at or
#: below it lands in bucket 0.
HIST_EXP_MIN = -20
#: Largest resolvable magnitude is ``2**HIST_EXP_MAX`` (~1.7e13,
#: enough for simulated-ns totals); larger values clamp into the top
#: bucket.
HIST_EXP_MAX = 44
#: Total number of buckets in the fixed layout.
HIST_BUCKETS = (HIST_EXP_MAX - HIST_EXP_MIN) * HIST_SUBBUCKETS


def metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` (sorted by k)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing count (float to allow key totals)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add *n* (default 1) to the count."""
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: int | float) -> None:
        """Overwrite the gauge with *v*."""
        self.value = float(v)

    def inc(self, n: int | float = 1) -> None:
        """Add *n* (default 1) to the gauge."""
        self.value += n

    def dec(self, n: int | float = 1) -> None:
        """Subtract *n* (default 1) from the gauge."""
        self.value -= n


class Histogram:
    """Streaming log-bucket histogram with exact count/sum/min/max.

    See the module docstring for the fixed bucket layout.  All
    mutating operations take the instance lock so a background merge
    thread and the serving thread can share one histogram.
    """

    __slots__ = ("_counts", "count", "sum", "min", "max", "_lock")

    def __init__(self) -> None:
        self._counts = np.zeros(HIST_BUCKETS, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @staticmethod
    def bucket_of(value: float) -> int:
        """Bucket index of one value under the fixed layout."""
        if value <= 0.0 or not math.isfinite(value):
            return 0
        i = math.floor(math.log2(value) * HIST_SUBBUCKETS) - HIST_EXP_MIN * HIST_SUBBUCKETS
        return min(max(i, 0), HIST_BUCKETS - 1)

    @staticmethod
    def bucket_upper_edge(i: int) -> float:
        """Exclusive upper bound of bucket *i*."""
        return 2.0 ** ((i + 1) / HIST_SUBBUCKETS + HIST_EXP_MIN)

    @staticmethod
    def bucket_mid(i: int) -> float:
        """Geometric midpoint of bucket *i* (the percentile estimate)."""
        return 2.0 ** ((i + 0.5) / HIST_SUBBUCKETS + HIST_EXP_MIN)

    def observe(self, value: float) -> None:
        """Record one scalar observation."""
        value = float(value)
        with self._lock:
            self._counts[self.bucket_of(value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def observe_array(self, values: np.ndarray) -> None:
        """Record a batch of observations in one vectorised pass."""
        v = np.asarray(values, dtype=np.float64)
        if v.size == 0:
            return
        positive = v > 0.0
        with np.errstate(divide="ignore", invalid="ignore"):
            idx = np.floor(np.log2(np.where(positive, v, 1.0)) * HIST_SUBBUCKETS)
        idx = idx.astype(np.int64) - HIST_EXP_MIN * HIST_SUBBUCKETS
        idx = np.clip(np.where(positive, idx, 0), 0, HIST_BUCKETS - 1)
        binned = np.bincount(idx, minlength=HIST_BUCKETS)
        with self._lock:
            self._counts += binned
            self.count += int(v.size)
            self.sum += float(v.sum())
            lo = float(v.min())
            hi = float(v.max())
            if lo < self.min:
                self.min = lo
            if hi > self.max:
                self.max = hi

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact arithmetic mean of every observation (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated *q*-th percentile (``0 <= q <= 100``).

        The estimate is the geometric midpoint of the bucket holding
        the target order statistic, clamped into the observed
        ``[min, max]`` — within one relative bucket width
        (``2**(1/4)``) of the exact value, and monotone in *q*.
        """
        with self._lock:
            if self.count == 0:
                return 0.0
            target = max(1, math.ceil(self.count * q / 100.0))
            cum = np.cumsum(self._counts)
            bucket = int(np.searchsorted(cum, target))
        return float(min(max(self.bucket_mid(bucket), self.min), self.max))

    def percentiles(self, qs: Iterable[float]) -> list[float]:
        """:meth:`percentile` for each *q* in *qs*."""
        return [self.percentile(q) for q in qs]

    # ------------------------------------------------------------------
    # Merging and snapshots
    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other* into this histogram (same fixed layout)."""
        with other._lock:
            counts = other._counts.copy()
            o_count, o_sum, o_min, o_max = other.count, other.sum, other.min, other.max
        with self._lock:
            self._counts += counts
            self.count += o_count
            self.sum += o_sum
            if o_min < self.min:
                self.min = o_min
            if o_max > self.max:
                self.max = o_max
        return self

    def snapshot(self) -> dict:
        """JSON-safe state: exact moments, percentiles, sparse buckets."""
        with self._lock:
            nonzero = np.nonzero(self._counts)[0]
            buckets = {int(i): int(self._counts[i]) for i in nonzero}
            count, total = self.count, self.sum
            lo = self.min if count else 0.0
            hi = self.max if count else 0.0
        snap = {
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "buckets": {str(i): c for i, c in buckets.items()},
        }
        for q in (50, 90, 99):
            snap[f"p{q}"] = self.percentile(q)
        return snap

    @classmethod
    def from_snapshot(cls, snap: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`snapshot` output (mergeable)."""
        hist = cls()
        for raw, c in snap.get("buckets", {}).items():
            hist._counts[int(raw)] = int(c)
        hist.count = int(snap.get("count", 0))
        hist.sum = float(snap.get("sum", 0.0))
        if hist.count:
            hist.min = float(snap.get("min", 0.0))
            hist.max = float(snap.get("max", 0.0))
        return hist

    def bucket_counts(self) -> np.ndarray:
        """A copy of the full fixed-layout bucket-count array."""
        with self._lock:
            return self._counts.copy()


class MetricsRegistry:
    """Named instruments plus the tracing ring buffer.

    One registry is one observability domain: the process-global
    default (see :func:`get_registry`) collects everything unless a
    component is handed its own.  ``enabled`` is the single no-op
    gate every instrumented hot path checks before touching an
    instrument; a disabled registry can still *hold* instruments
    (e.g. the service's always-on latency histograms register
    themselves so exporters can find them), it just tells call sites
    not to spend anything on optional accounting.
    """

    def __init__(
        self,
        enabled: bool = True,
        trace_capacity: int = 2048,
        trace_sample_every: int = 1,
    ) -> None:
        self.enabled = bool(enabled)
        #: Sample every N-th span (deterministic, 1 = every span).
        self.trace_sample_every = max(1, int(trace_sample_every))
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: deque = deque(maxlen=max(1, int(trace_capacity)))
        self._span_seq = 0
        self._snapshot_seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> Counter:
        """Get or create the counter named ``name{labels}``."""
        key = metric_key(name, labels)
        got = self._counters.get(key)
        if got is None:
            with self._lock:
                got = self._counters.setdefault(key, Counter())
        return got

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create the gauge named ``name{labels}``."""
        key = metric_key(name, labels)
        got = self._gauges.get(key)
        if got is None:
            with self._lock:
                got = self._gauges.setdefault(key, Gauge())
        return got

    def histogram(self, name: str, **labels) -> Histogram:
        """Get or create the histogram named ``name{labels}``."""
        key = metric_key(name, labels)
        got = self._histograms.get(key)
        if got is None:
            with self._lock:
                got = self._histograms.setdefault(key, Histogram())
        return got

    def register_histogram(self, name: str, hist: Histogram, **labels) -> Histogram:
        """Adopt an externally owned histogram under *name* (overwrites).

        The serving layer's always-on latency histograms live on the
        service but register here so exporters see them; the newest
        registrant wins the name.
        """
        with self._lock:
            self._histograms[metric_key(name, labels)] = hist
        return hist

    # ------------------------------------------------------------------
    # Tracing support (used by repro.obs.tracing)
    # ------------------------------------------------------------------
    def sample_span(self) -> bool:
        """Deterministic every-N sampler for spans."""
        self._span_seq += 1
        return self._span_seq % self.trace_sample_every == 0

    def record_span(self, record: "SpanRecord") -> None:
        """Retain *record* and feed its duration histogram."""
        self._spans.append(record)
        self.histogram("span_seconds", span=record.name).observe(record.duration_s)

    def spans(self) -> list:
        """The retained span records, oldest first."""
        return list(self._spans)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counters(self) -> dict[str, int | float]:
        """Current counter values by flat key (sorted)."""
        return {k: c.value for k, c in sorted(self._counters.items())}

    def gauges(self) -> dict[str, float]:
        """Current gauge values by flat key (sorted)."""
        return {k: g.value for k, g in sorted(self._gauges.items())}

    def histograms(self) -> dict[str, Histogram]:
        """The live histogram instruments by flat key (sorted)."""
        return dict(sorted(self._histograms.items()))

    def next_snapshot_seq(self) -> int:
        """The next strictly increasing snapshot sequence number."""
        with self._lock:
            self._snapshot_seq += 1
            return self._snapshot_seq

    def reset(self) -> None:
        """Drop every instrument and span (tests, fresh runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._span_seq = 0
            self._snapshot_seq = 0


#: Process-global default registry.  Disabled out of the box so
#: importing repro never pays for instrumentation; the serve CLI (or
#: an embedding application) swaps in an enabled registry.
_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented code reports into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the global registry; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


class scoped_registry:
    """Context manager installing *registry* globally for a block.

    The benchmark harness and tests use this to flip instrumentation
    on/off without leaking state::

        with scoped_registry(MetricsRegistry(enabled=True)) as reg:
            service.lookup_many(queries)
        assert reg.counters()["service_lookups_total"] > 0
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_registry(self._previous)
