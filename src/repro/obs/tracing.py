"""Lightweight tracing spans over the metrics registry.

A span is one timed block with a name, optional tags, and its nesting
depth within the current thread::

    with trace("merge_shard", shard=3):
        ...merge work...

On exit the span records wall time into the registry's ring buffer
(bounded, oldest evicted first) *and* into the mergeable
``span_seconds{span=<name>}`` histogram, so exporters get both the
recent raw spans and long-run duration percentiles.

Cost model: when the registry is disabled — or the deterministic
every-N sampler skips this span — :func:`trace` returns one shared
no-op singleton, so an untraced block costs a guard and no
allocation.  Nesting is tracked per thread with a ``threading.local``
stack; spans on different threads never see each other as parents.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .metrics import MetricsRegistry, get_registry

__all__ = ["SpanRecord", "trace"]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, as retained in the registry ring buffer."""

    name: str
    start_s: float
    duration_s: float
    depth: int
    tags: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe form, as embedded in snapshot lines."""
        return {
            "name": self.name,
            "start_s": round(self.start_s, 6),
            "duration_s": round(self.duration_s, 6),
            "depth": self.depth,
            "tags": dict(self.tags),
        }


_stack = threading.local()


def _depth() -> int:
    return getattr(_stack, "depth", 0)


class _NoopSpan:
    """Shared do-nothing span for disabled/sampled-out traces."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("_registry", "name", "tags", "_start")

    def __init__(self, registry: MetricsRegistry, name: str, tags: dict) -> None:
        self._registry = registry
        self.name = name
        self.tags = tags

    def __enter__(self) -> "_Span":
        _stack.depth = _depth() + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        depth = _depth()
        _stack.depth = depth - 1
        self._registry.record_span(
            SpanRecord(
                name=self.name,
                start_s=self._start,
                duration_s=duration,
                depth=depth,
                tags=self.tags,
            )
        )
        return False


def trace(name: str, registry: MetricsRegistry | None = None, **tags):
    """Context manager timing one named block (see module docstring).

    Args:
        name: span name; also the ``span=`` label of the duration
            histogram, so keep the cardinality low (operation names,
            not per-request ids — put those in *tags*).
        registry: explicit registry; defaults to the global one.
        **tags: arbitrary key/values stored on the span record.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled or not reg.sample_span():
        return _NOOP
    return _Span(reg, name, tags)
