"""Per-shard health model: staleness, drift, and imbalance telemetry.

The sensor layer the ROADMAP's online re-tuning item actuates on.
:meth:`IndexService.health_report()
<repro.serving.service.IndexService.health_report>` fills these
dataclasses from its always-on latency histograms, write buffers, and
the shard plan's compile-time cost predictions; the ``serve`` CLI
prints :meth:`HealthReport.to_table` as its epilogue.

Signals per shard:

* **staleness** — unmerged buffered writes over stored keys (the same
  ratio that triggers merges); warn above the service's merge
  threshold, i.e. a shard the merge machinery is failing to keep up
  with.
* **drift** — observed mean simulated latency over the compile-time
  expected per-key cost (the shard plan's Eq. 22 prediction, refreshed
  whenever a merge rebuilds the shard).  The prediction prices the
  shard as a single root-level node, so a healthy multi-level tree
  sits at a modest positive drift; the signal is its *growth* — keys
  sliding into conflict chains and deeper levels push it up.  Warn
  above :data:`DRIFT_WARN`.
* **imbalance** — max/mean of the observed per-shard mean costs (the
  runtime counterpart of the partitioner's predicted
  ``cost_imbalance``); warn above :data:`IMBALANCE_WARN`, the signal
  for re-partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ShardHealth",
    "ReplicaHealth",
    "HealthReport",
    "DRIFT_WARN",
    "IMBALANCE_WARN",
]

#: Warn when observed mean latency exceeds ``(1 + DRIFT_WARN)`` times
#: the compile-time expected per-key cost.
DRIFT_WARN = 3.0

#: Warn when the max/mean observed per-shard cost ratio exceeds this.
IMBALANCE_WARN = 2.0


@dataclass(frozen=True)
class ShardHealth:
    """Health signals of one shard (see module docstring)."""

    shard: int
    n_keys: int
    buffered: int
    staleness: float
    queries: int
    avg_ns: float
    p50_ns: float
    p90_ns: float
    p99_ns: float
    expected_ns: float
    drift: float
    status: str  # "ok" | "warn"


@dataclass(frozen=True)
class ReplicaHealth:
    """One serving replica (a shard worker process) of the executor.

    Filled by the router's process executor: which worker slot, the
    OS pid, liveness, the shards the replica is attached to, its
    in-flight request count (the load the least-loaded fan-out
    balances on), batches served, and how many times the slot has
    been respawned after a crash or timeout.  Serial and thread
    executors report no replicas.
    """

    slot: int
    pid: int | None
    alive: bool
    shards: tuple[int, ...]
    in_flight: int
    served_batches: int
    restarts: int


@dataclass(frozen=True)
class HealthReport:
    """Service-wide health: per-shard rows plus aggregate signals."""

    shards: tuple[ShardHealth, ...]
    merge_queue_depth: int
    merges: int
    cache_hit_rate: float
    buffer_hit_rate: float
    cost_imbalance: float
    status: str  # "ok" | "warn"
    replicas: tuple[ReplicaHealth, ...] = ()
    worker_restarts: int = 0

    def warnings(self) -> list[str]:
        """Human summaries of every warn-level signal (empty = healthy)."""
        out = []
        for row in self.shards:
            if row.status != "ok":
                out.append(
                    f"shard {row.shard}: staleness {row.staleness:.3f}, "
                    f"drift {row.drift:+.2f}"
                )
        if self.cost_imbalance > IMBALANCE_WARN:
            out.append(f"cost imbalance {self.cost_imbalance:.2f} across shards")
        for replica in self.replicas:
            if not replica.alive:
                out.append(f"replica {replica.slot}: worker dead (pid {replica.pid})")
        if self.worker_restarts:
            out.append(f"{self.worker_restarts} worker restart(s) since start")
        return out

    def to_table(self) -> str:
        """Render the per-shard health rows as an ASCII table."""
        from ..evaluation.reporting import ascii_table

        rows = [
            [
                row.shard,
                row.n_keys,
                row.buffered,
                f"{row.staleness:.3f}",
                row.queries,
                f"{row.avg_ns:.0f}",
                f"{row.p50_ns:.0f}",
                f"{row.p90_ns:.0f}",
                f"{row.p99_ns:.0f}",
                f"{row.expected_ns:.0f}",
                f"{row.drift:+.2f}",
                row.status,
            ]
            for row in self.shards
        ]
        table = ascii_table(
            [
                "shard", "keys", "buffered", "staleness", "queries",
                "avg ns", "p50", "p90", "p99", "expect ns", "drift", "status",
            ],
            rows,
        )
        summary = (
            f"status={self.status}  merges={self.merges}  "
            f"merge_queue={self.merge_queue_depth}  "
            f"cache_hit_rate={self.cache_hit_rate:.3f}  "
            f"buffer_hit_rate={self.buffer_hit_rate:.3f}  "
            f"cost_imbalance={self.cost_imbalance:.2f}"
        )
        if self.replicas:
            live = sum(1 for r in self.replicas if r.alive)
            summary += (
                f"\nreplicas: {live}/{len(self.replicas)} live, "
                f"{self.worker_restarts} restart(s)  "
                + "  ".join(
                    f"[{r.slot}] pid={r.pid} {'up' if r.alive else 'DOWN'} "
                    f"served={r.served_batches}"
                    for r in self.replicas
                )
            )
        return table + "\n" + summary


def shard_status(staleness: float, staleness_warn: float, drift: float) -> str:
    """Classify one shard: warn on runaway staleness or latency drift."""
    if staleness > staleness_warn or drift > DRIFT_WARN:
        return "warn"
    return "ok"
