"""Structured logging for the CLI and library (stdlib ``logging``).

Two formats over one ``repro`` logger hierarchy:

* ``plain`` — exactly the message, to stdout.  This is the default and
  is byte-compatible with the bare ``print`` reporting it replaced:
  ``repro <cmd>`` output is unchanged unless ``--log-format json`` is
  passed.
* ``json`` — one JSON object per record: ``ts`` (ISO-8601 UTC),
  ``level``, ``logger``, ``msg``, plus any structured fields attached
  via :func:`log_event`.

:func:`configure_logging` is idempotent and re-binds the stream each
call, so repeated CLI invocations in one process (tests with captured
stdout included) always log to the *current* ``sys.stdout``.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone
from typing import IO

__all__ = ["LOG_FORMATS", "configure_logging", "get_logger", "log_event"]

#: Accepted values of the CLI ``--log-format`` flag.
LOG_FORMATS = ("plain", "json")

#: Root of the library's logger hierarchy.
ROOT_LOGGER = "repro"


class JsonFormatter(logging.Formatter):
    """One JSON object per record, structured fields included."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.fromtimestamp(record.created, tz=timezone.utc).isoformat(),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload["fields"] = fields
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


class PlainFormatter(logging.Formatter):
    """The bare message; structured fields append as ``key=value``."""

    def format(self, record: logging.LogRecord) -> str:
        msg = record.getMessage()
        fields = getattr(record, "fields", None)
        if fields:
            suffix = " ".join(f"{k}={v}" for k, v in fields.items())
            msg = f"{msg} {suffix}" if msg else suffix
        return msg


def configure_logging(
    fmt: str = "plain",
    stream: IO[str] | None = None,
    level: int = logging.INFO,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger; returns it.

    Args:
        fmt: ``"plain"`` (byte-compatible message passthrough) or
            ``"json"`` (structured lines).
        stream: target stream; defaults to the *current*
            ``sys.stdout`` at call time.
        level: logging threshold (default INFO).
    """
    if fmt not in LOG_FORMATS:
        raise ValueError(f"log format must be one of {LOG_FORMATS}, got {fmt!r}")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
    handler.setFormatter(JsonFormatter() if fmt == "json" else PlainFormatter())
    logger.addHandler(handler)
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{name}" if name else ROOT_LOGGER)


def log_event(logger: logging.Logger, msg: str, level: int = logging.INFO, **fields) -> None:
    """Emit *msg* with structured *fields* attached to the record.

    Plain format appends ``key=value`` pairs; JSON format nests them
    under ``"fields"``.
    """
    logger.log(level, msg, extra={"fields": fields} if fields else None)
