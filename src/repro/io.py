"""Persistence helpers: key sets, smoothing results, experiment rows.

Everything writes plain ``.npz`` / ``.json`` / ``.csv`` so the
artefacts are inspectable without this library (the formats are
specified in ``docs/PERSISTENCE.md``).

The durable *serving* state — immutable sorted run files plus the
checksummed, generation-numbered manifest that makes a data
directory crash-recoverable — lives in :mod:`repro.store` and shares
this module's conventions (run files use the exact ``keys``/
``values`` npz layout :func:`save_keys` writes).  The store's entry
points are re-exported here so ``repro.io`` stays the one-stop
persistence namespace.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .core.exceptions import InvalidKeysError
from .core.segment_stats import validate_keys
from .core.smoothing import SmoothingResult

from .store import (  # noqa: F401  (re-exported persistence surface)
    DurableStore,
    Manifest,
    RunMeta,
    load_manifest,
    read_run_file,
    write_run_file,
)

__all__ = [
    "save_keys",
    "load_keys",
    "save_smoothing_result",
    "load_smoothing_result",
    "export_rows_csv",
    "DurableStore",
    "Manifest",
    "RunMeta",
    "load_manifest",
    "read_run_file",
    "write_run_file",
]


def save_keys(path: str | Path, keys: np.ndarray, values: np.ndarray | None = None) -> Path:
    """Save a key (and optional value) array to a compressed ``.npz``."""
    path = Path(path)
    arr = validate_keys(keys)
    payload = {"keys": arr}
    if values is not None:
        vals = np.asarray(values, dtype=np.int64)
        if vals.shape != arr.shape:
            raise InvalidKeysError("values must parallel keys")
        payload["values"] = vals
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_keys(path: str | Path) -> tuple[np.ndarray, np.ndarray | None]:
    """Load ``(keys, values-or-None)`` written by :func:`save_keys`."""
    with np.load(Path(path)) as data:
        keys = validate_keys(data["keys"])
        values = data["values"].astype(np.int64) if "values" in data else None
    return keys, values


def save_smoothing_result(path: str | Path, result: SmoothingResult) -> Path:
    """Persist a smoothing run (arrays in .npz, scalars in the header)."""
    path = Path(path)
    np.savez_compressed(
        path,
        original_keys=result.original_keys,
        points=result.points,
        virtual_points=np.asarray(result.virtual_points, dtype=np.int64),
        loss_trace=np.asarray(result.loss_trace, dtype=np.float64),
        scalars=np.asarray(
            [
                result.original_loss,
                result.final_loss,
                result.model.slope,
                result.model.intercept,
                float(result.model.pivot),
                float(result.budget),
                1.0 if result.stopped_early else 0.0,
                result.elapsed_seconds,
            ],
            dtype=np.float64,
        ),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_smoothing_result(path: str | Path) -> SmoothingResult:
    """Rehydrate a :class:`SmoothingResult` written by
    :func:`save_smoothing_result`."""
    from .core.linear_model import LinearModel

    with np.load(Path(path)) as data:
        scalars = data["scalars"]
        return SmoothingResult(
            original_keys=data["original_keys"].astype(np.int64),
            virtual_points=[int(v) for v in data["virtual_points"]],
            points=data["points"].astype(np.int64),
            original_loss=float(scalars[0]),
            final_loss=float(scalars[1]),
            model=LinearModel(float(scalars[2]), float(scalars[3]), int(scalars[4])),
            budget=int(scalars[5]),
            loss_trace=[float(x) for x in data["loss_trace"]],
            stopped_early=bool(scalars[6]),
            elapsed_seconds=float(scalars[7]),
        )


def export_rows_csv(path: str | Path, rows: Sequence[object]) -> Path:
    """Write a sequence of dataclass rows (e.g.
    :class:`~repro.evaluation.runner.CsvExperimentRow`) to CSV."""
    path = Path(path)
    rows = list(rows)
    if not rows:
        raise InvalidKeysError("no rows to export")
    first = rows[0]
    if not is_dataclass(first):
        raise InvalidKeysError("rows must be dataclass instances")
    fieldnames = list(asdict(first).keys())
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(asdict(row))
    return path
