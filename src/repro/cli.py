"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``  — list the synthetic datasets and their CDF hardness.
* ``smooth``    — run Algorithm 1 on a dataset (or a saved ``.npz``).
* ``build``     — build an index and print its structure.
* ``csv``       — run one CSV experiment (build → optimise → measure).
* ``levels``    — per-level query costs (the Fig. 1 view).
* ``serve``     — simulate the sharded serving layer under a mixed
  read/write workload (per-shard latency percentiles and a health
  epilogue), or compare sharded against monolithic with ``--compare``;
  ``--metrics-out`` streams JSON-lines metrics snapshots.  With
  ``--http`` the service is exposed over the network front door
  (batch JSON endpoints, admission control, optional ``--store``
  SQLite-WAL runtime store) until SIGINT/SIGTERM drains it.
* ``metrics``   — render or validate a ``--metrics-out`` JSON-lines
  file (ASCII table, Prometheus text, or raw JSON).

All output goes through the ``repro`` structured logger: the default
``--log-format plain`` is byte-compatible with the old ``print``-based
reporting, ``--log-format json`` emits one JSON object per line.

Examples::

    python -m repro datasets --n 20000
    python -m repro smooth --dataset genome --n 5000 --alpha 0.2
    python -m repro build --index lipp --dataset osm --n 10000
    python -m repro csv --index alex --dataset facebook --alpha 0.1
    python -m repro serve --index lipp --shards 8 --dataset osm --ops 50000
    python -m repro serve --index lipp --shards 4 --executor process --replicas 2
    python -m repro serve --index lipp --shards 4 --data-dir ./data --ops 20000
    python -m repro serve --index btree --shards 4 --compare
    python -m repro serve --metrics-out metrics.jsonl --ops 20000
    python -m repro serve --http --port 8000 --store runtime.db
    python -m repro metrics --in metrics.jsonl --validate
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys

import numpy as np

from .core.smoothing import smooth_keys
from .datasets import DATASETS, load, summarize
from .evaluation import ascii_table, run_csv_experiment, run_level_query_times
from .indexes import INDEX_FAMILIES
from .obs.log import LOG_FORMATS, configure_logging, get_logger

__all__ = ["main", "build_parser"]

_log = get_logger("cli")


def _say(msg: str = "") -> None:
    """Emit one line of command output through the structured logger."""
    _log.info(msg)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned indexes with distribution smoothing via virtual points",
    )
    parser.add_argument(
        "--log-format", choices=LOG_FORMATS, default="plain",
        help="output format: 'plain' (default, print-compatible) or 'json'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="list datasets and hardness")
    p_datasets.add_argument("--n", type=int, default=10_000)

    p_smooth = sub.add_parser("smooth", help="run Algorithm 1 on a dataset")
    p_smooth.add_argument("--dataset", choices=sorted(DATASETS), default="genome")
    p_smooth.add_argument("--n", type=int, default=5_000)
    p_smooth.add_argument("--alpha", type=float, default=0.1)
    p_smooth.add_argument("--keys-file", help=".npz with a 'keys' array (overrides --dataset)")
    p_smooth.add_argument("--save", help="write the smoothing result to this .npz")

    p_build = sub.add_parser("build", help="build an index, print structure")
    p_build.add_argument("--index", choices=sorted(INDEX_FAMILIES), default="lipp")
    p_build.add_argument("--dataset", choices=sorted(DATASETS), default="facebook")
    p_build.add_argument("--n", type=int, default=10_000)

    p_csv = sub.add_parser("csv", help="run one CSV experiment")
    p_csv.add_argument("--index", choices=["lipp", "sali", "alex"], default="lipp")
    p_csv.add_argument("--dataset", choices=sorted(DATASETS), default="facebook")
    p_csv.add_argument("--n", type=int, default=10_000)
    p_csv.add_argument("--alpha", type=float, default=0.1)
    p_csv.add_argument("--export", help="append the result row to this CSV file")

    p_levels = sub.add_parser("levels", help="per-level query cost (Fig. 1 view)")
    p_levels.add_argument("--index", choices=["lipp", "sali", "alex"], default="lipp")
    p_levels.add_argument("--dataset", choices=sorted(DATASETS), default="genome")
    p_levels.add_argument("--n", type=int, default=10_000)

    p_serve = sub.add_parser(
        "serve", help="simulate the sharded serving layer on a workload"
    )
    p_serve.add_argument("--index", choices=sorted(INDEX_FAMILIES), default="lipp")
    p_serve.add_argument("--dataset", choices=sorted(DATASETS), default="facebook")
    p_serve.add_argument("--n", type=int, default=20_000)
    p_serve.add_argument("--shards", type=int, default=8)
    p_serve.add_argument(
        "--mode", choices=["equi_depth", "cost_balanced"], default="equi_depth"
    )
    p_serve.add_argument(
        "--alpha", default=None,
        help="per-shard smoothing α: a float, 'auto', or 'auto:<float>'",
    )
    p_serve.add_argument("--ops", type=int, default=50_000, help="total operations")
    p_serve.add_argument("--read-frac", type=float, default=0.9)
    p_serve.add_argument("--batch", type=int, default=2_048)
    p_serve.add_argument(
        "--zipf", action="store_true", help="Zipf-skewed reads instead of uniform"
    )
    p_serve.add_argument(
        "--executor", choices=["serial", "thread", "process"], default=None,
        help="shard execution backend; 'process' serves zero-copy shard "
             "views out of shared memory on worker processes",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0,
        help="worker count for --executor thread/process "
             "(default: sized to the shard count)",
    )
    p_serve.add_argument(
        "--replicas", type=int, default=1,
        help="process executor: replicas per shard (read fan-out + failover)",
    )
    p_serve.add_argument(
        "--timeout-s", type=float, default=30.0,
        help="process executor: per-batch IPC timeout in seconds",
    )
    p_serve.add_argument(
        "--threads", type=int, default=0,
        help="[deprecated] shard worker threads; use --executor thread --workers N",
    )
    p_serve.add_argument("--cache-blocks", type=int, default=0, help="LRU cache size")
    p_serve.add_argument("--staleness", type=float, default=0.1,
                         help="write-buffer merge threshold (buffered/stored)")
    p_serve.add_argument(
        "--data-dir", default=None, metavar="DIR",
        help="durable store directory (runs + manifest); opened if it "
             "already holds a snapshot, initialised from the dataset "
             "otherwise — see docs/PERSISTENCE.md for the layout",
    )
    p_serve.add_argument(
        "--flush-threshold", type=int, default=4096, metavar="N",
        help="with --data-dir: freeze a shard's unflushed writes into "
             "a durable run once N accumulate (0 = only flush on "
             "merge/close); default 4096",
    )
    p_serve.add_argument(
        "--compaction", default="tiered", metavar="STRATEGY",
        help="with --data-dir: background compaction strategy — "
             "'tiered' (size-tiered bin-pack, default), 'sortmerge' "
             "(full fold into fresh bases), optionally with a run "
             "bound like 'tiered:8' / 'sortmerge:4'",
    )
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--compare", action="store_true",
        help="run the sharded-vs-monolithic comparison table instead",
    )
    p_serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable instrumentation and stream JSON-lines metrics "
             "snapshots to PATH (truncated first)",
    )
    p_serve.add_argument(
        "--metrics-every", type=int, default=0, metavar="N",
        help="with --metrics-out, also snapshot every N workload batches",
    )
    p_serve.add_argument(
        "--http", action="store_true",
        help="serve the index over HTTP (batch JSON endpoints + /metrics) "
             "instead of simulating a workload; runs until SIGINT/SIGTERM",
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="HTTP bind address")
    p_serve.add_argument(
        "--port", type=int, default=8000,
        help="HTTP port (0 lets the OS pick; the bound port is logged)",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=64,
        help="HTTP admission: batches queued beyond the in-flight ones "
             "before requests are rejected with 429",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=2,
        help="HTTP admission: batches executing concurrently",
    )
    p_serve.add_argument(
        "--store", default=None, metavar="PATH",
        help="HTTP mode: SQLite-WAL runtime store persisting op "
             "counters, the op log, and the query cache across restarts",
    )
    p_serve.add_argument(
        "--no-replay", action="store_true",
        help="with --store, skip re-applying the logged write ops on startup",
    )
    p_serve.add_argument(
        "--metrics-every-s", type=float, default=5.0, metavar="S",
        help="HTTP mode with --metrics-out: snapshot period in seconds",
    )

    p_metrics = sub.add_parser(
        "metrics", help="render or validate a JSON-lines metrics file"
    )
    p_metrics.add_argument(
        "--in", dest="input", required=True, metavar="PATH",
        help="JSON-lines metrics file (from serve --metrics-out)",
    )
    p_metrics.add_argument(
        "--format", choices=["table", "prom", "json"], default="table",
        help="how to render the latest snapshot (default: table)",
    )
    p_metrics.add_argument(
        "--validate", action="store_true",
        help="check the stream against the snapshot schema instead of "
             "rendering; exit 1 with one error per line if invalid",
    )

    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(DATASETS):
        keys = load(name, args.n)
        s = summarize(name, keys)
        rows.append(
            [name, s.n, f"{s.global_r2:.4f}", f"{s.local_r2_mean:.4f}", s.pla_segments]
        )
    _say(
        ascii_table(
            ["dataset", "keys", "global R2", "local R2", "PLA segments"], rows
        )
    )
    return 0


def _cmd_smooth(args: argparse.Namespace) -> int:
    if args.keys_file:
        from .io import load_keys

        keys, __ = load_keys(args.keys_file)
        source = args.keys_file
    else:
        keys = load(args.dataset, args.n)
        source = f"{args.dataset} analogue"
    result = smooth_keys(keys, alpha=args.alpha)
    _say(f"source: {source} ({keys.size} keys), alpha={args.alpha}")
    _say(f"virtual points inserted: {result.n_virtual} / budget {result.budget}")
    _say(f"loss: {result.original_loss:,.1f} -> {result.final_loss:,.1f} "
          f"({result.loss_improvement_pct:.1f}% better)")
    _say(f"elapsed: {result.elapsed_seconds:.2f}s"
          + ("  (stopped early: no further gain)" if result.stopped_early else ""))
    if args.save:
        from .io import save_smoothing_result

        path = save_smoothing_result(args.save, result)
        _say(f"saved to {path}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    keys = load(args.dataset, args.n)
    index = INDEX_FAMILIES[args.index].build(keys)
    _say(f"{args.index} over {keys.size} {args.dataset} keys:")
    _say(f"  height:     {index.height()}")
    _say(f"  nodes:      {index.node_count()}")
    _say(f"  size:       {index.size_bytes() / 1024:.1f} KiB")
    histogram = getattr(index, "level_histogram", None)
    if histogram is not None:
        _say(f"  keys/level: {histogram()}")
    return 0


def _cmd_csv(args: argparse.Namespace) -> int:
    row = run_csv_experiment(args.index, args.dataset, n=args.n, alpha=args.alpha)
    _say(
        ascii_table(
            ["metric", "value"],
            [
                ["index / dataset", f"{row.index_family} / {row.dataset}"],
                ["keys", row.n],
                ["alpha", row.alpha],
                ["height", f"{row.height_before} -> {row.height_after}"],
                ["promoted keys", f"{row.promoted_keys} ({row.promoted_pct:.1f}% of promotable)"],
                ["query improvement", f"{row.query_improvement_pct:.1f}%"],
                ["total time saved", f"{row.total_time_saved_ns:,.0f} sim-ns"],
                ["storage change", f"{row.storage_increase_pct:+.1f}%"],
                ["node reduction", f"{row.node_reduction_pct:.1f}%"],
                ["CSV preprocessing", f"{row.preprocessing_seconds:.2f}s"],
            ],
        )
    )
    if args.export:
        from .io import export_rows_csv

        export_rows_csv(args.export, [row])
        _say(f"row exported to {args.export}")
    return 0


def _cmd_levels(args: argparse.Namespace) -> int:
    rows = run_level_query_times(args.index, args.dataset, n=args.n)
    _say(
        ascii_table(
            ["level", "keys", "avg query (sim ns)"],
            [[r.level, r.n_keys_at_level, r.avg_simulated_ns] for r in rows],
        )
    )
    return 0


def _parse_alpha(raw: str | None) -> float | str | None:
    if raw is None:
        return None
    if raw.startswith("auto"):
        return raw
    return float(raw)


def _executor_spec(args: argparse.Namespace):
    """Build the ExecutorSpec requested on the serve command line.

    Returns None when only the deprecated ``--threads`` knob (or
    nothing) was given — the legacy ``max_workers`` shim then decides.
    """
    from .serving import ExecutorSpec

    if args.executor is None:
        return None
    return ExecutorSpec(
        kind=args.executor,
        n_workers=args.workers or None,
        n_replicas=args.replicas,
        timeout_s=args.timeout_s,
    )


def _make_service(args: argparse.Namespace, keys: np.ndarray):
    """Open-or-build the :class:`IndexService` a serve run drives.

    With ``--data-dir`` pointing at an initialised store the service
    recovers from the snapshot (the dataset flags only describe the
    fallback build); otherwise it builds from the dataset and — when
    a data dir was given — immediately snapshots into it.
    """
    from .serving import IndexService
    from .store import DurableStore

    store = DurableStore(args.data_dir) if args.data_dir else None
    durability = dict(
        store=store,
        flush_threshold=args.flush_threshold,
        compaction=args.compaction if store is not None else None,
    )
    if store is not None and store.is_initialized():
        service = IndexService.open_snapshot(
            store,
            executor=_executor_spec(args),
            max_workers=args.threads or None,
            cache_blocks=args.cache_blocks,
            staleness_threshold=args.staleness,
            flush_threshold=args.flush_threshold,
            compaction=args.compaction,
        )
        _say(
            f"data dir: opened generation {service.durable_generation()} from "
            f"{store.data_dir} ({service.n_keys} keys, "
            f"{store.runs_outstanding()} outstanding run(s)); "
            f"--dataset/--n/--index ignored"
        )
        return service
    service = IndexService.build(
        keys,
        family=args.index,
        n_shards=args.shards,
        mode=args.mode,
        alpha=_parse_alpha(args.alpha),
        executor=_executor_spec(args),
        max_workers=args.threads or None,
        cache_blocks=args.cache_blocks,
        staleness_threshold=args.staleness,
        **durability,
    )
    if store is not None:
        _say(
            f"data dir: initialised {store.data_dir} at generation "
            f"{service.durable_generation()} (compaction {args.compaction}, "
            f"flush threshold {args.flush_threshold})"
        )
    return service


@contextlib.contextmanager
def _close_on_signals():
    """Convert SIGTERM into an orderly :class:`SystemExit`.

    The ``serve`` body runs inside ``with IndexService...``, whose
    ``close()`` does the ordered merge-drain + executor teardown — but
    only when the exception actually unwinds through the block.
    SIGINT already raises ``KeyboardInterrupt`` there; an unhandled
    SIGTERM, by contrast, kills the process outright and skips the
    teardown.  Installed for the duration of a ``serve`` run.
    """

    def _handler(signum: int, frame) -> None:
        raise SystemExit(128 + signum)

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _cmd_serve_http(args: argparse.Namespace) -> int:
    """The ``serve --http`` branch: the network front door."""
    from .obs.metrics import MetricsRegistry, scoped_registry
    from .server import RuntimeStore, run_http_server

    keys = load(args.dataset, args.n)
    # The HTTP server is long-lived: instrumentation is always on so
    # GET /metrics and --metrics-out have something to export.
    registry = MetricsRegistry(enabled=True)
    store = RuntimeStore(args.store) if args.store else None
    with scoped_registry(registry), _make_service(args, keys) as service:
        _say(
            f"http front door: {service.family} x {service.n_shards} shards over "
            f"{service.n_keys} keys; admission "
            f"{args.max_pending} pending / {args.max_inflight} in flight"
        )
        if store is not None:
            _say(f"runtime store: {store.path} (journal mode {store.journal_mode()})")
        code = run_http_server(
            service,
            args.host,
            args.port,
            registry=registry,
            store=store,
            max_pending=args.max_pending,
            max_inflight=args.max_inflight,
            metrics_out=args.metrics_out,
            metrics_every_s=args.metrics_every_s,
            replay=not args.no_replay,
            on_listening=lambda h, p: _say(f"http: listening on http://{h}:{p}"),
        )
        _say("http: drained and stopped")
        return code


def _cmd_serve(args: argparse.Namespace) -> int:
    from .evaluation.runner import run_sharded_experiment
    from .obs.export import write_jsonl
    from .obs.metrics import MetricsRegistry, scoped_registry
    from .workloads import run_service_workload

    if args.executor and args.threads:
        _say("--threads is superseded by --executor; "
             "use --executor thread --workers N")
        return 2
    if args.http:
        if args.compare:
            _say("--http and --compare are mutually exclusive")
            return 2
        return _cmd_serve_http(args)
    executor = _executor_spec(args)

    if args.compare:
        rows = run_sharded_experiment(
            args.index,
            args.dataset,
            n=args.n,
            shard_counts=tuple(sorted({k for k in (1, 2, args.shards) if k <= args.shards})),
            mode=args.mode,
            alpha=_parse_alpha(args.alpha),
            n_queries=max(args.ops, 1),
            seed=args.seed,
            executor=executor,
            max_workers=args.threads or None,
        )
        _say(
            ascii_table(
                ["configuration", "build s", "lookups/s", "avg sim ns",
                 "p99 sim ns", "cost imbalance"],
                [
                    [r.label, f"{r.build_seconds:.2f}",
                     f"{r.lookups_per_second:,.0f}", f"{r.avg_simulated_ns:.0f}",
                     f"{r.p99_simulated_ns:.0f}", f"{r.cost_imbalance:.2f}"]
                    for r in rows
                ],
            )
        )
        return 0

    keys = load(args.dataset, args.n)
    # --metrics-out flips the whole stack's instrumentation on by
    # installing an enabled registry globally for the run; every
    # layer (smoothing, indexes, router, service) reports into it.
    registry = MetricsRegistry(enabled=args.metrics_out is not None)
    if args.metrics_out:
        open(args.metrics_out, "w", encoding="utf-8").close()

    def snap() -> None:
        if args.metrics_out:
            write_jsonl(args.metrics_out, registry)

    with scoped_registry(registry), _make_service(
        args, keys
    ) as service, _close_on_signals():
        snap()
        plan = service.plan
        spec = service.router.executor_spec
        exec_desc = spec.kind
        if spec.kind != "serial":
            exec_desc += f" x{spec.resolved_workers(plan.n_shards)}"
        if spec.kind == "process" and spec.n_replicas > 1:
            exec_desc += f" (replicas={spec.n_replicas})"
        _say(
            f"{service.family} x {plan.n_shards} shards ({plan.mode}) over "
            f"{keys.size} {args.dataset} keys; executor={exec_desc}, "
            f"cache={args.cache_blocks} blocks"
        )
        _say(
            "  shard sizes: "
            + ", ".join(str(s.size) for s in plan.shard_keys)
            + f"  (cost imbalance {plan.cost_imbalance():.2f})"
        )
        if any(a is not None for a in plan.alphas):
            _say(
                "  per-shard alpha: "
                + ", ".join("-" if a is None else f"{a:.3f}" for a in plan.alphas)
            )
        every = max(args.metrics_every, 0)
        try:
            report = run_service_workload(
                service,
                keys,
                n_ops=args.ops,
                read_fraction=args.read_frac,
                batch_size=args.batch,
                distribution="zipf" if args.zipf else "uniform",
                seed=args.seed,
                on_batch=(
                    (lambda b: snap() if (b + 1) % every == 0 else None)
                    if args.metrics_out and every
                    else None
                ),
            )
        except (KeyboardInterrupt, SystemExit):
            # The with-block still runs IndexService.close(): merges
            # drain and executor workers stop in order before exit.
            _say("\ninterrupted — draining merges and closing shards")
            snap()
            return 130
        _say(
            f"\nworkload: {report.n_reads} reads / {report.n_writes} writes in "
            f"{report.n_batches} batches, {report.wall_seconds:.2f}s wall "
            f"({report.ops_per_second:,.0f} ops/s), read hit rate "
            f"{report.read_hit_rate:.3f}"
            + (
                f", {report.worker_restarts} worker restart(s)"
                if report.worker_restarts
                else ""
            )
        )
        stats = service.stats
        _say(
            f"buffers: {stats.buffer_hits} hits, {stats.merges} merges "
            f"({stats.merged_keys} keys merged, {stats.resmoothed_shards} "
            f"re-smoothed); cache: {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses ({stats.cache_fills} fills)"
        )
        if service.store is not None:
            _say(
                f"durability: generation {service.durable_generation()}, "
                f"{service.store.runs_outstanding()} outstanding run(s), "
                f"{stats.flushes} flush(es) ({stats.flushed_keys} keys), "
                f"{stats.compactions} compaction(s)"
            )
        _say("\nper-shard latency percentiles (simulated ns):")
        _say(service.latency_report().to_table())
        health = service.health_report()
        _say("\nshard health:")
        _say(health.to_table())
        for warning in health.warnings():
            _say(f"  warning: {warning}")
        snap()
        if args.metrics_out:
            _say(f"\nmetrics written to {args.metrics_out}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs.export import snapshot_table, snapshot_to_prometheus, validate_metrics_lines

    try:
        with open(args.input, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        _say(f"cannot read {args.input}: {exc}")
        return 1
    if args.validate:
        errors = validate_metrics_lines(lines)
        if errors:
            for error in errors:
                _say(error)
            return 1
        n = sum(1 for line in lines if line.strip())
        _say(f"{args.input}: {n} snapshot line(s), schema valid")
        return 0
    snaps = [json.loads(line) for line in lines if line.strip()]
    if not snaps:
        _say(f"{args.input}: no snapshot lines")
        return 1
    latest = snaps[-1]
    if args.format == "json":
        _say(json.dumps(latest, sort_keys=True))
    elif args.format == "prom":
        _say(snapshot_to_prometheus(latest))
    else:
        _say(snapshot_table(latest))
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "smooth": _cmd_smooth,
    "build": _cmd_build,
    "csv": _cmd_csv,
    "levels": _cmd_levels,
    "serve": _cmd_serve,
    "metrics": _cmd_metrics,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.log_format)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
