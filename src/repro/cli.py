"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``  — list the synthetic datasets and their CDF hardness.
* ``smooth``    — run Algorithm 1 on a dataset (or a saved ``.npz``).
* ``build``     — build an index and print its structure.
* ``csv``       — run one CSV experiment (build → optimise → measure).
* ``levels``    — per-level query costs (the Fig. 1 view).
* ``serve``     — simulate the sharded serving layer under a mixed
  read/write workload (per-shard latency percentiles), or compare
  sharded against monolithic with ``--compare``.

Examples::

    python -m repro datasets --n 20000
    python -m repro smooth --dataset genome --n 5000 --alpha 0.2
    python -m repro build --index lipp --dataset osm --n 10000
    python -m repro csv --index alex --dataset facebook --alpha 0.1
    python -m repro serve --index lipp --shards 8 --dataset osm --ops 50000
    python -m repro serve --index btree --shards 4 --compare
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.smoothing import smooth_keys
from .datasets import DATASETS, load, summarize
from .evaluation import ascii_table, run_csv_experiment, run_level_query_times
from .indexes import INDEX_FAMILIES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Learned indexes with distribution smoothing via virtual points",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="list datasets and hardness")
    p_datasets.add_argument("--n", type=int, default=10_000)

    p_smooth = sub.add_parser("smooth", help="run Algorithm 1 on a dataset")
    p_smooth.add_argument("--dataset", choices=sorted(DATASETS), default="genome")
    p_smooth.add_argument("--n", type=int, default=5_000)
    p_smooth.add_argument("--alpha", type=float, default=0.1)
    p_smooth.add_argument("--keys-file", help=".npz with a 'keys' array (overrides --dataset)")
    p_smooth.add_argument("--save", help="write the smoothing result to this .npz")

    p_build = sub.add_parser("build", help="build an index, print structure")
    p_build.add_argument("--index", choices=sorted(INDEX_FAMILIES), default="lipp")
    p_build.add_argument("--dataset", choices=sorted(DATASETS), default="facebook")
    p_build.add_argument("--n", type=int, default=10_000)

    p_csv = sub.add_parser("csv", help="run one CSV experiment")
    p_csv.add_argument("--index", choices=["lipp", "sali", "alex"], default="lipp")
    p_csv.add_argument("--dataset", choices=sorted(DATASETS), default="facebook")
    p_csv.add_argument("--n", type=int, default=10_000)
    p_csv.add_argument("--alpha", type=float, default=0.1)
    p_csv.add_argument("--export", help="append the result row to this CSV file")

    p_levels = sub.add_parser("levels", help="per-level query cost (Fig. 1 view)")
    p_levels.add_argument("--index", choices=["lipp", "sali", "alex"], default="lipp")
    p_levels.add_argument("--dataset", choices=sorted(DATASETS), default="genome")
    p_levels.add_argument("--n", type=int, default=10_000)

    p_serve = sub.add_parser(
        "serve", help="simulate the sharded serving layer on a workload"
    )
    p_serve.add_argument("--index", choices=sorted(INDEX_FAMILIES), default="lipp")
    p_serve.add_argument("--dataset", choices=sorted(DATASETS), default="facebook")
    p_serve.add_argument("--n", type=int, default=20_000)
    p_serve.add_argument("--shards", type=int, default=8)
    p_serve.add_argument(
        "--mode", choices=["equi_depth", "cost_balanced"], default="equi_depth"
    )
    p_serve.add_argument(
        "--alpha", default=None,
        help="per-shard smoothing α: a float, 'auto', or 'auto:<float>'",
    )
    p_serve.add_argument("--ops", type=int, default=50_000, help="total operations")
    p_serve.add_argument("--read-frac", type=float, default=0.9)
    p_serve.add_argument("--batch", type=int, default=2_048)
    p_serve.add_argument(
        "--zipf", action="store_true", help="Zipf-skewed reads instead of uniform"
    )
    p_serve.add_argument("--threads", type=int, default=0, help="shard worker threads")
    p_serve.add_argument("--cache-blocks", type=int, default=0, help="LRU cache size")
    p_serve.add_argument("--staleness", type=float, default=0.1,
                         help="write-buffer merge threshold (buffered/stored)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--compare", action="store_true",
        help="run the sharded-vs-monolithic comparison table instead",
    )

    return parser


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in sorted(DATASETS):
        keys = load(name, args.n)
        s = summarize(name, keys)
        rows.append(
            [name, s.n, f"{s.global_r2:.4f}", f"{s.local_r2_mean:.4f}", s.pla_segments]
        )
    print(
        ascii_table(
            ["dataset", "keys", "global R2", "local R2", "PLA segments"], rows
        )
    )
    return 0


def _cmd_smooth(args: argparse.Namespace) -> int:
    if args.keys_file:
        from .io import load_keys

        keys, __ = load_keys(args.keys_file)
        source = args.keys_file
    else:
        keys = load(args.dataset, args.n)
        source = f"{args.dataset} analogue"
    result = smooth_keys(keys, alpha=args.alpha)
    print(f"source: {source} ({keys.size} keys), alpha={args.alpha}")
    print(f"virtual points inserted: {result.n_virtual} / budget {result.budget}")
    print(f"loss: {result.original_loss:,.1f} -> {result.final_loss:,.1f} "
          f"({result.loss_improvement_pct:.1f}% better)")
    print(f"elapsed: {result.elapsed_seconds:.2f}s"
          + ("  (stopped early: no further gain)" if result.stopped_early else ""))
    if args.save:
        from .io import save_smoothing_result

        path = save_smoothing_result(args.save, result)
        print(f"saved to {path}")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    keys = load(args.dataset, args.n)
    index = INDEX_FAMILIES[args.index].build(keys)
    print(f"{args.index} over {keys.size} {args.dataset} keys:")
    print(f"  height:     {index.height()}")
    print(f"  nodes:      {index.node_count()}")
    print(f"  size:       {index.size_bytes() / 1024:.1f} KiB")
    histogram = getattr(index, "level_histogram", None)
    if histogram is not None:
        print(f"  keys/level: {histogram()}")
    return 0


def _cmd_csv(args: argparse.Namespace) -> int:
    row = run_csv_experiment(args.index, args.dataset, n=args.n, alpha=args.alpha)
    print(
        ascii_table(
            ["metric", "value"],
            [
                ["index / dataset", f"{row.index_family} / {row.dataset}"],
                ["keys", row.n],
                ["alpha", row.alpha],
                ["height", f"{row.height_before} -> {row.height_after}"],
                ["promoted keys", f"{row.promoted_keys} ({row.promoted_pct:.1f}% of promotable)"],
                ["query improvement", f"{row.query_improvement_pct:.1f}%"],
                ["total time saved", f"{row.total_time_saved_ns:,.0f} sim-ns"],
                ["storage change", f"{row.storage_increase_pct:+.1f}%"],
                ["node reduction", f"{row.node_reduction_pct:.1f}%"],
                ["CSV preprocessing", f"{row.preprocessing_seconds:.2f}s"],
            ],
        )
    )
    if args.export:
        from .io import export_rows_csv

        export_rows_csv(args.export, [row])
        print(f"row exported to {args.export}")
    return 0


def _cmd_levels(args: argparse.Namespace) -> int:
    rows = run_level_query_times(args.index, args.dataset, n=args.n)
    print(
        ascii_table(
            ["level", "keys", "avg query (sim ns)"],
            [[r.level, r.n_keys_at_level, r.avg_simulated_ns] for r in rows],
        )
    )
    return 0


def _parse_alpha(raw: str | None) -> float | str | None:
    if raw is None:
        return None
    if raw.startswith("auto"):
        return raw
    return float(raw)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .evaluation.runner import run_sharded_experiment
    from .serving import IndexService
    from .workloads import run_service_workload

    if args.compare:
        rows = run_sharded_experiment(
            args.index,
            args.dataset,
            n=args.n,
            shard_counts=tuple(sorted({k for k in (1, 2, args.shards) if k <= args.shards})),
            mode=args.mode,
            alpha=_parse_alpha(args.alpha),
            n_queries=max(args.ops, 1),
            seed=args.seed,
            max_workers=args.threads or None,
        )
        print(
            ascii_table(
                ["configuration", "build s", "lookups/s", "avg sim ns",
                 "p99 sim ns", "cost imbalance"],
                [
                    [r.label, f"{r.build_seconds:.2f}",
                     f"{r.lookups_per_second:,.0f}", f"{r.avg_simulated_ns:.0f}",
                     f"{r.p99_simulated_ns:.0f}", f"{r.cost_imbalance:.2f}"]
                    for r in rows
                ],
            )
        )
        return 0

    keys = load(args.dataset, args.n)
    with IndexService.build(
        keys,
        family=args.index,
        n_shards=args.shards,
        mode=args.mode,
        alpha=_parse_alpha(args.alpha),
        max_workers=args.threads or None,
        cache_blocks=args.cache_blocks,
        staleness_threshold=args.staleness,
    ) as service:
        plan = service.plan
        print(
            f"{args.index} x {plan.n_shards} shards ({plan.mode}) over "
            f"{keys.size} {args.dataset} keys; threads={args.threads or 'off'}, "
            f"cache={args.cache_blocks} blocks"
        )
        print(
            "  shard sizes: "
            + ", ".join(str(s.size) for s in plan.shard_keys)
            + f"  (cost imbalance {plan.cost_imbalance():.2f})"
        )
        if any(a is not None for a in plan.alphas):
            print(
                "  per-shard alpha: "
                + ", ".join("-" if a is None else f"{a:.3f}" for a in plan.alphas)
            )
        report = run_service_workload(
            service,
            keys,
            n_ops=args.ops,
            read_fraction=args.read_frac,
            batch_size=args.batch,
            distribution="zipf" if args.zipf else "uniform",
            seed=args.seed,
        )
        print(
            f"\nworkload: {report.n_reads} reads / {report.n_writes} writes in "
            f"{report.n_batches} batches, {report.wall_seconds:.2f}s wall "
            f"({report.ops_per_second:,.0f} ops/s), read hit rate "
            f"{report.read_hit_rate:.3f}"
        )
        stats = service.stats
        print(
            f"buffers: {stats.buffer_hits} hits, {stats.merges} merges "
            f"({stats.merged_keys} keys merged, {stats.resmoothed_shards} "
            f"re-smoothed); cache: {stats.cache_hits} hits / "
            f"{stats.cache_misses} misses ({stats.cache_fills} fills)"
        )
        print("\nper-shard latency percentiles (simulated ns):")
        print(service.latency_report().to_table())
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "smooth": _cmd_smooth,
    "build": _cmd_build,
    "csv": _cmd_csv,
    "levels": _cmd_levels,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
