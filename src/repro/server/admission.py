"""Admission control for the HTTP front door.

A server that accepts every request it can parse melts down the
moment offered load exceeds capacity: queues grow without bound,
latency explodes, and by the time a response is written the client
has long since timed out.  :class:`AdmissionController` bounds the
damage with two knobs:

* ``max_inflight`` — batches executing concurrently (each occupies
  one worker thread; the index stack releases the GIL inside numpy,
  but the service's own bookkeeping is lock-protected, so a small
  number is both safe and fast).
* ``max_pending`` — batches *queued* behind the in-flight ones.

A request arriving when ``queued + running == max_pending +
max_inflight`` is rejected immediately — the HTTP layer turns that
into ``429 Too Many Requests`` with a ``Retry-After`` hint derived
from the observed per-batch service time — instead of being buried
in an invisible backlog.  Rejection is *cheap* (no thread, no queue
slot), which is what lets the server recover the instant load drops.

Shutdown is graceful by construction: :meth:`close` flips the
controller into draining mode (new work is refused with
:class:`ClosingError` → ``503``) and :meth:`drain` waits until every
*admitted* batch has finished executing — accepted work is never
dropped, which the shutdown tests assert.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

from ..obs.metrics import MetricsRegistry, get_registry

__all__ = ["AdmissionController", "ClosingError", "OverloadedError"]

T = TypeVar("T")

#: Fallback per-batch estimate before any batch has completed, and
#: the floor of every ``Retry-After`` hint (HTTP wants whole seconds).
MIN_RETRY_AFTER_S = 1.0

#: EWMA weight of the latest batch in the service-time estimate.
SERVICE_TIME_ALPHA = 0.2


class OverloadedError(Exception):
    """Raised when the bounded request queue is full.

    ``retry_after_s`` is the suggested client back-off: the time the
    current backlog needs to clear at the observed per-batch service
    rate, rounded up to whole seconds.
    """

    def __init__(self, retry_after_s: float, queued: int, running: int):
        self.retry_after_s = float(retry_after_s)
        self.queued = int(queued)
        self.running = int(running)
        super().__init__(
            f"admission queue full ({queued} queued, {running} in flight); "
            f"retry after {retry_after_s:.0f}s"
        )


class ClosingError(Exception):
    """Raised for work submitted after shutdown began (HTTP: 503)."""


class AdmissionController:
    """Bounded request queue + worker pool for service batches.

    Create inside a running event loop.  :meth:`run` admits one
    callable, waits for a worker slot, executes it on the pool, and
    returns its result; accounting (admitted / rejected / completed,
    in-flight and queued gauges, per-batch seconds) is mirrored into
    the metrics registry so ``/metrics`` exposes the overload state.
    """

    def __init__(
        self,
        max_pending: int = 64,
        max_inflight: int = 2,
        registry: MetricsRegistry | None = None,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.registry = registry if registry is not None else get_registry()
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="http-batch"
        )
        #: Admitted batches not yet completed (queued + running).
        self._admitted = 0
        self._running = 0
        self._closing = False
        self._drained = asyncio.Event()
        self._drained.set()
        #: EWMA of per-batch wall seconds; guarded by a plain lock
        #: because it is updated from worker threads' completions.
        self._avg_batch_s = 0.0
        self._avg_lock = threading.Lock()
        reg = self.registry
        self._c_admitted = reg.counter("http_admitted_total")
        self._c_rejected = reg.counter("http_rejected_total")
        self._c_completed = reg.counter("http_completed_total")
        self._g_inflight = reg.gauge("http_inflight_batches")
        self._g_queued = reg.gauge("http_queued_batches")
        self._h_batch_s = reg.histogram("http_batch_seconds")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Admitted batches waiting for a worker slot."""
        return max(0, self._admitted - self._running)

    @property
    def running(self) -> int:
        """Batches currently executing on the pool."""
        return self._running

    @property
    def closing(self) -> bool:
        return self._closing

    def retry_after_s(self) -> float:
        """Suggested back-off: backlog clear time at the observed rate."""
        with self._avg_lock:
            avg = self._avg_batch_s
        if avg <= 0.0:
            return MIN_RETRY_AFTER_S
        backlog = self._admitted + 1  # the request being rejected
        per_slot = backlog / self.max_inflight
        return max(MIN_RETRY_AFTER_S, math.ceil(per_slot * avg))

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    async def run(self, fn: Callable[[], T]) -> T:
        """Admit *fn*, execute it on the worker pool, return its result.

        Raises :class:`ClosingError` once shutdown began and
        :class:`OverloadedError` when the bounded queue is full; the
        callable's own exceptions propagate unchanged.
        """
        if self._closing:
            raise ClosingError("server is draining")
        if self._admitted >= self.max_pending + self.max_inflight:
            self._c_rejected.inc()
            raise OverloadedError(self.retry_after_s(), self.queued, self._running)
        self._admitted += 1
        self._drained.clear()
        self._c_admitted.inc()
        self._g_queued.set(self.queued)
        loop = asyncio.get_running_loop()
        try:
            async with self._slots:
                self._running += 1
                self._g_inflight.set(self._running)
                self._g_queued.set(self.queued)
                start = time.perf_counter()
                try:
                    return await loop.run_in_executor(self._pool, fn)
                finally:
                    elapsed = time.perf_counter() - start
                    self._running -= 1
                    self._observe_batch(elapsed)
        finally:
            self._admitted -= 1
            self._c_completed.inc()
            self._g_inflight.set(self._running)
            self._g_queued.set(self.queued)
            if self._admitted == 0:
                self._drained.set()

    def _observe_batch(self, elapsed: float) -> None:
        with self._avg_lock:
            if self._avg_batch_s == 0.0:
                self._avg_batch_s = elapsed
            else:
                self._avg_batch_s += SERVICE_TIME_ALPHA * (elapsed - self._avg_batch_s)
        self._h_batch_s.observe(elapsed)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse new work from now on (idempotent)."""
        self._closing = True

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait until every admitted batch completed; True on success.

        Call :meth:`close` first — otherwise new admissions can keep
        the controller busy forever.  With a *timeout*, returns False
        once it elapses (in-flight work keeps running on the daemon
        pool; nothing is cancelled mid-batch).
        """
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    def shutdown_pool(self) -> None:
        """Stop the worker pool once drained (idempotent)."""
        self._pool.shutdown(wait=True, cancel_futures=False)
