"""Closed-loop HTTP load driver and the client it is built from.

:class:`HttpIndexClient` is a thin synchronous JSON client over one
keep-alive ``http.client`` connection — the per-request cost is one
``send`` + one ``recv``, so the driver measures the server, not
client-side connection churn.

:func:`run_load` drives N concurrent closed-loop clients (each waits
for its response before issuing the next request — offered load is
``clients / latency``, the classical closed-loop model) against the
batch endpoints for a fixed duration and reports sustained RPS,
keys/s, and p50/p99 request latency.  ``429`` responses are counted
and backed off, not treated as errors: hitting the admission limit
under deliberate overload is the server working as designed.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["HttpIndexClient", "HttpStatusError", "LoadReport", "run_load"]


class HttpStatusError(Exception):
    """Non-2xx response; carries ``status``, ``body``, ``headers``."""

    def __init__(self, status: int, body: dict | str, headers: dict[str, str]):
        self.status = int(status)
        self.body = body
        self.headers = headers
        super().__init__(f"HTTP {status}: {body}")

    @property
    def retry_after_s(self) -> float:
        try:
            return float(self.headers.get("retry-after", 0.0))
        except ValueError:
            return 0.0


class HttpIndexClient:
    """Blocking JSON client for the front door's endpoints."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: http.client.HTTPConnection | None = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def request(
        self, method: str, path: str, obj: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        """One request; reconnects once if the keep-alive conn dropped."""
        body = None if obj is None else json.dumps(obj).encode("utf-8")
        headers = {} if body is None else {"Content-Type": "application/json"}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = response.read()
                return (
                    response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload,
                )
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def _json(self, method: str, path: str, obj: dict | None = None) -> dict:
        status, headers, payload = self.request(method, path, obj)
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = payload.decode("utf-8", "replace")
        if status != 200:
            raise HttpStatusError(status, decoded, headers)
        return decoded

    # ------------------------------------------------------------------
    def lookup(self, keys) -> dict:
        """``POST /v1/lookup`` one key batch."""
        return self._json("POST", "/v1/lookup", {"keys": [int(k) for k in keys]})

    def insert(self, keys, values=None) -> dict:
        """``POST /v1/insert`` one write batch (values default to keys)."""
        obj: dict = {"keys": [int(k) for k in keys]}
        if values is not None:
            obj["values"] = [int(v) for v in values]
        return self._json("POST", "/v1/insert", obj)

    def range(self, low: int, high: int) -> dict:
        """``POST /v1/range`` an inclusive key interval."""
        return self._json("POST", "/v1/range", {"low": int(low), "high": int(high)})

    def health(self) -> dict:
        """``GET /v1/health``."""
        return self._json("GET", "/v1/health")

    def stats(self) -> dict:
        """``GET /v1/stats``."""
        return self._json("GET", "/v1/stats")

    def metrics_text(self) -> str:
        """``GET /metrics`` — the Prometheus text exposition."""
        status, _headers, payload = self.request("GET", "/metrics")
        if status != 200:
            raise HttpStatusError(status, payload.decode("utf-8", "replace"), {})
        return payload.decode("utf-8")

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on next request)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "HttpIndexClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class LoadReport:
    """Aggregate outcome of one closed-loop load run."""

    clients: int
    batch: int
    requests: int
    keys: int
    rejected: int
    errors: int
    wall_seconds: float
    requests_per_s: float
    keys_per_s: float
    avg_ms: float
    p50_ms: float
    p99_ms: float

    def to_dict(self) -> dict:
        """JSON-safe row for BENCH_perf.json (``_per_s`` keys gate CI)."""
        return {
            "clients": self.clients,
            "batch": self.batch,
            "requests": self.requests,
            "keys": self.keys,
            "rejected": self.rejected,
            "errors": self.errors,
            "wall_seconds": round(self.wall_seconds, 3),
            "requests_per_s": round(self.requests_per_s, 1),
            "keys_per_s": round(self.keys_per_s, 1),
            "avg_ms": round(self.avg_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


def run_load(
    host: str,
    port: int,
    key_pool: np.ndarray,
    *,
    clients: int = 4,
    batch: int = 128,
    duration_s: float = 3.0,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> LoadReport:
    """Hammer the endpoint with *clients* closed-loop workers.

    Each worker owns one keep-alive connection and loops until the
    deadline: sample *batch* keys from *key_pool*, POST a lookup (or,
    with probability *write_fraction*, an insert of fresh keys above
    the pool), and record the request's wall latency.  Returns the
    merged :class:`LoadReport`.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    key_pool = np.asarray(key_pool, dtype=np.int64)
    deadline = time.perf_counter() + float(duration_s)
    fresh_base = int(key_pool[-1]) + 1
    results: list[tuple[list[float], int, int, int, int]] = []
    lock = threading.Lock()

    def worker(worker_no: int) -> None:
        rng = np.random.default_rng(seed * 10_007 + worker_no)
        latencies: list[float] = []
        n_keys = n_rejected = n_errors = n_requests = 0
        with HttpIndexClient(host, port) as client:
            while time.perf_counter() < deadline:
                is_write = write_fraction > 0 and rng.random() < write_fraction
                if is_write:
                    keys = fresh_base + rng.integers(0, 2**40, batch)
                else:
                    keys = rng.choice(key_pool, batch)
                start = time.perf_counter()
                try:
                    if is_write:
                        client.insert(keys.tolist())
                    else:
                        client.lookup(keys.tolist())
                except HttpStatusError as exc:
                    if exc.status == 429:
                        n_rejected += 1
                        time.sleep(min(exc.retry_after_s, 0.05))
                    else:
                        n_errors += 1
                    continue
                except (ConnectionError, OSError):
                    n_errors += 1
                    continue
                latencies.append(time.perf_counter() - start)
                n_requests += 1
                n_keys += batch
        with lock:
            results.append((latencies, n_requests, n_keys, n_rejected, n_errors))

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(int(clients))
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    all_latencies = np.asarray(
        [lat for lats, *_ in results for lat in lats], dtype=np.float64
    )
    requests = sum(r[1] for r in results)
    keys_total = sum(r[2] for r in results)
    rejected = sum(r[3] for r in results)
    errors = sum(r[4] for r in results)
    have = all_latencies.size > 0
    return LoadReport(
        clients=int(clients),
        batch=int(batch),
        requests=requests,
        keys=keys_total,
        rejected=rejected,
        errors=errors,
        wall_seconds=wall,
        requests_per_s=requests / wall if wall > 0 else 0.0,
        keys_per_s=keys_total / wall if wall > 0 else 0.0,
        avg_ms=float(all_latencies.mean() * 1e3) if have else 0.0,
        p50_ms=float(np.percentile(all_latencies, 50) * 1e3) if have else 0.0,
        p99_ms=float(np.percentile(all_latencies, 99) * 1e3) if have else 0.0,
    )
