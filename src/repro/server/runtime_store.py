"""SQLite-WAL runtime store: the server's state that survives restarts.

The index stack is deliberately memory-resident — shards are rebuilt
from the dataset at startup — so anything that arrived *over the
wire* would vanish with the process.  The runtime store closes that
gap with one SQLite database in WAL mode (readers never block the
writer, commits are a single fsync of the log) holding three kinds of
state:

* **op counters** — cumulative served-operation totals (HTTP requests
  per route, keys looked up / inserted, plus the service's own
  ``ServiceStats`` fields), upserted as they change and restored on
  reopen so totals keep counting across restarts.
* **append-only op log** — every accepted write batch, recorded
  durably *before* it is applied to the service.  On reopen,
  :meth:`replay` hands the ops back in arrival order; re-applying
  them through ``insert_many`` is idempotent (last write wins on
  equal keys), so replay-after-crash is at-least-once and converges.
* **query cache blocks** — the service's read-through LRU blocks,
  saved at shutdown and re-imported at startup so a restarted server
  does not begin cache-cold.

Arrays cross the boundary as raw little-endian int64 BLOBs
(``ndarray.tobytes`` / ``np.frombuffer``) — bit-exact, no JSON float
round-tripping.  All methods are thread-safe: the HTTP worker pool
records ops from executor threads while the event loop flushes
counters.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

__all__ = ["OpRecord", "RuntimeState", "RuntimeStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS op_log (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    ts     REAL NOT NULL,
    op     TEXT NOT NULL,
    n_keys INTEGER NOT NULL,
    keys   BLOB NOT NULL,
    vals   BLOB
);
CREATE TABLE IF NOT EXISTS query_cache (
    shard    INTEGER NOT NULL,
    block    INTEGER NOT NULL,
    keys     BLOB NOT NULL,
    vals     BLOB NOT NULL,
    saved_ts REAL NOT NULL,
    PRIMARY KEY (shard, block)
);
"""

#: Bumped when the on-disk layout changes incompatibly.
STORE_VERSION = 1


@dataclass(frozen=True)
class OpRecord:
    """One logged write batch, as stored."""

    seq: int
    ts: float
    op: str
    keys: np.ndarray
    values: np.ndarray | None


@dataclass(frozen=True)
class RuntimeState:
    """Everything :meth:`RuntimeStore.replay` restores on reopen."""

    counters: dict[str, int] = field(default_factory=dict)
    ops: tuple[OpRecord, ...] = ()
    cache_blocks: tuple[tuple[int, int, np.ndarray, np.ndarray], ...] = ()


def _to_blob(arr: np.ndarray) -> bytes:
    return np.ascontiguousarray(arr, dtype="<i8").tobytes()


def _from_blob(blob: bytes) -> np.ndarray:
    return np.frombuffer(blob, dtype="<i8").astype(np.int64)


class RuntimeStore:
    """One server's persistent runtime state (see module docstring)."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('version', ?)",
                (str(STORE_VERSION),),
            )
            self._conn.commit()
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def journal_mode(self) -> str:
        """The active SQLite journal mode (``"wal"`` when supported)."""
        row = self._conn.execute("PRAGMA journal_mode").fetchone()
        return str(row[0]).lower()

    def meta_get(self, key: str) -> str | None:
        """One metadata value, or None when unset."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else str(row[0])

    def meta_set(self, key: str, value: str) -> None:
        """Upsert one metadata key."""
        with self._lock:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                (key, str(value)),
            )
            self._conn.commit()

    def op_count(self) -> int:
        """Rows currently in the op log."""
        return int(self._conn.execute("SELECT COUNT(*) FROM op_log").fetchone()[0])

    # ------------------------------------------------------------------
    # Op log
    # ------------------------------------------------------------------
    def record_op(
        self,
        op: str,
        keys: np.ndarray,
        values: np.ndarray | None = None,
        ts: float | None = None,
    ) -> int:
        """Append one write batch to the log; returns its sequence no.

        Called *before* the batch is applied to the service, so a
        crash between the two leaves a replayable record rather than
        a lost write.
        """
        keys = np.asarray(keys, dtype=np.int64)
        blob_vals = None if values is None else _to_blob(np.asarray(values))
        with self._lock:
            cur = self._conn.execute(
                "INSERT INTO op_log (ts, op, n_keys, keys, vals) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    time.time() if ts is None else float(ts),
                    str(op),
                    int(keys.size),
                    _to_blob(keys),
                    blob_vals,
                ),
            )
            self._conn.commit()
            return int(cur.lastrowid)

    def iter_ops(self) -> list[OpRecord]:
        """Every logged op in arrival (sequence) order."""
        rows = self._conn.execute(
            "SELECT seq, ts, op, keys, vals FROM op_log ORDER BY seq"
        ).fetchall()
        return [
            OpRecord(
                seq=int(seq),
                ts=float(ts),
                op=str(op),
                keys=_from_blob(keys),
                values=None if vals is None else _from_blob(vals),
            )
            for seq, ts, op, keys, vals in rows
        ]

    def prune_op_log(self, keep_last: int) -> int:
        """Drop all but the newest *keep_last* ops; returns rows removed."""
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM op_log WHERE seq NOT IN "
                "(SELECT seq FROM op_log ORDER BY seq DESC LIMIT ?)",
                (max(0, int(keep_last)),),
            )
            self._conn.commit()
            return int(cur.rowcount)

    def last_seq(self) -> int:
        """Highest sequence number ever logged (0 when none).

        Reads the AUTOINCREMENT high-water mark, not ``MAX(seq)``, so
        the answer is stable across pruning: ops at or below it are
        exactly those that have existed, pruned or not.
        """
        row = self._conn.execute(
            "SELECT seq FROM sqlite_sequence WHERE name = 'op_log'"
        ).fetchone()
        return int(row[0]) if row is not None else 0

    def prune_op_log_upto(self, seq: int) -> int:
        """Drop every op with sequence ≤ *seq*; returns rows removed.

        The durability pruning hook: once the serving layer reports
        that everything through *seq* is captured in a committed
        store generation, those ops no longer need replaying and the
        log stops growing without bound.
        """
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM op_log WHERE seq <= ?", (int(seq),)
            )
            self._conn.commit()
            return int(cur.rowcount)

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def save_counters(self, mapping: Mapping[str, int]) -> None:
        """Upsert cumulative counters (only the keys given)."""
        if not mapping:
            return
        with self._lock:
            self._conn.executemany(
                "INSERT INTO counters (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET value = excluded.value",
                [(str(k), int(v)) for k, v in mapping.items()],
            )
            self._conn.commit()

    def load_counters(self) -> dict[str, int]:
        """Every persisted counter as a plain dict."""
        rows = self._conn.execute("SELECT name, value FROM counters").fetchall()
        return {str(name): int(value) for name, value in rows}

    # ------------------------------------------------------------------
    # Query cache
    # ------------------------------------------------------------------
    def save_cache_blocks(
        self, blocks: Iterable[tuple[int, int, np.ndarray, np.ndarray]]
    ) -> int:
        """Replace the persisted cache with *blocks*; returns count."""
        rows = [
            (int(shard), int(block), _to_blob(k), _to_blob(v), time.time())
            for shard, block, k, v in blocks
        ]
        with self._lock:
            self._conn.execute("DELETE FROM query_cache")
            self._conn.executemany(
                "INSERT INTO query_cache (shard, block, keys, vals, saved_ts) "
                "VALUES (?, ?, ?, ?, ?)",
                rows,
            )
            self._conn.commit()
        return len(rows)

    def load_cache_blocks(self) -> list[tuple[int, int, np.ndarray, np.ndarray]]:
        """Saved cache blocks as (shard, block, keys, vals), oldest first."""
        rows = self._conn.execute(
            "SELECT shard, block, keys, vals FROM query_cache "
            "ORDER BY saved_ts, shard, block"
        ).fetchall()
        return [
            (int(shard), int(block), _from_blob(k), _from_blob(v))
            for shard, block, k, v in rows
        ]

    # ------------------------------------------------------------------
    # Replay + lifecycle
    # ------------------------------------------------------------------
    def replay(self) -> RuntimeState:
        """The full restorable state: counters, ops, cache blocks."""
        return RuntimeState(
            counters=self.load_counters(),
            ops=tuple(self.iter_ops()),
            cache_blocks=tuple(self.load_cache_blocks()),
        )

    def close(self) -> None:
        """Commit and close the connection (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._conn.commit()
            self._conn.close()

    def __enter__(self) -> "RuntimeStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
