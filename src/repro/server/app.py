"""The HTTP front door: asyncio wire protocol over ``IndexService``.

Dependency-free by design (the same rule ``obs/`` follows): the
container this grows in has no FastAPI/uvicorn, so the server is a
hand-rolled HTTP/1.1 keep-alive loop on ``asyncio`` streams.  The
surface is small and JSON-only:

========  =============  ==================================================
method    path           body → response
========  =============  ==================================================
POST      /v1/lookup     ``{"keys": [..]}`` → parallel ``found`` /
                         ``values`` / ``levels`` / ``search_steps`` arrays
POST      /v1/insert     ``{"keys": [..], "values": [..]?}`` →
                         ``{"accepted": n}``
POST      /v1/range      ``{"low": L, "high": H}`` → ``{"pairs": [[k,v]..]}``
GET       /v1/health     ``IndexService.health_report()`` as JSON
GET       /v1/stats      service + admission + store counters
GET       /metrics       Prometheus text exposition of the registry
========  =============  ==================================================

Batch endpoints go through the :class:`~repro.server.admission.
AdmissionController`: a full queue answers ``429`` with a
``Retry-After`` hint *before* any work is spent, and shutdown drains
every admitted batch before the loop exits (``503`` for late
arrivals).  Responses carry exact integers end to end — Python JSON
ints are arbitrary-precision, so the wire answers are bit-identical
to in-process ``lookup_many`` (the parity suite holds this).

With a :class:`~repro.server.runtime_store.RuntimeStore` attached,
accepted write batches are logged durably before they are applied,
op counters persist across restarts, and the service's query cache is
saved at shutdown / restored at startup; ``metrics_out`` streams the
same JSON-lines snapshots ``repro serve --metrics-out`` writes, so
``repro metrics --validate`` passes on a live server's file.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import signal
import threading
import time
from typing import Any, Awaitable, Callable

import numpy as np

from ..obs.export import PROMETHEUS_CONTENT_TYPE, to_prometheus, write_jsonl
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from .admission import AdmissionController, ClosingError, OverloadedError
from .runtime_store import RuntimeStore

__all__ = ["BadRequestError", "HttpFrontDoor", "run_http_server"]

_log = get_logger("server")

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Hard cap on request bodies (bytes) — a 64 MiB body is ~8M int64
#: keys, far past any sane batch.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Hard cap on keys per batch request.
MAX_BATCH_KEYS = 1_000_000

#: Hard cap on pairs one /v1/range response will return.
MAX_RANGE_PAIRS = 1_000_000

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Counter names the runtime store persists and restores, beyond the
#: per-route request counters (which are stored under their key).
SERVICE_STAT_FIELDS = (
    "n_lookups",
    "n_inserts",
    "buffer_hits",
    "cache_hits",
    "cache_misses",
    "cache_fills",
    "merges",
    "merged_keys",
    "resmoothed_shards",
    "flushes",
    "flushed_keys",
    "compactions",
)


class BadRequestError(Exception):
    """Client-side request error (HTTP 400)."""


class _ReadWriteLock:
    """Many concurrent readers XOR one writer.

    ``IndexService`` is single-driver by contract: a synchronous
    staleness merge rebuilds shard structure in place, and a lookup
    racing it trips ``StaleFlatError`` (or worse).  The front door is
    the first caller with real concurrency (``max_inflight`` worker
    threads), so it imposes the discipline here: lookup/range batches
    share the service, an insert batch takes it exclusively.  With
    ``max_inflight`` small, a writer waits for at most a couple of
    in-flight read batches — no starvation in practice.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextlib.contextmanager
    def read(self):
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self):
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


def _require_int_list(obj: dict, key: str, max_len: int) -> list[int]:
    value = obj.get(key)
    if not isinstance(value, list) or not value:
        raise BadRequestError(f"'{key}' must be a non-empty array of integers")
    if len(value) > max_len:
        raise BadRequestError(f"'{key}' exceeds the {max_len}-key batch cap")
    if not all(isinstance(v, int) and not isinstance(v, bool) for v in value):
        raise BadRequestError(f"'{key}' must contain only integers")
    return value


def _as_int64(values: list[int], what: str) -> np.ndarray:
    try:
        return np.asarray(values, dtype=np.int64)
    except (OverflowError, ValueError) as exc:
        raise BadRequestError(f"{what} outside the int64 key domain") from exc


def parse_lookup_request(obj: Any) -> np.ndarray:
    """``{"keys": [..]}`` → int64 query array (or BadRequestError)."""
    if not isinstance(obj, dict):
        raise BadRequestError("body must be a JSON object")
    return _as_int64(_require_int_list(obj, "keys", MAX_BATCH_KEYS), "keys")


def parse_insert_request(obj: Any) -> tuple[np.ndarray, np.ndarray | None]:
    """``{"keys": [..], "values": [..]?}`` → (keys, values-or-None)."""
    if not isinstance(obj, dict):
        raise BadRequestError("body must be a JSON object")
    keys = _as_int64(_require_int_list(obj, "keys", MAX_BATCH_KEYS), "keys")
    values = None
    if obj.get("values") is not None:
        values = _as_int64(
            _require_int_list(obj, "values", MAX_BATCH_KEYS), "values"
        )
        if values.size != keys.size:
            raise BadRequestError("'values' must parallel 'keys'")
    return keys, values


def parse_range_request(obj: Any) -> tuple[int, int]:
    """``{"low": L, "high": H}`` → validated inclusive bounds."""
    if not isinstance(obj, dict):
        raise BadRequestError("body must be a JSON object")
    bounds = []
    for key in ("low", "high"):
        value = obj.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            raise BadRequestError(f"'{key}' must be an integer")
        bounds.append(value)
    low, high = bounds
    info = np.iinfo(np.int64)
    if not (info.min <= low <= info.max and info.min <= high <= info.max):
        raise BadRequestError("range bounds outside the int64 key domain")
    if low > high:
        raise BadRequestError("'low' must not exceed 'high'")
    return low, high


class HttpFrontDoor:
    """One HTTP server bound to one :class:`IndexService`."""

    def __init__(
        self,
        service,
        *,
        registry: MetricsRegistry | None = None,
        store: RuntimeStore | None = None,
        max_pending: int = 64,
        max_inflight: int = 2,
        metrics_out: str | None = None,
        metrics_every_s: float = 0.0,
        drain_timeout_s: float = 30.0,
        replay: bool = True,
    ):
        self.service = service
        self.registry = registry if registry is not None else get_registry()
        self.store = store
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.metrics_out = metrics_out
        self.metrics_every_s = float(metrics_every_s)
        self.drain_timeout_s = float(drain_timeout_s)
        self.replay = bool(replay)
        self.host: str | None = None
        self.port: int | None = None
        self.admission: AdmissionController | None = None
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._snapshot_task: asyncio.Task | None = None
        self._shutdown_requested = asyncio.Event()
        self._shutdown_done = False
        self._rwlock = _ReadWriteLock()
        reg = self.registry
        self._c_requests = {
            route: reg.counter("http_requests_total", route=route)
            for route in ("lookup", "insert", "range", "health", "stats", "metrics")
        }
        self._c_errors = reg.counter("http_errors_total")
        self._c_keys_looked_up = reg.counter("http_keys_looked_up_total")
        self._c_keys_inserted = reg.counter("http_keys_inserted_total")
        self._c_replayed_ops = reg.counter("http_replayed_ops_total")
        self._c_oplog_pruned = reg.counter("http_oplog_pruned_total")
        self._h_request_s = reg.histogram("http_request_seconds")
        self._routes: dict[tuple[str, str], Callable[[Any], Awaitable]] = {
            ("POST", "/v1/lookup"): self._h_lookup,
            ("POST", "/v1/insert"): self._h_insert,
            ("POST", "/v1/range"): self._h_range,
            ("GET", "/v1/health"): self._h_health,
            ("GET", "/v1/stats"): self._h_stats,
            ("GET", "/metrics"): self._h_metrics,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 8000) -> tuple[str, int]:
        """Replay persisted state, bind, and start serving.

        Returns the bound ``(host, port)`` — with ``port=0`` the OS
        picks a free port, which the tests and the port-0 CLI use.
        """
        self.admission = AdmissionController(
            max_pending=self.max_pending,
            max_inflight=self.max_inflight,
            registry=self.registry,
        )
        self._restore_from_store()
        if self.metrics_out:
            open(self.metrics_out, "w", encoding="utf-8").close()
            self._snapshot()
        self._server = await asyncio.start_server(
            self._handle_conn, host=host, port=port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        if self.metrics_every_s > 0 and self.metrics_out:
            self._snapshot_task = asyncio.create_task(self._snapshot_loop())
        return self.host, self.port

    def _restore_from_store(self) -> None:
        """Apply the runtime store's replayable state to the service."""
        if self.store is None:
            return
        state = self.store.replay()
        if self.replay:
            for record in state.ops:
                if record.op == "insert":
                    self.service.insert_many(record.keys, record.values)
                    self._c_replayed_ops.inc()
        imported = self.service.import_cache_blocks(state.cache_blocks)
        if state.ops or imported:
            _log.info(
                f"runtime store: replayed {len(state.ops)} op(s), "
                f"restored {imported} cache block(s)"
            )
        # Counter restore comes *after* replay so the persisted totals
        # overwrite the bumps replaying just caused.
        service_counters = {
            name[len("service."):]: value
            for name, value in state.counters.items()
            if name.startswith("service.")
        }
        if service_counters:
            self.service.restore_stats(service_counters)
        for name, value in state.counters.items():
            if name.startswith("http_"):
                counter = self._persisted_counter(name)
                if counter is not None and counter.value < value:
                    counter.inc(value - counter.value)

    def _persisted_counter(self, name: str):
        for route, counter in self._c_requests.items():
            if name == f"http_requests_total.{route}":
                return counter
        return {
            "http_keys_looked_up_total": self._c_keys_looked_up,
            "http_keys_inserted_total": self._c_keys_inserted,
            "http_errors_total": self._c_errors,
        }.get(name)

    def _persistable_counters(self) -> dict[str, int]:
        out = {
            f"http_requests_total.{route}": counter.value
            for route, counter in self._c_requests.items()
        }
        out["http_keys_looked_up_total"] = self._c_keys_looked_up.value
        out["http_keys_inserted_total"] = self._c_keys_inserted.value
        out["http_errors_total"] = self._c_errors.value
        stats = self.service.stats
        for field_name in SERVICE_STAT_FIELDS:
            out[f"service.{field_name}"] = int(getattr(stats, field_name))
        return out

    def request_shutdown(self) -> None:
        """Begin graceful shutdown (signal-handler and test entry)."""
        self._shutdown_requested.set()

    async def run_until_shutdown(self, install_signals: bool = True) -> None:
        """Serve until shutdown is requested, then drain and stop."""
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except NotImplementedError:  # non-Unix event loop
                    signal.signal(signum, lambda *_: self.request_shutdown())
        await self._shutdown_requested.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful stop: refuse, drain, persist — in that order."""
        if self._shutdown_done:
            return
        self._shutdown_done = True
        assert self.admission is not None
        # 1. No new work: late requests get 503, new connections are
        #    refused at accept.
        self.admission.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # 2. Every *accepted* batch completes (bounded, on the daemon
        #    pool, so a wedged batch cannot hang the exit forever).
        drained = await self.admission.drain(timeout=self.drain_timeout_s)
        if not drained:
            _log.info("shutdown: drain timed out with batches in flight")
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            try:
                await self._snapshot_task
            except asyncio.CancelledError:
                pass
        # 3. Idle keep-alive connections are dropped only now.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.admission.shutdown_pool()
        # 4. Persist what the next process will replay.  The durable
        #    sync runs first: buffered writes freeze into runs and the
        #    covered op-log rows disappear, so a clean restart replays
        #    (close to) nothing.
        self.durable_sync()
        if self.store is not None:
            self.store.save_counters(self._persistable_counters())
            self.store.save_cache_blocks(self.service.export_cache_blocks())
            self.store.close()
        self._snapshot()

    # ------------------------------------------------------------------
    # Durability sync (op-log pruning)
    # ------------------------------------------------------------------
    def durable_sync(self) -> int:
        """Flush buffered writes durably, then prune the SQLite op log.

        Requires both persistence layers: the service's
        :class:`~repro.store.DurableStore` (runs + manifest) and the
        HTTP :class:`RuntimeStore` (op log).  Under the exclusive
        lock every logged op is also applied (see ``_h_insert``), so
        after ``flush_durable()`` commits a generation, every op with
        ``seq <= last_seq()`` is captured in the run store and its
        log row is pure replay debt — deleted here.  Without the
        prune the op log grows forever and restart replays the full
        write history; with it, replay covers only the ops that
        arrived since the last sync.  Returns rows pruned.
        """
        if self.store is None or getattr(self.service, "store", None) is None:
            return 0
        with self._rwlock.write():
            durable_seq = self.store.last_seq()
            self.service.flush_durable()
        pruned = self.store.prune_op_log_upto(durable_seq)
        self.store.meta_set(
            "durable_generation", str(self.service.durable_generation())
        )
        self.store.meta_set("durable_seq", str(durable_seq))
        if pruned:
            self._c_oplog_pruned.inc(pruned)
            _log.info(
                f"durable sync: generation {self.service.durable_generation()}, "
                f"pruned {pruned} op-log row(s) up to seq {durable_seq}"
            )
        return pruned

    # ------------------------------------------------------------------
    # Metrics snapshots
    # ------------------------------------------------------------------
    def _snapshot(self) -> None:
        if self.metrics_out:
            write_jsonl(self.metrics_out, self.registry)

    async def _snapshot_loop(self) -> None:
        while True:
            await asyncio.sleep(self.metrics_every_s)
            self._snapshot()
            self.durable_sync()
            if self.store is not None:
                self.store.save_counters(self._persistable_counters())

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
            asyncio.CancelledError,
        ):
            pass  # client went away (or shutdown cancelled an idle reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, str], bytes] | None:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise asyncio.IncompleteReadError(line, None)
        method, target, _version = parts
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        return method.upper(), target.split("?", 1)[0], headers, body

    async def _dispatch(
        self,
        request: tuple[str, str, dict[str, str], bytes],
        writer: asyncio.StreamWriter,
    ) -> bool:
        method, path, headers, body = request
        start = time.perf_counter()
        status = 500
        payload: bytes = b""
        content_type = JSON_CONTENT_TYPE
        extra: list[tuple[str, str]] = []
        keep_alive = headers.get("connection", "").lower() != "close"
        try:
            if len(body) > MAX_BODY_BYTES:
                status, payload = 413, _error_body("request body too large")
            else:
                handler = self._routes.get((method, path))
                if handler is None:
                    known_paths = {p for (_m, p) in self._routes}
                    status = 405 if path in known_paths else 404
                    payload = _error_body(
                        "method not allowed" if status == 405 else "no such route"
                    )
                else:
                    obj = None
                    if method == "POST":
                        try:
                            obj = json.loads(body.decode("utf-8")) if body else {}
                        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                            raise BadRequestError(f"invalid JSON body: {exc}") from exc
                    status, result, content_type = await handler(obj)
                    payload = (
                        result
                        if isinstance(result, bytes)
                        else json.dumps(result, sort_keys=True).encode("utf-8")
                    )
        except BadRequestError as exc:
            status, payload = 400, _error_body(str(exc))
        except OverloadedError as exc:
            status = 429
            extra.append(("Retry-After", f"{int(exc.retry_after_s)}"))
            payload = _error_body(
                "overloaded", queued=exc.queued, running=exc.running,
                retry_after_s=exc.retry_after_s,
            )
        except ClosingError:
            status, keep_alive = 503, False
            extra.append(("Connection", "close"))
            payload = _error_body("server is draining")
        except Exception as exc:  # the server must not die with a request
            _log.info(f"500 on {method} {path}: {exc!r}")
            status, payload = 500, _error_body("internal error")
        if status >= 400:
            self._c_errors.inc()
        self._h_request_s.observe(time.perf_counter() - start)
        await self._write_response(
            writer, status, payload, content_type, extra, keep_alive
        )
        return keep_alive

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        extra: list[tuple[str, str]],
        keep_alive: bool,
    ) -> None:
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        names = {name.lower() for name, _ in extra}
        if "connection" not in names:
            headers.append(
                f"Connection: {'keep-alive' if keep_alive else 'close'}"
            )
        headers.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _h_lookup(self, obj: Any):
        keys = parse_lookup_request(obj)
        assert self.admission is not None

        def work() -> dict:
            with self._rwlock.read():
                batch = self.service.lookup_many(keys)
            return {
                "n": int(batch.keys.size),
                "found": batch.found.tolist(),
                "values": batch.values.tolist(),
                "levels": batch.levels.tolist(),
                "search_steps": batch.search_steps.tolist(),
            }

        result = await self.admission.run(work)
        self._c_requests["lookup"].inc()
        self._c_keys_looked_up.inc(int(keys.size))
        return 200, result, JSON_CONTENT_TYPE

    async def _h_insert(self, obj: Any):
        keys, values = parse_insert_request(obj)
        assert self.admission is not None

        def work() -> dict:
            # Writers are exclusive: a staleness merge may rebuild
            # shard structure in place under this batch.  Log-then-
            # apply happens *inside* the exclusive section, so at any
            # instant every logged op is also applied — which is what
            # lets durable_sync() prune the log up to last_seq()
            # after a flush without racing a half-applied batch.
            with self._rwlock.write():
                # Log-then-apply: a crash between the two replays the op.
                if self.store is not None:
                    self.store.record_op("insert", keys, values)
                self.service.insert_many(keys, values)
            if self.store is not None:
                self.store.save_counters(self._persistable_counters())
            return {"accepted": int(keys.size)}

        result = await self.admission.run(work)
        self._c_requests["insert"].inc()
        self._c_keys_inserted.inc(int(keys.size))
        return 200, result, JSON_CONTENT_TYPE

    async def _h_range(self, obj: Any):
        low, high = parse_range_request(obj)
        assert self.admission is not None

        def work() -> dict:
            with self._rwlock.read():
                pairs = self.service.range_query(low, high)
            if len(pairs) > MAX_RANGE_PAIRS:
                raise BadRequestError(
                    f"range matches {len(pairs)} pairs "
                    f"(cap {MAX_RANGE_PAIRS}); narrow the bounds"
                )
            return {
                "n": len(pairs),
                "pairs": [[int(k), int(v)] for k, v in pairs],
            }

        result = await self.admission.run(work)
        self._c_requests["range"].inc()
        return 200, result, JSON_CONTENT_TYPE

    async def _h_health(self, _obj: Any):
        self._c_requests["health"].inc()
        report = dataclasses.asdict(self.service.health_report())
        assert self.admission is not None
        report["admission"] = {
            "queued": self.admission.queued,
            "running": self.admission.running,
            "max_pending": self.max_pending,
            "max_inflight": self.max_inflight,
            "closing": self.admission.closing,
        }
        return 200, report, JSON_CONTENT_TYPE

    async def _h_stats(self, _obj: Any):
        self._c_requests["stats"].inc()
        stats = self.service.stats
        out = {
            "service": {
                name: int(getattr(stats, name)) for name in SERVICE_STAT_FIELDS
            },
            "http": self._persistable_counters(),
            "n_keys": int(self.service.n_keys),
            "n_shards": int(self.service.n_shards),
            "store": None
            if self.store is None
            else {
                "path": str(self.store.path),
                "journal_mode": self.store.journal_mode(),
                "op_log_entries": self.store.op_count(),
            },
            "durability": None
            if getattr(self.service, "store", None) is None
            else {
                "data_dir": str(self.service.store.data_dir),
                "generation": int(self.service.durable_generation()),
                "runs_outstanding": int(self.service.store.runs_outstanding()),
            },
        }
        return 200, out, JSON_CONTENT_TYPE

    async def _h_metrics(self, _obj: Any):
        self._c_requests["metrics"].inc()
        text = to_prometheus(self.registry)
        return 200, text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE


def _error_body(message: str, **details) -> bytes:
    return json.dumps({"error": message, **details}, sort_keys=True).encode("utf-8")


def run_http_server(
    service,
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    registry: MetricsRegistry | None = None,
    store: RuntimeStore | None = None,
    max_pending: int = 64,
    max_inflight: int = 2,
    metrics_out: str | None = None,
    metrics_every_s: float = 0.0,
    replay: bool = True,
    on_listening: Callable[[str, int], None] | None = None,
) -> int:
    """Run the front door in the foreground until SIGINT/SIGTERM.

    The blocking entry the ``repro serve --http`` CLI uses; returns 0
    after a graceful drain.
    """
    front = HttpFrontDoor(
        service,
        registry=registry,
        store=store,
        max_pending=max_pending,
        max_inflight=max_inflight,
        metrics_out=metrics_out,
        metrics_every_s=metrics_every_s,
        replay=replay,
    )

    async def _amain() -> None:
        bound_host, bound_port = await front.start(host, port)
        if on_listening is not None:
            on_listening(bound_host, bound_port)
        await front.run_until_shutdown(install_signals=True)

    asyncio.run(_amain())
    return 0
