"""HTTP network front door over the sharded serving stack.

Everything below this package used to end at an in-process
:class:`~repro.serving.service.IndexService` call; this is the wire
boundary that lets anything outside one Python process reach it.
Dependency-free (stdlib ``asyncio`` + ``sqlite3`` + ``http.client``),
like the rest of the repo:

* :mod:`~repro.server.app` — the HTTP/1.1 keep-alive server and its
  JSON endpoints (``/v1/lookup``, ``/v1/insert``, ``/v1/range``,
  ``/v1/health``, ``/v1/stats``, ``/metrics``), run in the foreground
  by ``repro serve --http``.
* :mod:`~repro.server.admission` — bounded request queue: overload
  answers ``429 + Retry-After`` instead of building invisible
  backlog, and shutdown drains every accepted batch.
* :mod:`~repro.server.runtime_store` — SQLite-WAL persistence of op
  counters, an append-only op log (replayed on reopen), and the
  service's query-cache blocks.
* :mod:`~repro.server.loadgen` — the closed-loop client + load
  driver ``benchmarks/bench_http.py`` records into ``BENCH_perf.json``.
* :mod:`~repro.server.harness` — background-thread server for tests
  and benchmarks.

The names re-exported here are the stable public surface of the
wire layer.
"""

from .admission import AdmissionController, ClosingError, OverloadedError
from .app import BadRequestError, HttpFrontDoor, run_http_server
from .harness import ServerThread
from .loadgen import HttpIndexClient, HttpStatusError, LoadReport, run_load
from .runtime_store import OpRecord, RuntimeState, RuntimeStore

__all__ = [
    "AdmissionController",
    "BadRequestError",
    "ClosingError",
    "HttpFrontDoor",
    "HttpIndexClient",
    "HttpStatusError",
    "LoadReport",
    "OpRecord",
    "OverloadedError",
    "RuntimeState",
    "RuntimeStore",
    "ServerThread",
    "run_http_server",
    "run_load",
]
