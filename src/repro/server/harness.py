"""In-process server harness: run the front door on a background thread.

Tests and the ``bench_http`` load driver need a live HTTP endpoint
without forking a subprocess (same interpreter → same service object,
so parity can be asserted against in-process calls directly).
:class:`ServerThread` owns a private event loop on a daemon thread,
publishes the bound port once the listener is up, and on
:meth:`stop` runs the front door's full graceful shutdown — drain,
persist, close — before joining.
"""

from __future__ import annotations

import asyncio
import threading

from .app import HttpFrontDoor

__all__ = ["ServerThread"]


class ServerThread:
    """One :class:`HttpFrontDoor` served from a background thread.

    Usage::

        with ServerThread(service, max_inflight=2) as srv:
            client = HttpIndexClient(srv.host, srv.port)
            ...

    Construction kwargs are forwarded to :class:`HttpFrontDoor`;
    ``port=0`` (the default) lets the OS pick a free port.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0, **front_kwargs):
        self._requested_host = host
        self._requested_port = port
        self.front = HttpFrontDoor(service, **front_kwargs)
        self.host: str | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="http-server", daemon=True
        )

    # ------------------------------------------------------------------
    def start(self, timeout: float = 15.0) -> "ServerThread":
        """Launch the thread; blocks until the port is bound."""
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("HTTP server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surface startup failures to start()
            self._startup_error = exc
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            self.host, self.port = await self.front.start(
                self._requested_host, self._requested_port
            )
        finally:
            self._started.set()
        # Signals belong to the owning process, not a library thread.
        await self.front.run_until_shutdown(install_signals=False)

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: drain in-flight batches, persist, join."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.front.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("HTTP server thread did not stop in time")

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
