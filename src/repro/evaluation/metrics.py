"""Evaluation metrics (Section 6.1, "Evaluation metrics").

The paper reports six quantities; each has a function here:

1. total query time saved           → :func:`total_time_saved_ns`
2. query time improvement (%)      → :func:`improvement_pct`
3. promoted data (%)               → :func:`promoted_percentage`
4. storage space increase (%)      → :func:`relative_increase_pct`
5. node reduction (%)              → :func:`node_reduction_pct`
6. insert time increase (%)        → :func:`relative_increase_pct`

Level bookkeeping uses *level snapshots* — key→level maps captured
before and after CSV — because "promoted" is defined per key: a key
counts as promotable when it sits at level 3 or deeper in the original
index, and as promoted when CSV moved it to a shallower level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import InvalidKeysError

__all__ = [
    "PROMOTABLE_LEVEL",
    "LevelSnapshot",
    "promoted_keys",
    "promoted_percentage",
    "relative_increase_pct",
    "improvement_pct",
    "total_time_saved_ns",
    "node_reduction_pct",
]

#: Keys at this level or deeper count as "promotable" (paper: levels 3+).
PROMOTABLE_LEVEL = 3


@dataclass(frozen=True)
class LevelSnapshot:
    """key → level map of an index at one point in time."""

    levels: dict[int, int]

    @classmethod
    def capture(cls, index, keys: np.ndarray) -> "LevelSnapshot":
        return cls({int(k): index.key_level(int(k)) for k in np.asarray(keys)})

    def promotable(self, threshold: int = PROMOTABLE_LEVEL) -> set[int]:
        """Keys at *threshold* or deeper."""
        return {k for k, level in self.levels.items() if level >= threshold}

    def __len__(self) -> int:
        return len(self.levels)


def promoted_keys(before: LevelSnapshot, after: LevelSnapshot) -> set[int]:
    """Keys strictly shallower after CSV than before."""
    out = set()
    for key, level_before in before.levels.items():
        level_after = after.levels.get(key)
        if level_after is not None and level_after < level_before:
            out.add(key)
    return out


def promoted_percentage(
    before: LevelSnapshot,
    after: LevelSnapshot,
    threshold: int = PROMOTABLE_LEVEL,
) -> float:
    """Promoted share of the promotable data (metric 3).

    Promotable = keys at ``threshold`` or deeper in the original
    index; promoted = those among them that moved up.
    """
    promotable = before.promotable(threshold)
    if not promotable:
        return 0.0
    moved = promoted_keys(before, after)
    return 100.0 * len(promotable & moved) / len(promotable)


def relative_increase_pct(before: float, after: float) -> float:
    """Generic ``(after - before) / before`` in percent (metrics 4/6)."""
    if before == 0:
        return 0.0
    return 100.0 * (after - before) / before


def improvement_pct(avg_before: float, avg_after: float) -> float:
    """Relative query-time improvement (metric 2); positive = faster."""
    if avg_before == 0:
        return 0.0
    return 100.0 * (avg_before - avg_after) / avg_before


def total_time_saved_ns(total_before_ns: float, total_after_ns: float) -> float:
    """Total query time saved (metric 1)."""
    return total_before_ns - total_after_ns


def node_reduction_pct(
    node_levels_before: list[int],
    node_levels_after: list[int],
    threshold: int = PROMOTABLE_LEVEL,
) -> float:
    """Node reduction relative to the original deep nodes (metric 5).

    The paper reports nodes removed as a percentage of the nodes at
    levels ≥ 3 of the original index.
    """
    deep_before = sum(1 for level in node_levels_before if level >= threshold)
    if deep_before == 0:
        return 0.0
    removed = len(node_levels_before) - len(node_levels_after)
    return 100.0 * removed / deep_before


def require_nonempty(keys: np.ndarray, what: str) -> np.ndarray:
    """Shared guard for metric inputs."""
    arr = np.asarray(keys)
    if arr.size == 0:
        raise InvalidKeysError(f"{what} must be non-empty")
    return arr
