"""Experiment drivers, metrics, and reporting for reproducing the
paper's evaluation."""

from .metrics import (
    PROMOTABLE_LEVEL,
    LevelSnapshot,
    improvement_pct,
    node_reduction_pct,
    promoted_keys,
    promoted_percentage,
    relative_increase_pct,
    total_time_saved_ns,
)
from .reporting import ascii_table, format_float, results_dir, write_result
from .runner import (
    CSV_FAMILIES,
    CsvExperimentRow,
    LevelTimeRow,
    ShardedExperimentRow,
    run_alpha_sweep,
    run_cardinality_sweep,
    run_csv_experiment,
    run_level_query_times,
    run_readwrite_experiment,
    run_sharded_experiment,
)

__all__ = [
    "CSV_FAMILIES",
    "CsvExperimentRow",
    "LevelSnapshot",
    "LevelTimeRow",
    "PROMOTABLE_LEVEL",
    "ShardedExperimentRow",
    "ascii_table",
    "format_float",
    "improvement_pct",
    "node_reduction_pct",
    "promoted_keys",
    "promoted_percentage",
    "relative_increase_pct",
    "results_dir",
    "run_alpha_sweep",
    "run_cardinality_sweep",
    "run_csv_experiment",
    "run_level_query_times",
    "run_readwrite_experiment",
    "run_sharded_experiment",
    "total_time_saved_ns",
]
