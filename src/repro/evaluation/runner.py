"""Experiment drivers that regenerate the paper's tables and figures.

Each public function produces plain dataclass rows; the benchmark
harness under ``benchmarks/`` formats them into the same tables/series
the paper reports and asserts the expected *shape* (who wins, trends),
not absolute nanoseconds (see DESIGN.md §3-4).

All query profiling and batched insertion goes through the vectorised
batch engine (:func:`repro.workloads.readonly.profile_queries` →
``LearnedIndex.lookup_many``, :mod:`repro.workloads.readwrite` →
``LearnedIndex.insert_many``), so experiment wall time is dominated by
the structures themselves rather than per-key Python dispatch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..core.cost_model import CostConstants
from ..core.csv_algorithm import CsvConfig, apply_csv
from ..core.exceptions import InvalidKeysError
from ..datasets.loader import downsample, load
from ..indexes import INDEX_FAMILIES, adapter_for
from ..workloads.generators import sample_queries, split_read_write
from ..workloads.readonly import profile_queries
from ..workloads.readwrite import BatchObservation, run_insert_batches
from .metrics import (
    LevelSnapshot,
    improvement_pct,
    node_reduction_pct,
    promoted_keys,
    promoted_percentage,
    relative_increase_pct,
)

__all__ = [
    "CsvExperimentRow",
    "LevelTimeRow",
    "ShardedExperimentRow",
    "run_csv_experiment",
    "run_alpha_sweep",
    "run_cardinality_sweep",
    "run_level_query_times",
    "run_readwrite_experiment",
    "run_sharded_experiment",
]

#: Indexes CSV integrates with (the paper's competitors).
CSV_FAMILIES = ("lipp", "sali", "alex")

#: Cap on the promoted-key query sample per experiment (keeps pure
#: Python runtimes sane; the averages converge well before this).
MAX_QUERY_SAMPLE = 3000


@dataclass(frozen=True)
class CsvExperimentRow:
    """One (index, dataset, n, alpha) cell of the Figs. 6-8 grids."""

    index_family: str
    dataset: str
    n: int
    alpha: float
    promotable_keys: int
    promoted_keys: int
    promoted_pct: float
    avg_query_ns_before: float
    avg_query_ns_after: float
    query_improvement_pct: float
    total_time_saved_ns: float
    storage_increase_pct: float
    node_reduction_pct: float
    preprocessing_seconds: float
    virtual_points: int
    nodes_rebuilt: int
    height_before: int
    height_after: int


def _build(family: str, keys: np.ndarray):
    try:
        cls = INDEX_FAMILIES[family]
    except KeyError:
        raise InvalidKeysError(
            f"unknown index family {family!r}; choose from {sorted(INDEX_FAMILIES)}"
        ) from None
    return cls.build(keys)


def run_csv_experiment(
    family: str,
    dataset: str,
    n: int | None = None,
    alpha: float = 0.1,
    seed: int = 0,
    constants: CostConstants | None = None,
    csv_config: CsvConfig | None = None,
    keys: np.ndarray | None = None,
) -> CsvExperimentRow:
    """Build → snapshot → CSV → snapshot → measure, for one setting.

    Two structurally identical indexes are built: one is optimised in
    place by CSV, the other stays original so "before" query costs are
    measured on the authentic structure.  Queries target the promoted
    keys, as in the paper's evaluation.
    """
    consts = constants or CostConstants()
    if keys is None:
        keys = load(dataset, n)
    n = int(keys.size)
    rng = np.random.default_rng(seed)

    original = _build(family, keys)
    enhanced = _build(family, keys)
    size_before = original.size_bytes()
    nodes_before = original.node_levels()
    height_before = original.height()
    snapshot_before = LevelSnapshot.capture(original, keys)

    config = csv_config or CsvConfig(alpha=alpha)
    start = time.perf_counter()
    report = apply_csv(adapter_for(enhanced, consts), config)
    preprocessing = time.perf_counter() - start

    snapshot_after = LevelSnapshot.capture(enhanced, keys)
    promoted = np.asarray(sorted(promoted_keys(snapshot_before, snapshot_after)), dtype=np.int64)
    promotable = snapshot_before.promotable()
    promoted_pct = promoted_percentage(snapshot_before, snapshot_after)

    if promoted.size:
        queries = sample_queries(promoted, min(MAX_QUERY_SAMPLE, promoted.size), rng, replace=False)
        before_profile = profile_queries(original, queries, consts)
        after_profile = profile_queries(enhanced, queries, consts)
        avg_before = before_profile.avg_simulated_ns
        avg_after = after_profile.avg_simulated_ns
        total_saved = (avg_before - avg_after) * promoted.size
    else:
        avg_before = avg_after = 0.0
        total_saved = 0.0

    return CsvExperimentRow(
        index_family=family,
        dataset=dataset,
        n=n,
        alpha=config.alpha,
        promotable_keys=len(promotable),
        promoted_keys=int(promoted.size),
        promoted_pct=promoted_pct,
        avg_query_ns_before=avg_before,
        avg_query_ns_after=avg_after,
        query_improvement_pct=improvement_pct(avg_before, avg_after),
        total_time_saved_ns=total_saved,
        storage_increase_pct=relative_increase_pct(size_before, enhanced.size_bytes()),
        node_reduction_pct=node_reduction_pct(nodes_before, enhanced.node_levels()),
        preprocessing_seconds=preprocessing,
        virtual_points=report.virtual_points_inserted,
        nodes_rebuilt=report.nodes_rebuilt,
        height_before=height_before,
        height_after=enhanced.height(),
    )


def run_alpha_sweep(
    family: str,
    dataset: str,
    alphas: tuple[float, ...] = (0.05, 0.1, 0.2, 0.4, 0.8),
    n: int | None = None,
    seed: int = 0,
    constants: CostConstants | None = None,
) -> list[CsvExperimentRow]:
    """The α sweep behind Figs. 6, 7, 8 and Tables 3, 4."""
    return [
        run_csv_experiment(family, dataset, n=n, alpha=alpha, seed=seed, constants=constants)
        for alpha in alphas
    ]


def run_cardinality_sweep(
    family: str,
    dataset: str,
    fractions: tuple[float, ...] = (0.0625, 0.125, 0.25, 0.5, 1.0),
    full_n: int | None = None,
    alpha: float = 0.1,
    seed: int = 0,
    constants: CostConstants | None = None,
) -> list[CsvExperimentRow]:
    """The dataset-cardinality sweep behind Fig. 9."""
    full = load(dataset, full_n)
    rows = []
    for fraction in fractions:
        target = max(10, int(full.size * fraction))
        keys = downsample(full, target)
        rows.append(
            run_csv_experiment(
                family, dataset, alpha=alpha, seed=seed, constants=constants, keys=keys
            )
        )
    return rows


@dataclass(frozen=True)
class LevelTimeRow:
    """Average query cost of the keys stored at one level (Fig. 1)."""

    dataset: str
    level: int
    n_keys_at_level: int
    avg_simulated_ns: float


def run_level_query_times(
    family: str,
    dataset: str,
    n: int | None = None,
    seed: int = 0,
    constants: CostConstants | None = None,
    per_level_sample: int = 500,
) -> list[LevelTimeRow]:
    """Per-level average query time on one dataset (Fig. 1)."""
    consts = constants or CostConstants()
    keys = load(dataset, n)
    index = _build(family, keys)
    histogram = index.level_histogram()
    rng = np.random.default_rng(seed)
    snapshot = LevelSnapshot.capture(index, keys)
    by_level: dict[int, list[int]] = {}
    for key, level in snapshot.levels.items():
        by_level.setdefault(level, []).append(key)
    rows = []
    for level in sorted(by_level):
        bucket = np.asarray(by_level[level], dtype=np.int64)
        sample = sample_queries(bucket, min(per_level_sample, bucket.size), rng, replace=False)
        profile = profile_queries(index, sample, consts)
        rows.append(
            LevelTimeRow(
                dataset=dataset,
                level=level,
                n_keys_at_level=histogram.get(level, bucket.size),
                avg_simulated_ns=profile.avg_simulated_ns,
            )
        )
    return rows


@dataclass(frozen=True)
class ShardedExperimentRow:
    """One configuration of the sharded-vs-monolithic comparison.

    ``label`` is "monolithic" for the bare unsharded index, else
    "<mode> K=<shards>[ +threads]".  Simulated-ns figures come from
    the deterministic cost model; throughput is wall clock through the
    batch engine (routing overhead included for the sharded rows).
    """

    index_family: str
    dataset: str
    n: int
    label: str
    n_shards: int
    threads: bool
    build_seconds: float
    lookups_per_second: float
    inserts_per_second: float
    avg_simulated_ns: float
    p99_simulated_ns: float
    hit_rate: float
    cost_imbalance: float


def _sharded_row(
    family: str,
    dataset: str,
    label: str,
    n_shards: int,
    threads: bool,
    build_seconds: float,
    lookup_target,
    queries: np.ndarray,
    inserts: np.ndarray,
    consts: CostConstants,
    cost_imbalance: float,
    insert_target=None,
):
    start = time.perf_counter()
    batch = lookup_target(queries)
    lookup_wall = time.perf_counter() - start
    ns = batch.simulated_ns(consts)
    inserts_per_s = 0.0
    if insert_target is not None and inserts.size:
        start = time.perf_counter()
        insert_target(inserts)
        insert_wall = time.perf_counter() - start
        inserts_per_s = inserts.size / insert_wall if insert_wall > 0 else 0.0
    return batch, ShardedExperimentRow(
        index_family=family,
        dataset=dataset,
        n=0,  # patched by the caller
        label=label,
        n_shards=n_shards,
        threads=threads,
        build_seconds=build_seconds,
        lookups_per_second=queries.size / lookup_wall if lookup_wall > 0 else 0.0,
        inserts_per_second=inserts_per_s,
        avg_simulated_ns=float(ns.mean()),
        p99_simulated_ns=float(np.percentile(ns, 99)),
        hit_rate=batch.hit_rate,
        cost_imbalance=cost_imbalance,
    )


def run_sharded_experiment(
    family: str,
    dataset: str,
    n: int | None = None,
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    mode: str = "equi_depth",
    alpha: float | str | None = None,
    n_queries: int = 20_000,
    n_inserts: int = 0,
    seed: int = 0,
    constants: CostConstants | None = None,
    max_workers: int | None = None,
    executor=None,
) -> list[ShardedExperimentRow]:
    """Sharded-vs-monolithic comparison over a shard-count sweep.

    Builds the bare index once as the baseline row, then one
    :class:`~repro.serving.service.IndexService` per shard count (and,
    when an *executor* spec — or the deprecated *max_workers* — asks
    for a parallel backend, a parallel variant of each), all over
    the same keys and the same uniform query sample — the batch found
    / value vectors are asserted identical to the monolithic answer,
    so the table compares cost, never correctness.

    *executor* takes an :class:`~repro.serving.executor.ExecutorSpec`
    (or a string like ``"process"`` / ``"thread:4"``); rows of the
    parallel variant are labelled with the executor kind.
    """
    from ..serving import ExecutorSpec, IndexService
    from ..serving.service import UPDATABLE_FAMILIES

    spec = ExecutorSpec.parse(executor) if executor is not None else None

    consts = constants or CostConstants()
    keys = load(dataset, n)
    rng = np.random.default_rng(seed)
    queries = sample_queries(keys, n_queries, rng)
    fresh = (
        np.asarray([], dtype=np.int64)
        if n_inserts <= 0
        else int(keys[-1]) + 1 + rng.integers(0, int(keys[-1]) + 1, n_inserts)
    )

    start = time.perf_counter()
    mono = _build(family, keys)
    mono_build = time.perf_counter() - start
    updatable_mono = family in UPDATABLE_FAMILIES
    reference, baseline = _sharded_row(
        family, dataset, "monolithic", 1, False, mono_build,
        mono.lookup_many, queries, fresh, consts, 1.0,
        insert_target=(
            mono.insert_many if n_inserts > 0 and updatable_mono else None
        ),
    )
    rows = [baseline]

    has_parallel = bool(max_workers) or (spec is not None and spec.kind != "serial")
    suffix = f" +{spec.kind}" if spec is not None else " +threads"
    for k in shard_counts:
        for parallel in ((False, True) if has_parallel else (False,)):
            start = time.perf_counter()
            service = IndexService.build(
                keys,
                family=family,
                n_shards=k,
                mode=mode,
                alpha=alpha,
                constants=consts,
                executor=spec if parallel and spec is not None else None,
                max_workers=(
                    max_workers if parallel and spec is None else None
                ),
            )
            build_seconds = time.perf_counter() - start
            threads = parallel
            label = f"{mode} K={k}" + (suffix if parallel else "")
            __, row = _sharded_row(
                family, dataset, label, k, threads, build_seconds,
                service.lookup_many, queries, fresh, consts,
                service.plan.cost_imbalance(),
                insert_target=service.insert_many if n_inserts > 0 else None,
            )
            check = service.lookup_many(queries[: min(1000, queries.size)])
            if not (
                np.array_equal(check.found, reference.found[: check.n_queries])
                and np.array_equal(check.values, reference.values[: check.n_queries])
            ):
                raise InvalidKeysError(
                    f"sharded service diverged from the monolithic index (K={k})"
                )
            service.close()
            rows.append(row)

    n_keys = int(keys.size)
    return [replace(row, n=n_keys) for row in rows]


def run_readwrite_experiment(
    family: str,
    dataset: str,
    n: int | None = None,
    alpha: float = 0.1,
    n_batches: int = 5,
    seed: int = 0,
    constants: CostConstants | None = None,
) -> list[BatchObservation]:
    """The read-write workload behind Fig. 10.

    Builds original + enhanced indexes on a random half of the
    dataset, applies CSV once to the enhanced one, then inserts the
    other half in ``0.1 n`` batches into both, profiling the promoted
    keys after every batch.
    """
    consts = constants or CostConstants()
    keys = load(dataset, n)
    rng = np.random.default_rng(seed)
    split = split_read_write(keys, rng, n_batches=n_batches)

    original = _build(family, split.build_keys)
    enhanced = _build(family, split.build_keys)
    before = LevelSnapshot.capture(original, split.build_keys)
    apply_csv(adapter_for(enhanced, consts), CsvConfig(alpha=alpha))
    after = LevelSnapshot.capture(enhanced, split.build_keys)

    promoted = np.asarray(sorted(promoted_keys(before, after)), dtype=np.int64)
    if promoted.size == 0:
        # Fall back to the deepest original keys so the workload still
        # exercises the region CSV targets.
        promoted = np.asarray(sorted(before.promotable()), dtype=np.int64)
    if promoted.size == 0:
        promoted = split.build_keys
    queries = sample_queries(
        promoted, min(MAX_QUERY_SAMPLE, promoted.size), rng, replace=False
    )
    return run_insert_batches(enhanced, original, split.batches, queries, consts)
