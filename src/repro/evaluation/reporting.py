"""ASCII reporting helpers for the benchmark harness.

The benches print each reproduced table/figure as text (no plotting
dependency is available offline) and tee the same content into
``results/<name>.txt`` so EXPERIMENTS.md can reference stable outputs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["ascii_table", "format_float", "results_dir", "write_result"]


def results_dir() -> Path:
    """Directory for result text files (created on demand).

    Defaults to ``<repo>/results``; override with ``REPRO_RESULTS_DIR``.
    """
    root = os.environ.get("REPRO_RESULTS_DIR")
    if root is None:
        path = Path(__file__).resolve().parents[3] / "results"
    else:
        path = Path(root)
    path.mkdir(parents=True, exist_ok=True)
    return path


def format_float(value: float, digits: int = 2) -> str:
    """Compact float formatting for table cells."""
    if value == 0:
        return "0"
    if abs(value) >= 1e6:
        return f"{value:.3g}"
    return f"{value:.{digits}f}"


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)
    out = [line]
    out.append("|".join(f" {h:<{w}} " for h, w in zip(headers, widths)))
    out.append(line)
    for row in str_rows:
        out.append("|".join(f" {c:<{w}} " for c, w in zip(row, widths)))
    out.append(line)
    return "\n".join(out)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_float(value)
    return str(value)


def write_result(name: str, content: str) -> Path:
    """Write *content* to ``results/<name>.txt`` and return the path."""
    path = results_dir() / f"{name}.txt"
    path.write_text(content + "\n")
    return path
