"""B+-tree baseline.

The classical structure learned indexes are benchmarked against
(Section 6.1 notes ALEX/LIPP/SALI all outperform it).  Leaves hold
``(key, value)`` runs and are chained; inner nodes hold separator keys.
Lookup cost: one level per node on the root-to-leaf path plus a binary
search inside each visited node.
"""

from __future__ import annotations

import bisect
from typing import Iterator

import numpy as np

from ..core.exceptions import IndexStateError
from .base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    POINTER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_batch_kv,
    _as_query_array,
    dedupe_last_wins,
    group_runs,
    prepare_key_values,
)

__all__ = ["BPlusTree"]

DEFAULT_ORDER = 64


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self) -> None:
        self.keys: list[int] = []
        self.values: list[int] = []
        self.next: "_Leaf | None" = None


class _Inner:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: list[int] = []          # separator keys
        self.children: list[object] = []   # len(keys) + 1 children


class BPlusTree(LearnedIndex):
    """An in-memory B+-tree with configurable fan-out *order*."""

    name = "btree"

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise IndexStateError("order must be >= 4")
        self._order = order
        self._root: object = _Leaf()
        self._height = 1
        self._n = 0

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, keys, values=None, order: int = DEFAULT_ORDER) -> "BPlusTree":
        arr, vals = prepare_key_values(keys, values)
        tree = cls(order=order)
        tree._bulk_load(arr, vals)
        return tree

    def _bulk_load(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Pack leaves to ~70% fill and build inner levels bottom-up.

        Node-local ``keys``/``values`` stay Python lists (inserts splice
        into them), but they are built from sliced-array ``tolist()``
        conversions rather than per-element comprehensions.
        """
        per_leaf = max(2, int(self._order * 0.7))
        leaves: list[_Leaf] = []
        key_chunks = [keys[start:start + per_leaf] for start in range(0, keys.size, per_leaf)]
        value_chunks = [values[start:start + per_leaf] for start in range(0, values.size, per_leaf)]
        for key_chunk, value_chunk in zip(key_chunks, value_chunks):
            leaf = _Leaf()
            leaf.keys = key_chunk.tolist()
            leaf.values = value_chunk.tolist()
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        if not leaves:
            leaves = [_Leaf()]
        level: list[object] = list(leaves)
        first_keys = [leaf.keys[0] if leaf.keys else 0 for leaf in leaves]
        height = 1
        per_inner = max(2, int(self._order * 0.7))
        while len(level) > 1:
            parents: list[object] = []
            parent_first_keys: list[int] = []
            for start in range(0, len(level), per_inner):
                group = level[start:start + per_inner]
                node = _Inner()
                node.children = list(group)
                node.keys = first_keys[start + 1 : start + len(group)]
                parents.append(node)
                parent_first_keys.append(first_keys[start])
            level = parents
            first_keys = parent_first_keys
            height += 1
        self._root = level[0]
        self._height = height
        self._n = int(keys.size)

    # ------------------------------------------------------------------
    def _descend(self, key: int) -> tuple[_Leaf, int, int]:
        """Walk to the leaf for *key*; returns (leaf, levels, steps)."""
        node = self._root
        levels = 1
        steps = 0
        while isinstance(node, _Inner):
            idx = bisect.bisect_right(node.keys, key)
            steps += max(1, int(np.ceil(np.log2(len(node.keys) + 1))) if node.keys else 1)
            node = node.children[idx]
            levels += 1
        assert isinstance(node, _Leaf)
        return node, levels, steps

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        leaf, levels, steps = self._descend(key)
        pos = bisect.bisect_left(leaf.keys, key)
        steps += max(1, int(np.ceil(np.log2(len(leaf.keys) + 1))) if leaf.keys else 1)
        if pos < len(leaf.keys) and leaf.keys[pos] == key:
            return QueryStats(key=key, found=True, value=leaf.values[pos], levels=levels, search_steps=steps)
        return QueryStats(key=key, found=False, value=None, levels=levels, search_steps=steps)

    @staticmethod
    def _node_search_steps(n_keys: int) -> int:
        """Binary-search probe charge inside one node."""
        return max(1, int(np.ceil(np.log2(n_keys + 1)))) if n_keys else 1

    def lookup_many(self, keys) -> BatchQueryStats:
        """Batched lookups via one root-to-leaf frontier sweep.

        Queries descend level by level as groups: each visited node
        routes its whole query group with a single ``np.searchsorted``
        over its separator keys, so the per-key Python work collapses
        to one dictionary of (node → query indices) per level.  Step
        and level accounting matches :meth:`lookup_stats` exactly.
        """
        q = _as_query_array(keys)
        m = q.size
        found = np.zeros(m, dtype=bool)
        values = np.zeros(m, dtype=np.int64)
        levels = np.zeros(m, dtype=np.int64)
        steps = np.zeros(m, dtype=np.int64)
        if m == 0:
            return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)
        frontier: list[tuple[object, np.ndarray, int]] = [(self._root, np.arange(m), 1)]
        while frontier:
            node, idx, depth = frontier.pop()
            if isinstance(node, _Inner):
                node_keys = np.asarray(node.keys, dtype=np.int64)
                steps[idx] += self._node_search_steps(len(node.keys))
                child_idx = np.searchsorted(node_keys, q[idx], side="right")
                for group in group_runs(child_idx):
                    child = node.children[int(child_idx[group[0]])]
                    frontier.append((child, idx[group], depth + 1))
                continue
            assert isinstance(node, _Leaf)
            levels[idx] = depth
            steps[idx] += self._node_search_steps(len(node.keys))
            leaf_keys = np.asarray(node.keys, dtype=np.int64)
            pos = np.searchsorted(leaf_keys, q[idx], side="left")
            in_leaf = pos < leaf_keys.size
            hit = np.zeros(idx.size, dtype=bool)
            hit[in_leaf] = leaf_keys[pos[in_leaf]] == q[idx][in_leaf]
            hit_idx = idx[hit]
            found[hit_idx] = True
            if hit_idx.size:
                leaf_values = np.asarray(node.values, dtype=np.int64)
                values[hit_idx] = leaf_values[pos[hit]]
        return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)

    def _harvest_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Current contents as sorted parallel arrays (leaf-chain scan)."""
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        key_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        leaf: _Leaf | None = node
        while leaf is not None:
            if leaf.keys:
                key_parts.append(np.asarray(leaf.keys, dtype=np.int64))
                val_parts.append(np.asarray(leaf.values, dtype=np.int64))
            leaf = leaf.next
        if not key_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(key_parts), np.concatenate(val_parts)

    #: Batches smaller than ``n_keys / BULK_LOOP_DIVISOR`` take the
    #: per-key loop: the merged-run rebuild is O(n + b) regardless of
    #: batch size, so a rebuild only wins once b is a sizeable share
    #: of n (crossover measured around b ~ n/6; /8 leaves margin).
    BULK_LOOP_DIVISOR = 8

    def bulk_insert_many(self, keys, values=None) -> None:
        """Bulk ingest by re-slicing the merged sorted run.

        The leaf chain already holds the stored pairs as sorted runs;
        one concatenation + stable last-wins dedupe (batch entries
        after stored ones, so batch values overwrite) yields the merged
        run, which :meth:`_bulk_load` re-packs into fresh ~70%-full
        leaves and bottom-up inner levels.  O(n + b) array work per
        batch instead of b root-to-leaf descents with splits.  Small
        batches (relative to the stored key count) fall back to the
        per-key loop, which beats a full-tree rebuild there.
        """
        arr, vals = _as_batch_kv(keys, values)
        if arr.size == 0:
            return
        if arr.size * self.BULK_LOOP_DIVISOR < self._n:
            self.insert_many(arr, vals)
            return
        old_keys, old_vals = self._harvest_arrays()
        merged_keys, merged_vals = dedupe_last_wins(
            np.concatenate([old_keys, arr]), np.concatenate([old_vals, vals])
        )
        self._bulk_load(merged_keys, merged_vals)

    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        key = int(key)
        split = self._insert_into(self._root, key, int(value))
        if split is not None:
            sep, right = split
            new_root = _Inner()
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert_into(self, node: object, key: int, value: int):
        """Recursive insert; returns (separator, new_right_sibling) on split."""
        if isinstance(node, _Leaf):
            pos = bisect.bisect_left(node.keys, key)
            if pos < len(node.keys) and node.keys[pos] == key:
                node.values[pos] = value
                return None
            node.keys.insert(pos, key)
            node.values.insert(pos, value)
            self._n += 1
            if len(node.keys) > self._order:
                mid = len(node.keys) // 2
                right = _Leaf()
                right.keys = node.keys[mid:]
                right.values = node.values[mid:]
                right.next = node.next
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                node.next = right
                return right.keys[0], right
            return None
        assert isinstance(node, _Inner)
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[idx], key, value)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.children) > self._order:
            mid = len(node.keys) // 2
            right_inner = _Inner()
            right_inner.keys = node.keys[mid + 1:]
            right_inner.children = node.children[mid + 1:]
            sep_up = node.keys[mid]
            node.keys = node.keys[:mid]
            node.children = node.children[:mid + 1]
            return sep_up, right_inner
        return None

    # ------------------------------------------------------------------
    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``."""
        leaf, __, __steps = self._descend(int(low))
        out: list[tuple[int, int]] = []
        node: _Leaf | None = leaf
        while node is not None:
            for k, v in zip(node.keys, node.values):
                if k > high:
                    return out
                if k >= low:
                    out.append((k, v))
            node = node.next
        return out

    @property
    def n_keys(self) -> int:
        return self._n

    def height(self) -> int:
        return self._height

    def node_count(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, _Inner):
                stack.extend(node.children)
        return count

    def size_bytes(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                total += NODE_HEADER_BYTES + len(node.keys) * KEY_BYTES
                total += len(node.children) * POINTER_BYTES
                stack.extend(node.children)
            else:
                assert isinstance(node, _Leaf)
                total += NODE_HEADER_BYTES + len(node.keys) * (KEY_BYTES + VALUE_BYTES)
                total += POINTER_BYTES
        return total

    def key_level(self, key: int) -> int:
        __, levels, __steps = self._descend(int(key))
        return levels

    def iter_keys(self) -> Iterator[int]:
        node = self._root
        while isinstance(node, _Inner):
            node = node.children[0]
        assert isinstance(node, _Leaf)
        leaf: _Leaf | None = node
        while leaf is not None:
            yield from leaf.keys
            leaf = leaf.next
