"""ALEX data node: a model-addressed gapped array (Ding et al. [2]).

Keys live in a *gapped array*: an array larger than the key count in
which empty slots are interleaved according to the linear model's
predictions.  Empty slots repeat the key of the next occupied slot to
their right, keeping the array non-decreasing so that the exponential
search around a model prediction works unmodified.

Cost accounting mirrors ALEX: a lookup starts at the predicted slot
and exponential-searches outward, so its step count grows with
``log2`` of the prediction error; the node tracks its expected search
steps, which Eq. 22's ``expected_number_of_searches`` consumes.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

import numpy as np

from ...core.linear_model import LinearModel, fit_linear

__all__ = ["AlexDataNode", "InsertStatus"]

#: Bounds on the fill factor of a data node (ALEX defaults 0.6-0.8).
TARGET_DENSITY = 0.7
MAX_DENSITY = 0.8

#: Sentinel stored in trailing gaps.  Must compare greater than every
#: real key or the gapped array loses its sorted invariant — so it is
#: the maximum int64, and keys equal to it are not supported.
TAIL_FILL = np.iinfo(np.int64).max


class InsertStatus(Enum):
    """Outcome of :meth:`AlexDataNode.insert`."""

    INSERTED = "inserted"
    UPDATED = "updated"
    FULL = "full"


class AlexDataNode:
    """A gapped-array leaf node."""

    __slots__ = (
        "model",
        "slot_keys",
        "slot_values",
        "occupied",
        "level",
        "n_keys",
        "parent",
        "parent_slot",
        "virtual_slots",
        "_expected_steps_cache",
    )

    def __init__(
        self,
        capacity: int,
        model: LinearModel,
        level: int,
    ):
        capacity = max(capacity, 1)
        self.model = model
        self.slot_keys = np.full(capacity, TAIL_FILL, dtype=np.int64)
        self.slot_values = np.zeros(capacity, dtype=np.int64)
        self.occupied = np.zeros(capacity, dtype=bool)
        self.level = level
        self.n_keys = 0
        self.parent = None  # AlexInnerNode | None
        self.parent_slot: int | None = None
        #: Gap slots contributed by CSV virtual points.
        self.virtual_slots = 0
        self._expected_steps_cache: float | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sorted(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        level: int,
        density: float = TARGET_DENSITY,
        min_capacity: int = 2,
    ) -> "AlexDataNode":
        """Bulk-load with model-based placement at the target density."""
        n = int(keys.size)
        capacity = max(int(np.ceil(n / density)), n + 1, min_capacity)
        if n == 0:
            return cls(capacity, LinearModel(0.0, 0.0), level)
        model = fit_linear(keys).scaled(capacity / max(n, 1))
        return cls._place(keys, values, capacity, model, level)

    @classmethod
    def from_positions(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        positions: np.ndarray,
        capacity: int,
        model: LinearModel,
        level: int,
    ) -> "AlexDataNode":
        """Lay keys out at explicit *positions* (CSV smoothed layout).

        Positions must be strictly increasing and fit the capacity;
        the remaining slots become gaps.  CSV uses the smoothed point
        set's ranks as positions, so the virtual points materialise as
        the gaps between real keys.
        """
        node = cls(capacity, model, level)
        node._write_layout(keys, values, positions.astype(np.int64))
        return node

    @classmethod
    def from_model(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        capacity: int,
        model: LinearModel,
        level: int,
    ) -> "AlexDataNode":
        """Model-based placement with an explicit capacity and model.

        Used by CSV rebuilds: the smoothed model (scaled to *capacity*)
        decides where each key sits; the strictly-monotone sweep keeps
        the gapped array sorted.
        """
        if keys.size == 0:
            return cls(capacity, model, level)
        return cls._place(keys, values, capacity, model, level)

    @classmethod
    def _place(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        capacity: int,
        model: LinearModel,
        level: int,
    ) -> "AlexDataNode":
        """ALEX model-based placement sweep: each key goes to
        ``max(predicted_slot, previous_slot + 1)``."""
        predicted = np.clip(
            np.round(model.predict_array(keys)).astype(np.int64), 0, capacity - 1
        )
        # Strict monotonicity, vectorised: the sweep's fixpoint is
        # pos_i = max_{j<=i}(predicted_j + (i - j)), i.e. a running
        # maximum of ``predicted - index`` added back onto the index.
        idx = np.arange(predicted.size, dtype=np.int64)
        positions = np.maximum.accumulate(predicted - idx) + idx
        last = int(positions[-1]) if positions.size else -1
        if last >= capacity:
            capacity = last + 1
        node = cls(capacity, model, level)
        node._write_layout(keys, values, positions)
        return node

    def _write_layout(self, keys: np.ndarray, values: np.ndarray, positions: np.ndarray) -> None:
        if keys.size == 0:
            return
        if positions.size != keys.size:
            raise ValueError("positions must parallel keys")
        if positions.size > 1 and np.any(np.diff(positions) <= 0):
            raise ValueError("positions must be strictly increasing")
        if int(positions[-1]) >= self.capacity or int(positions[0]) < 0:
            raise ValueError("positions exceed node capacity")
        self.slot_keys[positions] = keys
        self.slot_values[positions] = values
        self.occupied[positions] = True
        self.n_keys = int(keys.size)
        self._fill_gaps()
        self._expected_steps_cache = None

    def _fill_gaps(self) -> None:
        """Rewrite gap slots with the next occupied key to their right."""
        fill = np.where(self.occupied, self.slot_keys, TAIL_FILL)
        # backward cumulative minimum gives the next real key rightward
        self.slot_keys = np.minimum.accumulate(fill[::-1])[::-1]
        # restore exact keys at occupied slots (identical values anyway)
        occ = self.occupied
        self.slot_keys[occ] = fill[occ]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(self.slot_keys.size)

    @property
    def density(self) -> float:
        return self.n_keys / self.capacity if self.capacity else 0.0

    def _locate(self, key: int) -> tuple[int, int]:
        """``(slot, search_steps)`` of the first slot with key >= *key*.

        Correctness comes from a binary search on the (sorted) slot
        array; the *step count* is the cost of the exponential search
        ALEX performs from the model's predicted slot.
        """
        predicted = self.model.predict_clamped(key, self.capacity)
        actual = int(np.searchsorted(self.slot_keys, key, side="left"))
        distance = abs(actual - predicted)
        steps = 1 + int(np.ceil(np.log2(distance + 2)))
        return actual, steps

    def lookup(self, key: int) -> tuple[bool, int | None, int]:
        """``(found, value, search_steps)`` for *key*."""
        key = int(key)
        slot, steps = self._locate(key)
        # Gap slots to the left of a real key repeat its key value; the
        # real (occupied) slot is the last of the equal run.
        while slot < self.capacity and int(self.slot_keys[slot]) == key:
            if self.occupied[slot]:
                return True, int(self.slot_values[slot]), steps
            slot += 1
            steps += 1
        return False, None, steps

    def lookup_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`lookup` over a query array.

        Returns ``(found, values, search_steps)`` parallel to *keys*.
        The gapped-array invariant (gap slots repeat the key of the
        next occupied slot to their right) guarantees that a present
        key's occupied slot is the *last* slot of its equal run, so the
        per-slot walk of the scalar path collapses to one
        ``side='right'`` search; the walk's step charges are recovered
        from the run length.
        """
        m = int(keys.size)
        cap = self.capacity
        predicted = np.clip(
            np.rint(self.model.predict_array(keys)).astype(np.int64), 0, cap - 1
        )
        first = np.searchsorted(self.slot_keys, keys, side="left")
        steps = 1 + np.ceil(np.log2(np.abs(first - predicted) + 2)).astype(np.int64)
        last = np.searchsorted(self.slot_keys, keys, side="right") - 1
        safe_last = np.clip(last, 0, cap - 1)
        found = (last >= first) & self.occupied[safe_last] & (self.slot_keys[safe_last] == keys)
        values = np.zeros(m, dtype=np.int64)
        values[found] = self.slot_values[safe_last[found]]
        # The scalar walk steps once per gap slot it crosses.
        steps += np.where(found, last - first, 0)
        return found, values, steps

    def expected_search_steps(self) -> float:
        """Average exponential-search steps for this node's layout.

        Cached between structural changes; inserts invalidate the
        cache.  This is the ``expected_number_of_searches`` input to
        the Eq. 22 cost model.
        """
        if self._expected_steps_cache is None:
            self._expected_steps_cache = self._measure_expected_steps()
        return self._expected_steps_cache

    def _measure_expected_steps(self) -> float:
        """Expected exponential-search steps from the current layout."""
        if self.n_keys == 0:
            return 1.0
        occ_positions = np.nonzero(self.occupied)[0]
        keys = self.slot_keys[occ_positions]
        predicted = np.clip(
            np.round(self.model.predict_array(keys)).astype(np.int64),
            0,
            self.capacity - 1,
        )
        distance = np.abs(occ_positions - predicted)
        return float(np.mean(1 + np.ceil(np.log2(distance + 2))))

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> InsertStatus:
        """Model-based insert with gap reuse and local shifting."""
        key = int(key)
        value = int(value)
        if self.n_keys + 1 > MAX_DENSITY * self.capacity:
            return InsertStatus.FULL
        slot, __ = self._locate(key)
        # Equal run: update if the real slot holds this key already.
        probe = slot
        while probe < self.capacity and int(self.slot_keys[probe]) == key:
            if self.occupied[probe]:
                self.slot_values[probe] = value
                return InsertStatus.UPDATED
            probe += 1
        insert_at = probe  # first slot whose (real or fill) key > key
        if insert_at > 0 and not self.occupied[insert_at - 1]:
            # A gap sits immediately left: take it.
            target = insert_at - 1
            self.slot_keys[target] = key
            self.slot_values[target] = value
            self.occupied[target] = True
            self._retag_gap_run(target)
            self.n_keys += 1
            self._expected_steps_cache = None
            return InsertStatus.INSERTED
        # Shift the occupied run into the nearest gap (either side).
        # Gap scans are vectorised: merged CSV nodes can have long
        # occupied runs and a per-slot Python loop would dominate the
        # insert cost.
        right_free = ~self.occupied[insert_at:]
        if right_free.any():
            gap_right = insert_at + int(np.argmax(right_free))
        else:
            gap_right = self.capacity
        left_free = ~self.occupied[:insert_at]
        if left_free.any():
            gap_left = insert_at - 1 - int(np.argmax(left_free[::-1]))
        else:
            gap_left = -1
        use_right = gap_right < self.capacity and (
            gap_left < 0 or gap_right - insert_at <= insert_at - gap_left
        )
        if use_right:
            if gap_right > insert_at:
                self.slot_keys[insert_at + 1 : gap_right + 1] = self.slot_keys[insert_at:gap_right]
                self.slot_values[insert_at + 1 : gap_right + 1] = self.slot_values[insert_at:gap_right]
                self.occupied[insert_at + 1 : gap_right + 1] = True
            target = insert_at
        elif gap_left >= 0:
            # Move the run left by one; the key lands just before insert_at.
            if gap_left < insert_at - 1:
                self.slot_keys[gap_left:insert_at - 1] = self.slot_keys[gap_left + 1 : insert_at]
                self.slot_values[gap_left:insert_at - 1] = self.slot_values[gap_left + 1 : insert_at]
                self.occupied[gap_left:insert_at - 1] = True
            target = insert_at - 1
        else:
            return InsertStatus.FULL
        self.slot_keys[target] = key
        self.slot_values[target] = value
        self.occupied[target] = True
        self.n_keys += 1
        self._expected_steps_cache = None
        return InsertStatus.INSERTED

    def _retag_gap_run(self, target: int) -> None:
        """After occupying a gap, refresh fill keys left of it."""
        key = int(self.slot_keys[target])
        probe = target - 1
        while probe >= 0 and not self.occupied[probe] and int(self.slot_keys[probe]) > key:
            self.slot_keys[probe] = key
            probe -= 1

    # ------------------------------------------------------------------
    def iter_entries(self) -> Iterator[tuple[int, int]]:
        """Yield (key, value) pairs in ascending key order."""
        for slot in np.nonzero(self.occupied)[0]:
            yield int(self.slot_keys[slot]), int(self.slot_values[slot])

    def collect_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Occupied keys and values as sorted parallel arrays."""
        occ = np.nonzero(self.occupied)[0]
        return self.slot_keys[occ].copy(), self.slot_values[occ].copy()
