"""ALEX inner node: a linear model routing keys to child pointers.

Each inner node evaluates one linear model to pick a child slot in
O(1); the bulk loader assigns one child per contiguous run of slots
(empty runs get empty data nodes so routing is total).  A min-max
fallback model guards against degenerate fits that would route every
key to one slot (same guard as the LIPP builder).
"""

from __future__ import annotations

from typing import Iterator, Union

import numpy as np

from ...core.linear_model import LinearModel
from .data_node import AlexDataNode

__all__ = ["AlexInnerNode", "AlexNode"]

AlexNode = Union["AlexInnerNode", AlexDataNode]


class AlexInnerNode:
    """Routing node with ``fanout`` child pointers."""

    __slots__ = ("model", "children", "level", "parent", "parent_slot")

    def __init__(self, model: LinearModel, fanout: int, level: int):
        self.model = model
        self.children: list[AlexNode | None] = [None] * fanout
        self.level = level
        self.parent: "AlexInnerNode | None" = None
        self.parent_slot: int | None = None

    @property
    def fanout(self) -> int:
        return len(self.children)

    def child_slot(self, key: int) -> int:
        """Routing slot the model assigns to *key*."""
        return self.model.predict_clamped(key, self.fanout)

    def child_for(self, key: int) -> AlexNode:
        """Child node responsible for *key*."""
        child = self.children[self.child_slot(key)]
        assert child is not None, "bulk loader must populate every slot"
        return child

    def attach(self, slot: int, child: AlexNode) -> None:
        """Install *child* at *slot* and wire the parent pointers."""
        self.children[slot] = child
        child.parent = self
        child.parent_slot = slot

    def iter_unique_children(self) -> Iterator[AlexNode]:
        """Yield each distinct child once (slots may share children)."""
        seen: set[int] = set()
        for child in self.children:
            if child is not None and id(child) not in seen:
                seen.add(id(child))
                yield child

    def walk(self) -> Iterator[AlexNode]:
        """Every node of this subtree (pre-order), self included."""
        stack: list[AlexNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, AlexInnerNode):
                stack.extend(node.iter_unique_children())

    def collect_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted keys/values of the whole subtree."""
        keys_parts: list[np.ndarray] = []
        values_parts: list[np.ndarray] = []
        for child in self.iter_unique_children():
            if isinstance(child, AlexDataNode):
                k, v = child.collect_arrays()
            else:
                k, v = child.collect_arrays()
            if k.size:
                keys_parts.append(k)
                values_parts.append(v)
        if not keys_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        keys = np.concatenate(keys_parts)
        values = np.concatenate(values_parts)
        order = np.argsort(keys, kind="stable")
        return keys[order], values[order]

    def has_subtree(self) -> bool:
        """True when at least one child is itself an inner node."""
        return any(isinstance(c, AlexInnerNode) for c in self.iter_unique_children())
