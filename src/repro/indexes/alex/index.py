"""ALEX index: adaptive bulk loading, lookups, inserts with
expand/split, and the structural metrics the evaluation needs.

The bulk loader recurses top-down (Section 2 of the ALEX paper in
simplified form): a partition of keys becomes a data node when it is
small or when its linear fit already yields a cheap expected search;
otherwise an inner node with a model-derived fanout routes into
recursively built children.  Inserts delegate to the gapped data
nodes; a full node either expands in place (refitting its model) or —
beyond a capacity cap — splits downward into a two-way inner node,
which is how ALEX grows new levels under skewed insertion.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...core.cost_model import expected_search_steps
from ...core.exceptions import IndexStateError
from ...core.linear_model import LinearModel, fit_linear
from ...core.loss import fit_and_loss
from ..base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    POINTER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_batch_kv,
    _as_query_array,
    dedupe_last_wins,
    group_runs,
    prepare_key_values,
)
from .data_node import AlexDataNode, InsertStatus, TARGET_DENSITY
from .inner_node import AlexInnerNode, AlexNode

__all__ = ["AlexIndex"]

#: Partitions at or below this size always become data nodes.
MIN_PARTITION_FOR_INNER = 128
#: A partition whose refitted model searches in no more than this many
#: expected steps stays a data node even if large (ALEX adaptivity).
MAX_DATA_NODE_SEARCH_STEPS = 3.0
#: Upper bound on data node capacity; a full node at the cap splits
#: downward instead of expanding further.
MAX_DATA_NODE_CAPACITY = 8192
#: Routing fanout bounds for inner nodes.
MIN_FANOUT = 4
MAX_FANOUT = 256

MODEL_BYTES = 16

#: In ``bulk_insert_many``, a touched data node is rebuilt only when
#: its key count is at most this multiple of the group landing in it;
#: beyond that the per-key gapped insert wins (rebuild is O(node),
#: crossover measured around 100x — 64 leaves margin).
BULK_LOOP_NODE_RATIO = 64


def _min_max_model(keys: np.ndarray, fanout: int) -> LinearModel:
    span = float(int(keys[-1]) - int(keys[0]))
    if span <= 0:
        return LinearModel(0.0, 0.0)
    slope = (fanout - 1) / span
    return LinearModel(slope, 0.0, pivot=int(keys[0]))


class AlexIndex(LearnedIndex):
    """Updatable Adaptive Learned indEX."""

    name = "alex"

    def __init__(self, root: AlexNode):
        self._root = root

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, keys, values=None) -> "AlexIndex":
        arr, vals = prepare_key_values(keys, values)
        root = cls._build_node(arr, vals, level=1)
        return cls(root)

    @classmethod
    def _build_node(cls, keys: np.ndarray, values: np.ndarray, level: int) -> AlexNode:
        n = int(keys.size)
        if n <= MIN_PARTITION_FOR_INNER:
            return AlexDataNode.from_sorted(keys, values, level)
        __, loss = fit_and_loss(keys)
        if expected_search_steps(loss, n) <= MAX_DATA_NODE_SEARCH_STEPS:
            return AlexDataNode.from_sorted(keys, values, level)
        fanout = int(min(MAX_FANOUT, max(MIN_FANOUT, 2 ** int(np.ceil(np.log2(n / 256))))))
        model = fit_linear(keys).scaled(fanout / n)
        assignments = np.clip(
            np.round(model.predict_array(keys)).astype(np.int64), 0, fanout - 1
        )
        if np.all(assignments == assignments[0]):
            model = _min_max_model(keys, fanout)
            assignments = np.clip(
                np.round(model.predict_array(keys)).astype(np.int64), 0, fanout - 1
            )
        node = AlexInnerNode(model, fanout, level)
        boundaries = np.nonzero(np.diff(assignments))[0] + 1
        starts = np.concatenate([[0], boundaries]).astype(np.int64)
        ends = np.concatenate([boundaries, [n]]).astype(np.int64)
        slot_to_range: dict[int, tuple[int, int]] = {}
        for start, end in zip(starts.tolist(), ends.tolist()):
            slot_to_range[int(assignments[start])] = (start, end)
        for slot in range(fanout):
            if slot in slot_to_range:
                start, end = slot_to_range[slot]
                if end - start == n:
                    # Could not partition (all keys one slot even after
                    # the fallback): force a data node to terminate.
                    return AlexDataNode.from_sorted(keys, values, level)
                child = cls._build_node(keys[start:end], values[start:end], level + 1)
            else:
                child = AlexDataNode.from_sorted(
                    np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), level + 1
                )
            node.attach(slot, child)
        return node

    @property
    def root(self) -> AlexNode:
        return self._root

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _descend(self, key: int) -> tuple[AlexDataNode, int]:
        node = self._root
        levels = 1
        while isinstance(node, AlexInnerNode):
            node = node.child_for(key)
            levels += 1
        assert isinstance(node, AlexDataNode)
        return node, levels

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        node, levels = self._descend(key)
        found, value, steps = node.lookup(key)
        return QueryStats(key=key, found=found, value=value, levels=levels, search_steps=steps)

    def lookup_many(self, keys) -> BatchQueryStats:
        """Batched lookups via a grouped root-to-leaf frontier sweep.

        Each inner node routes its whole query group with one
        vectorised model evaluation; each data node answers its group
        with :meth:`AlexDataNode.lookup_batch`.  Results are scattered
        back into query order and match :meth:`lookup_stats` exactly.
        """
        q = _as_query_array(keys)
        m = q.size
        found = np.zeros(m, dtype=bool)
        values = np.zeros(m, dtype=np.int64)
        levels = np.zeros(m, dtype=np.int64)
        steps = np.zeros(m, dtype=np.int64)
        if m == 0:
            return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)
        frontier: list[tuple[AlexNode, np.ndarray, int]] = [(self._root, np.arange(m), 1)]
        while frontier:
            node, idx, depth = frontier.pop()
            if isinstance(node, AlexInnerNode):
                slots = np.clip(
                    np.rint(node.model.predict_array(q[idx])).astype(np.int64),
                    0,
                    node.fanout - 1,
                )
                for group in group_runs(slots):
                    child = node.children[int(slots[group[0]])]
                    assert child is not None, "bulk loader must populate every slot"
                    frontier.append((child, idx[group], depth + 1))
                continue
            assert isinstance(node, AlexDataNode)
            node_found, node_values, node_steps = node.lookup_batch(q[idx])
            found[idx] = node_found
            values[idx] = node_values
            steps[idx] = node_steps
            levels[idx] = depth
        return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        key = int(key)
        value = int(value)
        node, __ = self._descend(key)
        status = node.insert(key, value)
        if status is not InsertStatus.FULL:
            return
        if node.capacity < MAX_DATA_NODE_CAPACITY:
            self._expand(node)
        else:
            self._split(node)
        # One structural fix always leaves room for the pending insert.
        node, __ = self._descend(key)
        status = node.insert(key, value)
        if status is InsertStatus.FULL:
            raise IndexStateError("insert failed after node expansion/split")

    def bulk_insert_many(self, keys, values=None) -> None:
        """Bulk ingest: sorted-merge into the touched data nodes.

        The batch descends the inner levels as grouped runs (one
        vectorised model evaluation per visited inner node, exactly
        like :meth:`lookup_many`); each data node that receives keys is
        then rebuilt once from the sorted merge of its stored pairs and
        its batch slice — a single :meth:`AlexDataNode._place` sweep
        per touched node instead of one exponential search + gap shift
        per key.  Nodes whose merged run outgrows a healthy data node
        are re-run through :meth:`_build_node`, which grows an inner
        subtree in place (the bulk equivalent of repeated
        expand/split).
        """
        arr, vals = _as_batch_kv(keys, values)
        if arr.size == 0:
            return
        bkeys, bvals = dedupe_last_wins(arr, vals)
        # Route the whole batch; collect (data node -> index runs).
        targets: dict[int, tuple[AlexDataNode, list[np.ndarray]]] = {}
        frontier: list[tuple[AlexNode, np.ndarray]] = [(self._root, np.arange(bkeys.size))]
        while frontier:
            node, idx = frontier.pop()
            if isinstance(node, AlexInnerNode):
                slots = np.clip(
                    np.rint(node.model.predict_array(bkeys[idx])).astype(np.int64),
                    0,
                    node.fanout - 1,
                )
                for group in group_runs(slots):
                    child = node.children[int(slots[group[0]])]
                    assert child is not None, "bulk loader must populate every slot"
                    frontier.append((child, idx[group]))
                continue
            assert isinstance(node, AlexDataNode)
            targets.setdefault(id(node), (node, []))[1].append(idx)
        for node, idx_parts in targets.values():
            idx = np.sort(np.concatenate(idx_parts)) if len(idx_parts) > 1 else np.sort(idx_parts[0])
            if node.n_keys > BULK_LOOP_NODE_RATIO * idx.size:
                # A tiny group landing in a big data node: the gapped
                # per-key insert (with its expand/split machinery) is
                # cheaper than rebuilding the whole node.
                for key, value in zip(bkeys[idx].tolist(), bvals[idx].tolist()):
                    self.insert(key, value)
                continue
            old_keys, old_vals = node.collect_arrays()
            merged_keys, merged_vals = dedupe_last_wins(
                np.concatenate([old_keys, bkeys[idx]]),
                np.concatenate([old_vals, bvals[idx]]),
            )
            self._replace(node, self._build_node(merged_keys, merged_vals, node.level))

    def _replace(self, old: AlexNode, new: AlexNode) -> None:
        parent = old.parent
        if parent is None:
            self._root = new
            new.parent = None
            new.parent_slot = None
            return
        assert old.parent_slot is not None
        parent.attach(old.parent_slot, new)

    def _expand(self, node: AlexDataNode) -> None:
        """Rebuild at target density, at least doubling the capacity."""
        keys, values = node.collect_arrays()
        fresh = AlexDataNode.from_sorted(
            keys,
            values,
            node.level,
            density=TARGET_DENSITY,
            min_capacity=2 * node.capacity,
        )
        self._replace(node, fresh)

    def _split(self, node: AlexDataNode) -> None:
        """Split downward: the slot gets a 2-way inner routing node."""
        keys, values = node.collect_arrays()
        mid = keys.size // 2
        split_key = int(keys[mid])
        # Threshold model pivoted on the split key: keys < split_key
        # round to slot 0, keys >= split_key round to slot 1.  The
        # slope is large enough that the nearest neighbours (distance
        # >= 1) land clear of the 0.5 rounding boundary.
        inner = AlexInnerNode(LinearModel(0.02, 0.51, pivot=split_key), 2, node.level)
        left = AlexDataNode.from_sorted(keys[:mid], values[:mid], node.level + 1)
        right = AlexDataNode.from_sorted(keys[mid:], values[mid:], node.level + 1)
        assert inner.child_slot(int(keys[mid - 1])) == 0
        assert inner.child_slot(split_key) == 1
        inner.attach(0, left)
        inner.attach(1, right)
        self._replace(node, inner)

    # ------------------------------------------------------------------
    # Structure inspection
    # ------------------------------------------------------------------
    def _walk(self) -> Iterator[AlexNode]:
        if isinstance(self._root, AlexInnerNode):
            yield from self._root.walk()
        else:
            yield self._root

    @property
    def n_keys(self) -> int:
        return sum(
            node.n_keys for node in self._walk() if isinstance(node, AlexDataNode)
        )

    def height(self) -> int:
        return max(node.level for node in self._walk())

    def node_count(self) -> int:
        return sum(1 for __ in self._walk())

    def size_bytes(self) -> int:
        total = 0
        for node in self._walk():
            if isinstance(node, AlexInnerNode):
                total += NODE_HEADER_BYTES + MODEL_BYTES + node.fanout * POINTER_BYTES
            else:
                # keys + values + occupancy bitmap
                total += NODE_HEADER_BYTES + MODEL_BYTES
                total += node.capacity * (KEY_BYTES + VALUE_BYTES) + node.capacity // 8
        return total

    def key_level(self, key: int) -> int:
        key = int(key)
        node, levels = self._descend(key)
        found, __, __steps = node.lookup(key)
        if not found:
            raise IndexStateError(f"key {key} is not stored in this ALEX index")
        return levels

    def iter_keys(self) -> Iterator[int]:
        # Data nodes partition the key space in routing order; walk()
        # is unordered, so sort node key arrays by their first key.
        chunks: list[np.ndarray] = []
        for node in self._walk():
            if isinstance(node, AlexDataNode) and node.n_keys:
                chunks.append(node.collect_arrays()[0])
        chunks.sort(key=lambda arr: int(arr[0]))
        for chunk in chunks:
            yield from (int(k) for k in chunk)

    # ------------------------------------------------------------------
    # Reports used by the evaluation harness
    # ------------------------------------------------------------------
    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``.

        Descends to the data node holding *low*, scans its occupied
        slots in order, and hops to the next data node (in key order)
        until the range is exhausted.
        """
        low = int(low)
        high = int(high)
        out: list[tuple[int, int]] = []
        # Collect data nodes ordered by their first key; ALEX data
        # nodes partition the key space so a linear merge is correct.
        nodes = [
            node
            for node in self._walk()
            if isinstance(node, AlexDataNode) and node.n_keys
        ]
        nodes.sort(key=lambda node: int(node.slot_keys[np.argmax(node.occupied)]))
        for node in nodes:
            keys, values = node.collect_arrays()
            if int(keys[-1]) < low:
                continue
            if int(keys[0]) > high:
                break
            lo_pos = int(np.searchsorted(keys, low, side="left"))
            hi_pos = int(np.searchsorted(keys, high, side="right"))
            out.extend(
                (int(k), int(v))
                for k, v in zip(keys[lo_pos:hi_pos], values[lo_pos:hi_pos])
            )
        return out

    def node_levels(self) -> list[int]:
        """Level of every node (for the node-reduction metric)."""
        return [node.level for node in self._walk()]

    def level_histogram(self) -> dict[int, int]:
        """Keys stored per level (data nodes carry the keys)."""
        histogram: dict[int, int] = {}
        for node in self._walk():
            if isinstance(node, AlexDataNode) and node.n_keys:
                histogram[node.level] = histogram.get(node.level, 0) + node.n_keys
        return dict(sorted(histogram.items()))

    def keys_at_or_below(self, level: int) -> np.ndarray:
        """Keys stored at *level* or deeper ("promotable data")."""
        out: list[np.ndarray] = []
        for node in self._walk():
            if isinstance(node, AlexDataNode) and node.n_keys and node.level >= level:
                out.append(node.collect_arrays()[0])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out))
