"""ALEX — an updatable adaptive learned index [2]."""

from .data_node import AlexDataNode, InsertStatus
from .index import AlexIndex
from .inner_node import AlexInnerNode

__all__ = ["AlexDataNode", "AlexIndex", "AlexInnerNode", "InsertStatus"]
