"""PGM-style piecewise-linear index (Ferragina & Vinciguerra [6]).

A one-pass greedy piecewise-linear approximation (PLA) with a maximum
error bound ``epsilon``: while scanning keys in order, a segment keeps
the cone of slopes that keep every covered point within ±ε of the
line through the segment origin; when the cone empties, the segment is
closed and a new one starts.  Levels are built recursively over the
segments' first keys until one segment remains.

Besides being the classical error-bounded baseline, the segmentation
is reused by the SALI substrate to flatten hot subtrees
(:mod:`repro.indexes.sali`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.exceptions import IndexStateError
from .base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_query_array,
    _range_from_sorted_arrays,
    prepare_key_values,
)

__all__ = ["PlaSegment", "build_pla_segments", "PGMIndex"]


@dataclass(frozen=True)
class PlaSegment:
    """One linear segment covering positions [first_pos, last_pos]."""

    first_key: int
    slope: float
    intercept: float
    first_pos: int
    last_pos: int

    def predict(self, key: int) -> int:
        """Predicted position of *key*, clamped to the segment range."""
        pos = int(round(self.slope * (key - self.first_key) + self.intercept))
        return min(max(pos, self.first_pos), self.last_pos)


def build_pla_segments(keys: np.ndarray, epsilon: int = 16) -> list[PlaSegment]:
    """Greedy one-pass PLA with error bound ±*epsilon* positions.

    Maintains the feasible slope interval ``[lo, hi]``; a point that
    empties the interval closes the current segment.  Guarantees
    ``|predict(k) - pos(k)| <= epsilon`` for every covered key.
    """
    if epsilon < 0:
        raise IndexStateError("epsilon must be >= 0")
    n = int(keys.size)
    if n == 0:
        return []
    segments: list[PlaSegment] = []
    start = 0
    while start < n:
        origin_key = int(keys[start])
        lo, hi = -np.inf, np.inf
        end = start + 1
        while end < n:
            dx = float(int(keys[end]) - origin_key)
            if dx <= 0:
                raise IndexStateError("keys must be strictly increasing")
            dy = float(end - start)
            cand_lo = (dy - epsilon) / dx
            cand_hi = (dy + epsilon) / dx
            new_lo = max(lo, cand_lo)
            new_hi = min(hi, cand_hi)
            if new_lo > new_hi:
                break
            lo, hi = new_lo, new_hi
            end += 1
        if end == start + 1:
            slope = 0.0
        else:
            slope = (lo + hi) / 2.0
        segments.append(
            PlaSegment(
                first_key=origin_key,
                slope=slope,
                intercept=float(start),
                first_pos=start,
                last_pos=end - 1,
            )
        )
        start = end
    return segments


class PGMIndex(LearnedIndex):
    """Static multi-level PGM index over sorted unique keys.

    Lookups descend the segment hierarchy (each level costs one
    traversal plus an ε-bounded local search) and finish with a binary
    search confined to ±ε positions around the prediction.
    """

    name = "pgm"

    def __init__(self, keys: np.ndarray, values: np.ndarray, epsilon: int):
        self._keys = keys
        self._values = values
        self._epsilon = int(epsilon)
        # levels[0] indexes the data; levels[i>0] index level i-1's
        # segment first-keys.  Built until a level has one segment.
        self._levels: list[list[PlaSegment]] = []
        self._level_keys: list[np.ndarray] = []
        current = keys
        while True:
            segments = build_pla_segments(current, self._epsilon)
            self._levels.append(segments)
            self._level_keys.append(current)
            if len(segments) <= 1:
                break
            current = np.asarray([s.first_key for s in segments], dtype=np.int64)
        # Struct-of-arrays view of each level's segments for the
        # vectorised batch descent (first_key, slope, intercept,
        # first_pos, last_pos parallel arrays).
        self._level_params = [
            (
                np.asarray([s.first_key for s in segs], dtype=np.int64),
                np.asarray([s.slope for s in segs], dtype=np.float64),
                np.asarray([s.intercept for s in segs], dtype=np.float64),
                np.asarray([s.first_pos for s in segs], dtype=np.int64),
                np.asarray([s.last_pos for s in segs], dtype=np.int64),
            )
            for segs in self._levels
        ]

    @classmethod
    def build(cls, keys, values=None, epsilon: int = 16) -> "PGMIndex":
        arr, vals = prepare_key_values(keys, values)
        return cls(arr, vals, epsilon)

    def insert(self, key: int, value: int) -> None:
        raise NotImplementedError("this PGM reproduction is static (bulk-load only)")

    def _bounded_search(self, level_keys: np.ndarray, seg: PlaSegment, key: int) -> tuple[int, int]:
        predicted = seg.predict(key)
        lo = max(predicted - self._epsilon, 0)
        hi = min(predicted + self._epsilon + 1, int(level_keys.size))
        pos = bisect.bisect_right(level_keys.tolist(), key, lo, hi) - 1
        steps = max(1, int(np.ceil(np.log2(hi - lo + 1))))
        return max(pos, 0), steps

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        levels_used = 0
        steps = 0
        # Descend from the top level to level 0.
        top = len(self._levels) - 1
        seg = self._levels[top][0]
        for level in range(top, -1, -1):
            levels_used += 1
            level_keys = self._level_keys[level]
            pos, level_steps = self._bounded_search(level_keys, seg, key)
            steps += level_steps
            if level == 0:
                found = pos < self._keys.size and int(self._keys[pos]) == key
                value = int(self._values[pos]) if found else None
                return QueryStats(key=key, found=found, value=value, levels=levels_used, search_steps=steps)
            # pos is the child segment index at the level below.
            child_segments = self._levels[level - 1]
            seg_idx = min(pos, len(child_segments) - 1)
            # Segment first positions at level-1 are indexed by this
            # level's keys one-to-one.
            seg = child_segments[seg_idx]
        raise AssertionError("unreachable")

    def lookup_many(self, keys) -> BatchQueryStats:
        """Vectorised batch descent of the segment hierarchy.

        Every level costs four array ops for the whole batch: gather
        the per-query segment parameters, predict, clamp the ε-window,
        and one full-array ``searchsorted`` whose result is clipped
        into the window (equivalent to the scalar bounded bisect, since
        the level keys are globally sorted).
        """
        q = _as_query_array(keys)
        m = q.size
        steps = np.zeros(m, dtype=np.int64)
        seg_idx = np.zeros(m, dtype=np.int64)  # top level has one segment
        top = len(self._levels) - 1
        for level in range(top, -1, -1):
            first_key, slope, intercept, first_pos, last_pos = self._level_params[level]
            level_keys = self._level_keys[level]
            delta = (q - first_key[seg_idx]).astype(np.float64)
            predicted = np.rint(slope[seg_idx] * delta + intercept[seg_idx]).astype(np.int64)
            predicted = np.clip(predicted, first_pos[seg_idx], last_pos[seg_idx])
            lo = np.maximum(predicted - self._epsilon, 0)
            hi = np.minimum(predicted + self._epsilon + 1, int(level_keys.size))
            pos = np.clip(np.searchsorted(level_keys, q, side="right"), lo, hi) - 1
            steps += np.maximum(1, np.ceil(np.log2(hi - lo + 1)).astype(np.int64))
            pos = np.maximum(pos, 0)
            if level == 0:
                n = int(self._keys.size)
                found = np.zeros(m, dtype=bool)
                in_range = pos < n
                found[in_range] = self._keys[pos[in_range]] == q[in_range]
                values = np.zeros(m, dtype=np.int64)
                values[found] = self._values[pos[found]]
                levels_used = np.full(m, len(self._levels), dtype=np.int64)
                return BatchQueryStats(
                    keys=q, found=found, values=values, levels=levels_used, search_steps=steps
                )
            seg_idx = np.minimum(pos, len(self._levels[level - 1]) - 1)
        raise AssertionError("unreachable")

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``.

        The data level is one dense sorted array, so (as in the real
        PGM) a range is the slice between the bounds' positions; the
        segment hierarchy is only needed to *price* locating the first
        key, not to enumerate the range.
        """
        return _range_from_sorted_arrays(self._keys, self._values, low, high)

    @property
    def n_keys(self) -> int:
        return int(self._keys.size)

    def height(self) -> int:
        return len(self._levels)

    def node_count(self) -> int:
        return sum(len(level) for level in self._levels)

    def size_bytes(self) -> int:
        seg_bytes = KEY_BYTES + 8 + 8 + 8  # first_key, slope, intercept, pos
        total = self._keys.size * (KEY_BYTES + VALUE_BYTES)
        for level in self._levels:
            total += NODE_HEADER_BYTES + len(level) * seg_bytes
        return total

    def key_level(self, key: int) -> int:
        # All data lives at the deepest level of the hierarchy.
        return self.height()

    def iter_keys(self) -> Iterator[int]:
        yield from (int(k) for k in self._keys)

    @property
    def epsilon(self) -> int:
        return self._epsilon

    @property
    def segment_count(self) -> int:
        """Number of data-level segments (a CDF-hardness measure)."""
        return len(self._levels[0])
