"""LIPP — Updatable Learned Index with Precise Positions [33]."""

from .index import LippIndex
from .node import SLOT_CHILD, SLOT_DATA, SLOT_EMPTY, LippNode

__all__ = ["LippIndex", "LippNode", "SLOT_CHILD", "SLOT_DATA", "SLOT_EMPTY"]
