"""LIPP node: a precise-position gapped slot array (Wu et al. [33]).

Every node owns ``m`` slots addressed *directly* by its linear model:
``slot = clamp(round(model(key)))``.  A slot is EMPTY, holds one DATA
entry, or points to a CHILD node built recursively from the keys that
collided there.  Because the model prediction *is* the position, LIPP
has no in-node search component — lookups cost traversal only, which
is why the paper uses the pure loss value as LIPP's CSV cost condition
(Section 5.1).

Model choice at build time follows LIPP's FMCD idea in simplified
form: an OLS fit over the keys' ranks, scaled to the slot count, with
a min-max (endpoint interpolation) fallback whenever the OLS model
would dump every key into a single slot (which would not terminate).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

import numpy as np

from ...core.linear_model import LinearModel, fit_linear

__all__ = ["SLOT_EMPTY", "SLOT_DATA", "SLOT_CHILD", "LippNode"]

SLOT_EMPTY = 0
SLOT_DATA = 1
SLOT_CHILD = 2

#: Slots allocated per key at build time.  1.0 reproduces the compact
#: allocation of the original LIPP; CSV-rebuilt nodes instead size the
#: array to the smoothed point set, materialising the virtual points
#: as reusable gaps.
DEFAULT_SLOT_FACTOR = 1.0

MIN_SLOTS = 2


def _fallback_model(keys: np.ndarray, m: int) -> LinearModel:
    """Endpoint interpolation: first key → slot 0, last key → slot m-1.

    Guarantees at least two distinct predicted slots for n >= 2 keys,
    so recursion on conflict groups strictly shrinks.
    """
    span = float(int(keys[-1]) - int(keys[0]))
    slope = (m - 1) / span
    return LinearModel(slope, 0.0, pivot=int(keys[0]))


class LippNode:
    """One LIPP node (slot array + model + children)."""

    __slots__ = (
        "model",
        "slot_type",
        "slot_keys",
        "slot_values",
        "children",
        "level",
        "parent",
        "parent_slot",
        "n_subtree_keys",
        "virtual_slots",
        "conflicts_since_build",
        "access_count",
    )

    def __init__(self, m: int, model: LinearModel, level: int):
        self.model = model
        self.slot_type = np.zeros(m, dtype=np.uint8)
        self.slot_keys = np.zeros(m, dtype=np.int64)
        self.slot_values = np.zeros(m, dtype=np.int64)
        self.children: dict[int, "LippNode"] = {}
        self.level = level
        self.parent: "LippNode | None" = None
        self.parent_slot: int | None = None
        self.n_subtree_keys = 0
        #: Slots that exist because of CSV virtual points (gap budget).
        self.virtual_slots = 0
        #: Insert-time conflicts accumulated since this node was built;
        #: drives LIPP's subtree-rebuild adjustment.
        self.conflicts_since_build = 0
        #: Lookup traversals through this node (used by SALI's
        #: probability model; plain LIPP ignores it).
        self.access_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_keys(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        level: int,
        slot_factor: float = DEFAULT_SLOT_FACTOR,
        m: int | None = None,
        model: LinearModel | None = None,
    ) -> "LippNode":
        """Build a node (and conflict children) over level frontiers.

        With *m*/*model* given, the caller controls the root layout —
        this is how CSV rebuilds install the smoothed model over an
        array sized to the smoothed point set.  Construction is an
        explicit breadth-first worklist: every node lays out its whole
        key run with vectorised grouping, and conflict runs are queued
        as the next level's frontier instead of recursing — bounded
        stack depth on adversarially deep conflict chains, and the
        natural emission order for the level-ordered flat compile.
        """
        root, pending = cls._layout(keys, values, level, slot_factor, m, model)
        frontier = deque(pending)
        while frontier:
            parent, slot, group_keys, group_values = frontier.popleft()
            child, sub_pending = cls._layout(
                group_keys, group_values, parent.level + 1, slot_factor, None, None
            )
            child.parent = parent
            child.parent_slot = slot
            parent.slot_type[slot] = SLOT_CHILD
            parent.children[slot] = child
            frontier.extend(sub_pending)
        return root

    @classmethod
    def _layout(
        cls,
        keys: np.ndarray,
        values: np.ndarray,
        level: int,
        slot_factor: float,
        m: int | None,
        model: LinearModel | None,
    ) -> tuple["LippNode", list]:
        """Lay out one node; conflict runs are returned, not built.

        Returns ``(node, pending)`` where each pending entry is
        ``(node, slot, keys, values)`` — a conflict group the caller
        must attach as a child.
        """
        n = int(keys.size)
        if m is None:
            m = max(MIN_SLOTS, int(np.ceil(n * slot_factor)))
        if model is None and n == 2:
            # Conflict pairs are the bulk of all child builds; the OLS
            # fit over two ranks reduces analytically to endpoint
            # interpolation (first key -> slot 0, last -> slot m-1),
            # so skip the generic fit/predict/group machinery.  The
            # resulting layout is identical to the generic path's.
            k0 = int(keys[0])
            span = int(keys[1]) - k0
            node = cls(m, LinearModel((m - 1) / span, 0.0, pivot=k0), level)
            node.n_subtree_keys = 2
            node.slot_type[0] = SLOT_DATA
            node.slot_keys[0] = keys[0]
            node.slot_values[0] = values[0]
            node.slot_type[m - 1] = SLOT_DATA
            node.slot_keys[m - 1] = keys[1]
            node.slot_values[m - 1] = values[1]
            return node, []
        if model is None:
            if n <= 1:
                # Zero or one key: constant model (the n == 0 case is
                # the empty-index bulk-load seed; fit_linear rejects
                # empty inputs).
                model = LinearModel(0.0, 0.0)
            else:
                scaled = fit_linear(keys).scaled((m - 1) / max(n - 1, 1))
                model = scaled
        node = cls(m, model, level)
        node.n_subtree_keys = n
        if n == 0:
            return node, []
        predicted = np.clip(
            np.round(model.predict_array(keys)).astype(np.int64), 0, m - 1
        )
        if n >= 2 and np.all(predicted == predicted[0]):
            # Degenerate model: every key in one slot.  Fall back to
            # min-max interpolation (two or more distinct slots).
            node.model = _fallback_model(keys, m)
            predicted = np.clip(
                np.round(node.model.predict_array(keys)).astype(np.int64), 0, m - 1
            )
        # Group consecutive keys sharing a predicted slot.  Runs of
        # one key (the common case) are written with a single scatter;
        # only conflict runs become next-frontier children.
        boundaries = np.nonzero(np.diff(predicted))[0] + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [n]])
        single = (ends - starts) == 1
        if np.any(single):
            s_starts = starts[single]
            s_slots = predicted[s_starts]
            node.slot_type[s_slots] = SLOT_DATA
            node.slot_keys[s_slots] = keys[s_starts]
            node.slot_values[s_slots] = values[s_starts]
        multi = ~single
        pending = [
            (node, int(predicted[start]), keys[start:end], values[start:end])
            for start, end in zip(starts[multi].tolist(), ends[multi].tolist())
        ]
        return node, pending

    @property
    def m(self) -> int:
        """Slot count of this node."""
        return int(self.slot_type.size)

    @property
    def has_subtree(self) -> bool:
        return bool(self.children)

    @property
    def conflict_count(self) -> int:
        """Number of slots that overflowed into children."""
        return len(self.children)

    # ------------------------------------------------------------------
    # Queries / updates (single-node step; traversal drives recursion)
    # ------------------------------------------------------------------
    def slot_of(self, key: int) -> int:
        """The precise slot the model assigns to *key*."""
        return self.model.predict_clamped(key, self.m)

    def make_conflict_child(
        self, slot: int, key: int, value: int, slot_factor: float = DEFAULT_SLOT_FACTOR
    ) -> "LippNode":
        """Turn a DATA *slot* into a CHILD holding both entries."""
        pair = sorted([(int(self.slot_keys[slot]), int(self.slot_values[slot])), (key, value)])
        child_keys = np.asarray([p[0] for p in pair], dtype=np.int64)
        child_vals = np.asarray([p[1] for p in pair], dtype=np.int64)
        child = LippNode.from_keys(child_keys, child_vals, self.level + 1, slot_factor)
        child.parent = self
        child.parent_slot = slot
        self.slot_type[slot] = SLOT_CHILD
        self.slot_keys[slot] = 0
        self.slot_values[slot] = 0
        self.children[slot] = child
        return child

    def relevel(self, level: int) -> None:
        """Set this subtree's levels as if the root were at *level*."""
        delta = level - self.level
        if delta == 0:
            return
        for node in self.walk():
            node.level += delta

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def local_entries(self) -> Iterator[tuple[int, int]]:
        """Yield (key, value) pairs stored directly in this node."""
        for slot in np.nonzero(self.slot_type == SLOT_DATA)[0]:
            yield int(self.slot_keys[slot]), int(self.slot_values[slot])

    def iter_entries(self) -> Iterator[tuple[int, int]]:
        """Yield (key, value) pairs of the subtree in ascending order."""
        for slot in range(self.m):
            kind = int(self.slot_type[slot])
            if kind == SLOT_DATA:
                yield int(self.slot_keys[slot]), int(self.slot_values[slot])
            elif kind == SLOT_CHILD:
                yield from self.children[slot].iter_entries()

    def collect_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Subtree keys and values as sorted parallel arrays.

        Vectorised flatten: every node contributes its DATA slots with
        one masked gather (non-``LippNode`` leaves — SALI's flattened
        subtrees — contribute their dense arrays), and a final argsort
        restores global key order.  Keys are unique across a subtree,
        so sorting the unordered concatenation is exact.  This is the
        primitive the bulk-ingest and subtree-rebuild paths lean on; a
        per-entry Python walk here would dominate their cost.
        """
        key_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        for node in self.walk():
            if isinstance(node, LippNode):
                data = np.nonzero(node.slot_type == SLOT_DATA)[0]
                if data.size:
                    key_parts.append(node.slot_keys[data])
                    val_parts.append(node.slot_values[data])
            else:  # flattened leaf (duck-typed): already dense arrays
                k, v = node.collect_arrays()
                if k.size:
                    key_parts.append(k)
                    val_parts.append(v)
        if not key_parts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        keys = np.concatenate(key_parts)
        values = np.concatenate(val_parts)
        order = np.argsort(keys, kind="stable")
        return keys[order], values[order]

    def walk(self) -> Iterator["LippNode"]:
        """Yield every node of the subtree (pre-order)."""
        stack: list[LippNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def visit_data_levels(self, visit: Callable[[int, int], None]) -> None:
        """Call ``visit(key, level)`` for every key of the subtree."""
        for node in self.walk():
            for key, __ in node.local_entries():
                visit(key, node.level)

    def subtree_loss(self) -> float:
        """Aggregate per-node SSE over the subtree (Eq. 2 restricted).

        For each node, the error of a key is the distance between its
        predicted slot and... zero: LIPP keys sit exactly where the
        model puts them, so per-node loss counts *conflicts* instead —
        the squared size of each conflict group, matching how unresolved
        prediction mass pushes keys into children.
        """
        total = 0.0
        for node in self.walk():
            for child in node.children.values():
                total += float(child.n_subtree_keys) ** 2
        return total
