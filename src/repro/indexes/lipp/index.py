"""LIPP index facade over :class:`~repro.indexes.lipp.node.LippNode`.

LIPP (Updatable Learned Index with Precise Positions, [33]) answers a
lookup purely by traversal: each level evaluates one linear model and
lands exactly on a slot.  Its query time is therefore proportional to
the depth of the key — the effect Fig. 1 of the paper measures and CSV
attacks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...core.exceptions import IndexStateError
from ..base import (
    KEY_BYTES,
    MODEL_BYTES,
    NODE_HEADER_BYTES,
    OFFSET_BYTES,
    POINTER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_batch_kv,
    _as_query_array,
    alloc_batch_outputs,
    dedupe_last_wins,
    group_runs,
    prepare_key_values,
)
from ...obs.metrics import get_registry
from ...obs.tracing import trace
from .flat import FlatLipp, StaleFlatError
from .node import DEFAULT_SLOT_FACTOR, SLOT_CHILD, SLOT_DATA, SLOT_EMPTY, LippNode

__all__ = ["LippIndex"]

#: Bytes per slot: 1 type byte + key + value/pointer union.
SLOT_BYTES = 1 + KEY_BYTES + VALUE_BYTES

#: Query groups at or below this size descend scalar-style inside
#: :meth:`LippIndex.lookup_many` — conflict subtrees are tiny, and a
#: handful of Python ops beats a dozen numpy dispatches on 2-3 keys.
SMALL_GROUP = 4


class LippIndex(LearnedIndex):
    """Updatable precise-position learned index."""

    name = "lipp"

    def __init__(self, root: LippNode, slot_factor: float, use_flat: bool = True):
        self._root = root
        self._slot_factor = slot_factor
        #: With ``use_flat`` unset the index runs entirely on the
        #: node-object sweeps — the authoritative oracle the flat
        #: parity suite compares against.
        self._use_flat = bool(use_flat)
        self._flat: FlatLipp | None = None
        self._flat_uncompilable = False

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys,
        values=None,
        slot_factor: float = DEFAULT_SLOT_FACTOR,
        use_flat: bool = True,
    ) -> "LippIndex":
        arr, vals = prepare_key_values(keys, values)
        root = LippNode.from_keys(arr, vals, level=1, slot_factor=slot_factor)
        return cls(root, slot_factor, use_flat=use_flat)

    @property
    def root(self) -> LippNode:
        return self._root

    @property
    def slot_factor(self) -> float:
        return self._slot_factor

    # ------------------------------------------------------------------
    # Flat-view cache management
    # ------------------------------------------------------------------
    def invalidate_flat(self) -> None:
        """Drop the compiled flat view after a structural change.

        Every code path that alters tree *structure* (conflict child,
        subtree rebuild, CSV re-smoothing, SALI flattening) must call
        this; in-place slot writes need not, because the node slot
        arrays are views into the flat buffers.  Code performing
        direct tree surgery outside the index API (tests, adapters)
        must call it too.
        """
        self._flat = None
        self._flat_uncompilable = False

    def prewarm_flat(self) -> None:
        """Compile the flat view now (e.g. before serving a shard)."""
        self._flat_view()

    def _flat_view(self) -> FlatLipp | None:
        """The compiled flat view, or None when disabled/unsupported."""
        if not self._use_flat or self._flat_uncompilable:
            return None
        if self._flat is None:
            reg = get_registry()
            if reg.enabled:
                with trace("flat_compile", registry=reg, family=self.name):
                    self._flat = FlatLipp.compile(self._root)
                reg.counter("flat_compiles_total", family=self.name).inc()
            else:
                self._flat = FlatLipp.compile(self._root)
            if self._flat is None:
                self._flat_uncompilable = True
        return self._flat

    # ------------------------------------------------------------------
    def _descend(self, key: int) -> tuple[LippNode, int, int]:
        """Walk to the node whose model addresses *key* terminally.

        Returns ``(node, slot, levels)``.
        """
        return self._descend_from(self._root, key, 1)

    @staticmethod
    def _descend_from(node: LippNode, key: int, levels: int) -> tuple[LippNode, int, int]:
        """:meth:`_descend` starting at an arbitrary (node, depth)."""
        while True:
            slot = node.slot_of(key)
            if int(node.slot_type[slot]) == SLOT_CHILD:
                node = node.children[slot]
                levels += 1
                continue
            return node, slot, levels

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        node, slot, levels = self._descend(key)
        kind = int(node.slot_type[slot])
        if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
            return QueryStats(
                key=key,
                found=True,
                value=int(node.slot_values[slot]),
                levels=levels,
                search_steps=0,
            )
        return QueryStats(key=key, found=False, value=None, levels=levels, search_steps=0)

    def lookup_many(self, keys) -> BatchQueryStats:
        """Batched precise-position lookups.

        With the flat view enabled (the default) the whole batch is
        answered by :meth:`FlatLipp.lookup_many_into` — a few
        vectorised gathers per tree level over the surviving query
        frontier.  The node-object sweep (:meth:`_batch_descend`)
        remains the authoritative oracle (``use_flat=False``) and the
        fallback for trees the flat view cannot represent.  LIPP
        lookups have no search component, so ``search_steps`` is all
        zeros, exactly as in :meth:`lookup_stats`.
        """
        q = _as_query_array(keys)
        found, values, levels, steps = alloc_batch_outputs(q.size)
        if q.size:
            self._batch_lookup(q, found, values, levels, steps, track=False)
        return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)

    def _batch_lookup(
        self,
        q: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        levels: np.ndarray,
        steps: np.ndarray,
        track: bool,
    ) -> None:
        """Route a batch through the flat view, falling back to the
        node-object oracle sweep.

        A :class:`StaleFlatError` (raised before any output is
        written) triggers one recompile-and-retry; trees that cannot
        be compiled at all descend through :meth:`_batch_descend`.
        """
        flat = self._flat_view()
        if flat is not None:
            try:
                self._flat_sweep(flat, q, found, values, levels, steps, track)
                return
            except StaleFlatError:
                reg = get_registry()
                if reg.enabled:
                    reg.counter("flat_stale_retries_total", family=self.name).inc()
                self.invalidate_flat()
                flat = self._flat_view()
                if flat is not None:
                    self._flat_sweep(flat, q, found, values, levels, steps, track)
                    return
        self._batch_descend(q, found, values, levels, steps, track)

    @staticmethod
    def _flat_sweep(
        flat: FlatLipp,
        q: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        levels: np.ndarray,
        steps: np.ndarray,
        track: bool,
    ) -> None:
        """One flat lookup sweep, crediting access counts when tracked."""
        if not track:
            flat.lookup_many_into(q, found, values, levels, steps)
            return
        visit_counts = np.zeros(flat.n_nodes, dtype=np.int64)
        leaf_visits = np.zeros(len(flat.leaves), dtype=np.int64)
        flat.lookup_many_into(q, found, values, levels, steps, visit_counts, leaf_visits)
        flat.credit_access(visit_counts, leaf_visits)

    def _batch_descend(
        self,
        q: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        levels: np.ndarray,
        steps: np.ndarray,
        track: bool,
    ) -> None:
        """Grouped frontier sweep shared by LIPP and SALI.

        Scatters results into the caller's output arrays.  With
        ``track`` set, every node on each query's path has its
        ``access_count`` credited (aggregate-equivalent to SALI's
        per-query ``record_path``).  Leaves that are not
        :class:`LippNode` (SALI's flattened subtrees) are answered via
        their ``lookup``/``lookup_batch`` duck-type interface.
        """
        frontier: list[tuple[object, np.ndarray, int]] = [(self._root, np.arange(q.size), 1)]
        while frontier:
            node, idx, depth = frontier.pop()
            if idx.size <= SMALL_GROUP:
                # Tiny conflict subtrees: scalar descent beats numpy
                # dispatch on 2-3 keys.
                for j in idx.tolist():
                    key = int(q[j])
                    sub, lvl = node, depth
                    while True:
                        if track:
                            sub.access_count += 1
                        if not isinstance(sub, LippNode):
                            f, v, s = sub.lookup(key)
                            found[j] = f
                            if f:
                                values[j] = v
                            steps[j] = s
                            levels[j] = lvl
                            break
                        slot = sub.slot_of(key)
                        kind = int(sub.slot_type[slot])
                        if kind == SLOT_CHILD:
                            sub = sub.children[slot]
                            lvl += 1
                            continue
                        levels[j] = lvl
                        if kind == SLOT_DATA and int(sub.slot_keys[slot]) == key:
                            found[j] = True
                            values[j] = sub.slot_values[slot]
                        break
                continue
            if track:
                node.access_count += int(idx.size)
            if not isinstance(node, LippNode):
                node_found, node_values, node_steps = node.lookup_batch(q[idx])
                found[idx] = node_found
                values[idx] = node_values
                steps[idx] = node_steps
                levels[idx] = depth
                continue
            slots = np.clip(
                np.rint(node.model.predict_array(q[idx])).astype(np.int64), 0, node.m - 1
            )
            kinds = node.slot_type[slots]
            terminal = kinds != SLOT_CHILD
            if np.any(terminal):
                t_idx = idx[terminal]
                t_slots = slots[terminal]
                levels[t_idx] = depth
                hit = (kinds[terminal] == SLOT_DATA) & (node.slot_keys[t_slots] == q[t_idx])
                hit_idx = t_idx[hit]
                found[hit_idx] = True
                values[hit_idx] = node.slot_values[t_slots[hit]]
            child_mask = ~terminal
            if np.any(child_mask):
                c_idx = idx[child_mask]
                c_slots = slots[child_mask]
                for group in group_runs(c_slots):
                    child = node.children[int(c_slots[group[0]])]
                    frontier.append((child, c_idx[group], depth + 1))

    def insert(self, key: int, value: int) -> None:
        """Insert one entry; conflicts may create a child or trigger a
        subtree rebuild.

        LIPP's *adjustment* strategy: each node counts the insert
        conflicts it has absorbed since it was (re)built, and once the
        count passes a fraction of its subtree size the whole subtree
        is rebuilt from its sorted keys.  This keeps conflict chains
        from degenerating into linked lists.
        """
        key = int(key)
        value = int(value)
        path: list[LippNode] = []
        node = self._root
        while True:
            path.append(node)
            slot = node.slot_of(key)
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                node = node.children[slot]
                continue
            break
        if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
            node.slot_values[slot] = value
            return
        for visited in path:
            visited.n_subtree_keys += 1
        if kind == SLOT_EMPTY:
            node.slot_type[slot] = SLOT_DATA
            node.slot_keys[slot] = key
            node.slot_values[slot] = value
            return
        node.make_conflict_child(slot, key, value, self._slot_factor)
        self.invalidate_flat()
        for visited in path:
            visited.conflicts_since_build += 1
        self._maybe_rebuild(path)

    #: A node is rebuilt when its conflict count since build exceeds
    #: ``max(REBUILD_MIN_CONFLICTS, REBUILD_RATIO * subtree size)``.
    REBUILD_MIN_CONFLICTS = 8
    REBUILD_RATIO = 0.1

    # ------------------------------------------------------------------
    # Bulk ingest
    # ------------------------------------------------------------------
    #: A batch group covering at least this fraction of the subtree it
    #: lands in triggers a sorted-merge rebuild of the whole subtree
    #: (flatten + merge + ``from_keys``) instead of a grouped descent.
    BULK_REBUILD_FRACTION = 0.25
    #: Subtrees at or below this many keys are always rebuilt — the
    #: flatten/merge is a handful of array ops, cheaper than recursing.
    BULK_SMALL_SUBTREE = 64

    def bulk_insert_many(self, keys, values=None) -> None:
        """Bulk ingest: in-place gapped merge of the touched slots.

        A batch *dense* relative to the whole index (or landing in a
        tiny tree) still takes the wholesale sorted-merge rebuild
        (:meth:`_bulk_into`: flatten + merge + one
        :meth:`LippNode.from_keys`), which amortises model fits across
        the group.  Sparse batches instead run the ALEX-style gapped
        merge over the flat view: one vectorised :meth:`FlatLipp.
        locate` sweep addresses every key's terminal slot, overwrites
        and unique-gap fills are pure array scatters through the
        shared slot buffers, and only genuinely conflicting slots
        (several keys colliding, or colliding with an existing entry)
        build conflict children — no subtree is rebuilt unless its
        accumulated conflicts cross LIPP's adjustment threshold.
        Rebuilt subtrees start with fresh conflict counters, so the
        physical layout may differ from the per-key loop's; lookup
        contents are identical.
        """
        arr, vals = _as_batch_kv(keys, values)
        if arr.size == 0:
            return
        reg = get_registry()
        if reg.enabled:
            reg.counter("bulk_insert_batches_total", family=self.name).inc()
            reg.counter("bulk_insert_keys_total", family=self.name).inc(int(arr.size))
        bkeys, bvals = dedupe_last_wins(arr, vals)
        n = self._root.n_subtree_keys
        dense = n <= self.BULK_SMALL_SUBTREE or bkeys.size >= self.BULK_REBUILD_FRACTION * n
        if not dense:
            flat = self._flat_view()
            if flat is not None:
                try:
                    self._gapped_merge(flat, bkeys, bvals)
                    if reg.enabled:
                        reg.counter("bulk_gapped_merges_total", family=self.name).inc()
                    return
                except StaleFlatError:
                    if reg.enabled:
                        reg.counter("flat_stale_retries_total", family=self.name).inc()
                    self.invalidate_flat()
                    flat = self._flat_view()
                    if flat is not None:
                        self._gapped_merge(flat, bkeys, bvals)
                        if reg.enabled:
                            reg.counter("bulk_gapped_merges_total", family=self.name).inc()
                        return
        replacement, __ = self._bulk_into(self._root, bkeys, bvals)
        if replacement is not self._root:
            replacement.parent = None
            replacement.parent_slot = None
            self._root = replacement
        self.invalidate_flat()
        if reg.enabled:
            reg.counter("bulk_rebuilds_total", family=self.name).inc()

    def _gapped_merge(self, flat: FlatLipp, bkeys: np.ndarray, bvals: np.ndarray) -> None:
        """Merge a sorted unique batch through the compiled flat view.

        One :meth:`FlatLipp.locate` sweep addresses every key; the
        merge itself is three vectorised scatters (value overwrites,
        unique-gap fills, per-leaf group merges) plus a Python loop
        over only the *conflicting* slots.  Subtree-key counts are
        propagated up the (short) parent chains of the touched
        terminal nodes, and nodes whose conflict counters cross the
        adjustment threshold are rebuilt shallow-first afterwards.
        """
        term_node, term_slot, term_kind, leaf_of = flat.locate(bkeys)
        nodes = flat.nodes
        slot_start = flat.slot_start
        net_by_node = np.zeros(len(nodes), dtype=np.int64)
        conflict_nodes: dict[int, LippNode] = {}
        structural = False

        # Flattened leaves (SALI): one merge + re-segmentation per
        # touched leaf; swapping the rebuilt leaf into ``flat.leaves``
        # keeps the slot_child mapping valid with no recompile.
        l_rows = np.nonzero(leaf_of >= 0)[0]
        if l_rows.size:
            l_rows = l_rows[np.argsort(leaf_of[l_rows], kind="stable")]
            l_ids = leaf_of[l_rows]
            for group in group_runs(l_ids):
                sel = l_rows[group]
                leaf_id = int(l_ids[group[0]])
                leaf = flat.leaves[leaf_id]
                old_k, old_v = leaf.collect_arrays()
                merged_k, merged_v = dedupe_last_wins(
                    np.concatenate([old_k, bkeys[sel]]),
                    np.concatenate([old_v, bvals[sel]]),
                )
                rebuilt = type(leaf)(merged_k, merged_v, leaf.level, leaf.epsilon)
                parent = leaf.parent
                rebuilt.parent = parent
                rebuilt.parent_slot = leaf.parent_slot
                parent.children[leaf.parent_slot] = rebuilt
                flat.leaves[leaf_id] = rebuilt
                net = int(merged_k.size) - int(old_k.size)
                if net:
                    self._credit_chain(parent, net)

        # DATA terminals: a slot whose single key matches the stored
        # key is a pure value overwrite through the shared buffers;
        # anything else is a conflict group merged into a child.
        d_rows = np.nonzero(term_kind == SLOT_DATA)[0]
        if d_rows.size:
            d_slots = term_slot[d_rows]
            match = flat.slot_keys[d_slots] == bkeys[d_rows]
            uniq, inv, counts = np.unique(d_slots, return_inverse=True, return_counts=True)
            matches_per_slot = np.bincount(inv, weights=match.astype(np.float64))
            pure = (counts == 1) & (matches_per_slot.astype(np.int64) == 1)
            ov_rows = d_rows[pure[inv]]
            if ov_rows.size:
                flat.slot_values[term_slot[ov_rows]] = bvals[ov_rows]
            for gslot in uniq[~pure].tolist():
                sel = d_rows[d_slots == gslot]
                node_id = int(term_node[sel[0]])
                node = nodes[node_id]
                local = int(gslot - slot_start[node_id])
                merged_k, merged_v = dedupe_last_wins(
                    np.concatenate(
                        [np.asarray([int(flat.slot_keys[gslot])], dtype=np.int64), bkeys[sel]]
                    ),
                    np.concatenate(
                        [np.asarray([int(flat.slot_values[gslot])], dtype=np.int64), bvals[sel]]
                    ),
                )
                node.slot_keys[local] = 0
                node.slot_values[local] = 0
                self._attach_bulk_child(node, local, merged_k, merged_v)
                node.conflicts_since_build += 1
                conflict_nodes[id(node)] = node
                net_by_node[node_id] += int(merged_k.size) - 1
                structural = True

        # EMPTY terminals: unique landings fill their gap with one
        # scatter; colliding groups become a fresh child.
        e_rows = np.nonzero(term_kind == SLOT_EMPTY)[0]
        if e_rows.size:
            e_slots = term_slot[e_rows]
            uniq, first, counts = np.unique(e_slots, return_index=True, return_counts=True)
            single = counts == 1
            if np.any(single):
                rows = e_rows[first[single]]
                slots = uniq[single]
                flat.slot_type[slots] = SLOT_DATA
                flat.slot_keys[slots] = bkeys[rows]
                flat.slot_values[slots] = bvals[rows]
                np.add.at(net_by_node, term_node[rows], 1)
            for gslot in uniq[~single].tolist():
                sel = e_rows[e_slots == gslot]
                node_id = int(term_node[sel[0]])
                node = nodes[node_id]
                local = int(gslot - slot_start[node_id])
                self._attach_bulk_child(node, local, bkeys[sel], bvals[sel])
                net_by_node[node_id] += int(sel.size)
                structural = True

        for node_id in np.nonzero(net_by_node)[0].tolist():
            self._credit_chain(nodes[node_id], int(net_by_node[node_id]))

        # LIPP's adjustment, batch-style: rebuild any node whose
        # accumulated conflicts crossed the threshold, shallow-first
        # (a rebuilt ancestor subsumes its descendants).
        if conflict_nodes:
            rebuilt_ids: set[int] = set()
            for node in sorted(conflict_nodes.values(), key=lambda nd: nd.level):
                anc = node.parent
                while anc is not None and id(anc) not in rebuilt_ids:
                    anc = anc.parent
                if anc is not None:
                    continue  # covered by a rebuilt ancestor
                threshold = max(
                    self.REBUILD_MIN_CONFLICTS, self.REBUILD_RATIO * node.n_subtree_keys
                )
                if node.conflicts_since_build < threshold:
                    continue
                keys_, vals_ = node.collect_arrays()
                rebuilt = LippNode.from_keys(keys_, vals_, node.level, self._slot_factor)
                if node.parent is None:
                    self._root = rebuilt
                else:
                    parent = node.parent
                    pslot = node.parent_slot
                    parent.children[pslot] = rebuilt
                    rebuilt.parent = parent
                    rebuilt.parent_slot = pslot
                rebuilt_ids.add(id(node))
        if structural:
            self.invalidate_flat()

    @staticmethod
    def _credit_chain(node: LippNode | None, net: int) -> None:
        """Add *net* subtree keys to *node* and every ancestor."""
        while node is not None:
            node.n_subtree_keys += net
            node = node.parent

    def _bulk_into(self, node, bkeys: np.ndarray, bvals: np.ndarray):
        """Merge a sorted unique batch run into *node*'s subtree.

        Returns ``(replacement, net_new_keys)``; *replacement* is
        *node* itself when patched in place, or a freshly rebuilt
        subtree the caller must re-attach.  Handles SALI's flattened
        leaves by duck-type (rebuilt as flattened nodes, preserving
        their adaptation).
        """
        if not isinstance(node, LippNode):
            # Flattened leaf: merge into its dense arrays and rebuild
            # the segmentation once for the whole group.
            old_keys, old_vals = node.collect_arrays()
            merged_k, merged_v = dedupe_last_wins(
                np.concatenate([old_keys, bkeys]), np.concatenate([old_vals, bvals])
            )
            rebuilt = type(node)(merged_k, merged_v, node.level, node.epsilon)
            return rebuilt, int(merged_k.size) - int(old_keys.size)
        n = node.n_subtree_keys
        if n <= self.BULK_SMALL_SUBTREE or bkeys.size >= self.BULK_REBUILD_FRACTION * n:
            old_keys, old_vals = node.collect_arrays()
            merged_k, merged_v = dedupe_last_wins(
                np.concatenate([old_keys, bkeys]), np.concatenate([old_vals, bvals])
            )
            rebuilt = LippNode.from_keys(
                merged_k, merged_v, node.level, self._slot_factor
            )
            return rebuilt, int(merged_k.size) - int(old_keys.size)
        # Sparse batch: group by predicted slot, patch terminals in
        # place and recurse into child subtrees.
        slots = np.clip(
            np.rint(node.model.predict_array(bkeys)).astype(np.int64), 0, node.m - 1
        )
        net_total = 0
        for group in group_runs(slots):
            slot = int(slots[group[0]])
            gkeys = bkeys[group]
            gvals = bvals[group]
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                child = node.children[slot]
                replacement, net = self._bulk_into(child, gkeys, gvals)
                if replacement is not child:
                    replacement.parent = node
                    replacement.parent_slot = slot
                    node.children[slot] = replacement
            elif kind == SLOT_EMPTY:
                if gkeys.size == 1:
                    node.slot_type[slot] = SLOT_DATA
                    node.slot_keys[slot] = gkeys[0]
                    node.slot_values[slot] = gvals[0]
                else:
                    self._attach_bulk_child(node, slot, gkeys, gvals)
                net = int(gkeys.size)
            else:  # SLOT_DATA
                existing_key = int(node.slot_keys[slot])
                if gkeys.size == 1 and int(gkeys[0]) == existing_key:
                    node.slot_values[slot] = gvals[0]
                    net = 0
                else:
                    merged_k, merged_v = dedupe_last_wins(
                        np.concatenate(
                            [np.asarray([existing_key], dtype=np.int64), gkeys]
                        ),
                        np.concatenate(
                            [np.asarray([int(node.slot_values[slot])], dtype=np.int64), gvals]
                        ),
                    )
                    node.slot_keys[slot] = 0
                    node.slot_values[slot] = 0
                    self._attach_bulk_child(node, slot, merged_k, merged_v)
                    node.conflicts_since_build += 1
                    net = int(merged_k.size) - 1
            net_total += net
        node.n_subtree_keys += net_total
        return node, net_total

    def _attach_bulk_child(
        self, node: LippNode, slot: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Build a subtree from a sorted run and install it at *slot*."""
        child = LippNode.from_keys(keys, values, node.level + 1, self._slot_factor)
        child.parent = node
        child.parent_slot = slot
        node.slot_type[slot] = SLOT_CHILD
        node.children[slot] = child

    def _maybe_rebuild(self, path: list[LippNode]) -> None:
        """Rebuild the shallowest over-conflicted node on *path*."""
        for node in path:
            if node.level == 1 and node is self._root and len(path) == 1:
                # Root rebuilds are allowed but only when truly needed;
                # fall through to the threshold test like any node.
                pass
            threshold = max(self.REBUILD_MIN_CONFLICTS, self.REBUILD_RATIO * node.n_subtree_keys)
            if node.conflicts_since_build < threshold:
                continue
            keys, values = node.collect_arrays()
            rebuilt = LippNode.from_keys(keys, values, node.level, self._slot_factor)
            if node.parent is None:
                self._root = rebuilt
            else:
                parent = node.parent
                slot = node.parent_slot
                assert slot is not None
                parent.children[slot] = rebuilt
                rebuilt.parent = parent
                rebuilt.parent_slot = slot
            self.invalidate_flat()
            return

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        return self._root.n_subtree_keys

    def height(self) -> int:
        flat = self._flat_view()
        if flat is not None:
            return flat.height()
        return max(node.level for node in self._root.walk())

    def node_count(self) -> int:
        flat = self._flat_view()
        if flat is not None:
            return flat.n_nodes + len(flat.leaves)
        return sum(1 for __ in self._root.walk())

    def size_bytes(self) -> int:
        """Resident bytes of the flat representation.

        Per node: header, slot arrays (type/key/value), the model
        coefficients (:data:`~repro.indexes.base.MODEL_BYTES`) and its
        entry in the CSR slot-offset array
        (:data:`~repro.indexes.base.OFFSET_BYTES`); per CHILD slot one
        pointer.  The legacy walk charges the identical formula so the
        oracle reports the same size.
        """
        flat = self._flat_view()
        if flat is not None:
            total = flat.n_nodes * (NODE_HEADER_BYTES + MODEL_BYTES + OFFSET_BYTES)
            total += flat.total_slots * SLOT_BYTES
            total += flat.child_slot_count() * POINTER_BYTES
            return total
        total = 0
        for node in self._root.walk():
            total += NODE_HEADER_BYTES + MODEL_BYTES + OFFSET_BYTES
            total += node.m * SLOT_BYTES
            total += len(node.children) * POINTER_BYTES
        return total

    def key_level(self, key: int) -> int:
        key = int(key)
        node, slot, levels = self._descend(key)
        if int(node.slot_type[slot]) == SLOT_DATA and int(node.slot_keys[slot]) == key:
            return levels
        raise IndexStateError(f"key {key} is not stored in this LIPP index")

    def iter_keys(self) -> Iterator[int]:
        for key, __ in self._root.iter_entries():
            yield key

    # ------------------------------------------------------------------
    # Structure reports used by the evaluation harness
    # ------------------------------------------------------------------
    def level_histogram(self) -> dict[int, int]:
        """Number of keys stored at each level (reproduces Fig. 1's x-axis).

        With the flat view this is one bincount over the DATA slots'
        owning-node levels instead of a per-key Python visit.
        """
        flat = self._flat_view()
        if flat is not None:
            return flat.level_histogram()
        histogram: dict[int, int] = {}

        def visit(key: int, level: int) -> None:
            histogram[level] = histogram.get(level, 0) + 1

        self._root.visit_data_levels(visit)
        return dict(sorted(histogram.items()))

    def keys_at_or_below(self, level: int) -> np.ndarray:
        """Keys stored at *level* or deeper ("promotable data")."""
        flat = self._flat_view()
        if flat is not None:
            return flat.keys_at_or_below(level)
        out: list[int] = []

        def visit(key: int, key_level: int) -> None:
            if key_level >= level:
                out.append(key)

        self._root.visit_data_levels(visit)
        return np.asarray(sorted(out), dtype=np.int64)

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``.

        LIPP stores entries in slot order, so an in-order subtree walk
        bounded by the range suffices; cost is proportional to the
        number of slots overlapping the range.
        """
        low = int(low)
        high = int(high)
        out: list[tuple[int, int]] = []
        for key, value in self._root.iter_entries():
            if key > high:
                break
            if key >= low:
                out.append((key, value))
        return out

    def node_levels(self) -> list[int]:
        """Level of every node (for the node-reduction metric).

        Order is unspecified (the flat view reports BFS order, the
        legacy walk pre-order); consumers aggregate.
        """
        flat = self._flat_view()
        if flat is not None:
            return flat.node_levels()
        return [node.level for node in self._root.walk()]

    def empty_slot_fraction(self) -> float:
        """Share of EMPTY slots over all slots (gap availability).

        Flattened leaves (SALI) store dense sorted arrays, so their
        entries count as fully occupied slots in the denominator.
        """
        flat = self._flat_view()
        if flat is not None:
            empty, total = flat.empty_and_total_slots()
            return empty / total if total else 0.0
        empty = 0
        total = 0
        for node in self._root.walk():
            if isinstance(node, LippNode):
                empty += int(np.count_nonzero(node.slot_type == SLOT_EMPTY))
                total += node.m
            else:
                total += int(node.keys.size)
        return empty / total if total else 0.0
