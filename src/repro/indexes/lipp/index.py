"""LIPP index facade over :class:`~repro.indexes.lipp.node.LippNode`.

LIPP (Updatable Learned Index with Precise Positions, [33]) answers a
lookup purely by traversal: each level evaluates one linear model and
lands exactly on a slot.  Its query time is therefore proportional to
the depth of the key — the effect Fig. 1 of the paper measures and CSV
attacks.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...core.exceptions import IndexStateError
from ..base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    POINTER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_batch_kv,
    _as_query_array,
    dedupe_last_wins,
    group_runs,
    prepare_key_values,
)
from .node import DEFAULT_SLOT_FACTOR, SLOT_CHILD, SLOT_DATA, SLOT_EMPTY, LippNode

__all__ = ["LippIndex"]

#: Bytes per slot: 1 type byte + key + value/pointer union.
SLOT_BYTES = 1 + KEY_BYTES + VALUE_BYTES

#: Query groups at or below this size descend scalar-style inside
#: :meth:`LippIndex.lookup_many` — conflict subtrees are tiny, and a
#: handful of Python ops beats a dozen numpy dispatches on 2-3 keys.
SMALL_GROUP = 4


class LippIndex(LearnedIndex):
    """Updatable precise-position learned index."""

    name = "lipp"

    def __init__(self, root: LippNode, slot_factor: float):
        self._root = root
        self._slot_factor = slot_factor

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        keys,
        values=None,
        slot_factor: float = DEFAULT_SLOT_FACTOR,
    ) -> "LippIndex":
        arr, vals = prepare_key_values(keys, values)
        root = LippNode.from_keys(arr, vals, level=1, slot_factor=slot_factor)
        return cls(root, slot_factor)

    @property
    def root(self) -> LippNode:
        return self._root

    @property
    def slot_factor(self) -> float:
        return self._slot_factor

    # ------------------------------------------------------------------
    def _descend(self, key: int) -> tuple[LippNode, int, int]:
        """Walk to the node whose model addresses *key* terminally.

        Returns ``(node, slot, levels)``.
        """
        return self._descend_from(self._root, key, 1)

    @staticmethod
    def _descend_from(node: LippNode, key: int, levels: int) -> tuple[LippNode, int, int]:
        """:meth:`_descend` starting at an arbitrary (node, depth)."""
        while True:
            slot = node.slot_of(key)
            if int(node.slot_type[slot]) == SLOT_CHILD:
                node = node.children[slot]
                levels += 1
                continue
            return node, slot, levels

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        node, slot, levels = self._descend(key)
        kind = int(node.slot_type[slot])
        if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
            return QueryStats(
                key=key,
                found=True,
                value=int(node.slot_values[slot]),
                levels=levels,
                search_steps=0,
            )
        return QueryStats(key=key, found=False, value=None, levels=levels, search_steps=0)

    def lookup_many(self, keys) -> BatchQueryStats:
        """Batched precise-position lookups.

        One vectorised model evaluation per visited node routes the
        whole query group; terminal slots are resolved with array
        compares.  LIPP lookups have no search component, so
        ``search_steps`` is all zeros, exactly as in
        :meth:`lookup_stats`.
        """
        q = _as_query_array(keys)
        m = q.size
        found = np.zeros(m, dtype=bool)
        values = np.zeros(m, dtype=np.int64)
        levels = np.zeros(m, dtype=np.int64)
        steps = np.zeros(m, dtype=np.int64)
        if m:
            self._batch_descend(q, found, values, levels, steps, track=False)
        return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)

    def _batch_descend(
        self,
        q: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        levels: np.ndarray,
        steps: np.ndarray,
        track: bool,
    ) -> None:
        """Grouped frontier sweep shared by LIPP and SALI.

        Scatters results into the caller's output arrays.  With
        ``track`` set, every node on each query's path has its
        ``access_count`` credited (aggregate-equivalent to SALI's
        per-query ``record_path``).  Leaves that are not
        :class:`LippNode` (SALI's flattened subtrees) are answered via
        their ``lookup``/``lookup_batch`` duck-type interface.
        """
        frontier: list[tuple[object, np.ndarray, int]] = [(self._root, np.arange(q.size), 1)]
        while frontier:
            node, idx, depth = frontier.pop()
            if idx.size <= SMALL_GROUP:
                # Tiny conflict subtrees: scalar descent beats numpy
                # dispatch on 2-3 keys.
                for j in idx.tolist():
                    key = int(q[j])
                    sub, lvl = node, depth
                    while True:
                        if track:
                            sub.access_count += 1
                        if not isinstance(sub, LippNode):
                            f, v, s = sub.lookup(key)
                            found[j] = f
                            if f:
                                values[j] = v
                            steps[j] = s
                            levels[j] = lvl
                            break
                        slot = sub.slot_of(key)
                        kind = int(sub.slot_type[slot])
                        if kind == SLOT_CHILD:
                            sub = sub.children[slot]
                            lvl += 1
                            continue
                        levels[j] = lvl
                        if kind == SLOT_DATA and int(sub.slot_keys[slot]) == key:
                            found[j] = True
                            values[j] = sub.slot_values[slot]
                        break
                continue
            if track:
                node.access_count += int(idx.size)
            if not isinstance(node, LippNode):
                node_found, node_values, node_steps = node.lookup_batch(q[idx])
                found[idx] = node_found
                values[idx] = node_values
                steps[idx] = node_steps
                levels[idx] = depth
                continue
            slots = np.clip(
                np.rint(node.model.predict_array(q[idx])).astype(np.int64), 0, node.m - 1
            )
            kinds = node.slot_type[slots]
            terminal = kinds != SLOT_CHILD
            if np.any(terminal):
                t_idx = idx[terminal]
                t_slots = slots[terminal]
                levels[t_idx] = depth
                hit = (kinds[terminal] == SLOT_DATA) & (node.slot_keys[t_slots] == q[t_idx])
                hit_idx = t_idx[hit]
                found[hit_idx] = True
                values[hit_idx] = node.slot_values[t_slots[hit]]
            child_mask = ~terminal
            if np.any(child_mask):
                c_idx = idx[child_mask]
                c_slots = slots[child_mask]
                for group in group_runs(c_slots):
                    child = node.children[int(c_slots[group[0]])]
                    frontier.append((child, c_idx[group], depth + 1))

    def insert(self, key: int, value: int) -> None:
        """Insert one entry; conflicts may create a child or trigger a
        subtree rebuild.

        LIPP's *adjustment* strategy: each node counts the insert
        conflicts it has absorbed since it was (re)built, and once the
        count passes a fraction of its subtree size the whole subtree
        is rebuilt from its sorted keys.  This keeps conflict chains
        from degenerating into linked lists.
        """
        key = int(key)
        value = int(value)
        path: list[LippNode] = []
        node = self._root
        while True:
            path.append(node)
            slot = node.slot_of(key)
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                node = node.children[slot]
                continue
            break
        if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
            node.slot_values[slot] = value
            return
        for visited in path:
            visited.n_subtree_keys += 1
        if kind == SLOT_EMPTY:
            node.slot_type[slot] = SLOT_DATA
            node.slot_keys[slot] = key
            node.slot_values[slot] = value
            return
        node.make_conflict_child(slot, key, value, self._slot_factor)
        for visited in path:
            visited.conflicts_since_build += 1
        self._maybe_rebuild(path)

    #: A node is rebuilt when its conflict count since build exceeds
    #: ``max(REBUILD_MIN_CONFLICTS, REBUILD_RATIO * subtree size)``.
    REBUILD_MIN_CONFLICTS = 8
    REBUILD_RATIO = 0.1

    # ------------------------------------------------------------------
    # Bulk ingest
    # ------------------------------------------------------------------
    #: A batch group covering at least this fraction of the subtree it
    #: lands in triggers a sorted-merge rebuild of the whole subtree
    #: (flatten + merge + ``from_keys``) instead of a grouped descent.
    BULK_REBUILD_FRACTION = 0.25
    #: Subtrees at or below this many keys are always rebuilt — the
    #: flatten/merge is a handful of array ops, cheaper than recursing.
    BULK_SMALL_SUBTREE = 64

    def bulk_insert_many(self, keys, values=None) -> None:
        """Bulk ingest: sorted-merge rebuild of the touched subtrees.

        The deduped sorted batch descends the tree as grouped runs
        (one vectorised model evaluation per visited node, as in
        :meth:`lookup_many`); wherever a group is *dense* relative to
        the subtree it falls into, the subtree is flattened to sorted
        slot arrays, merged with the group (batch values win), and
        rebuilt with one :meth:`LippNode.from_keys` call — amortising
        model fits and slot placement across the whole group instead
        of paying one root-to-leaf descent, conflict child and
        threshold rebuild per key.  Sparse remainders patch terminal
        slots in place.  Rebuilt subtrees start with fresh conflict
        counters (they are *post*-adjustment structures), so the
        physical layout may differ from the per-key loop's; lookup
        contents are identical.
        """
        arr, vals = _as_batch_kv(keys, values)
        if arr.size == 0:
            return
        bkeys, bvals = dedupe_last_wins(arr, vals)
        replacement, __ = self._bulk_into(self._root, bkeys, bvals)
        if replacement is not self._root:
            replacement.parent = None
            replacement.parent_slot = None
            self._root = replacement

    def _bulk_into(self, node, bkeys: np.ndarray, bvals: np.ndarray):
        """Merge a sorted unique batch run into *node*'s subtree.

        Returns ``(replacement, net_new_keys)``; *replacement* is
        *node* itself when patched in place, or a freshly rebuilt
        subtree the caller must re-attach.  Handles SALI's flattened
        leaves by duck-type (rebuilt as flattened nodes, preserving
        their adaptation).
        """
        if not isinstance(node, LippNode):
            # Flattened leaf: merge into its dense arrays and rebuild
            # the segmentation once for the whole group.
            old_keys, old_vals = node.collect_arrays()
            merged_k, merged_v = dedupe_last_wins(
                np.concatenate([old_keys, bkeys]), np.concatenate([old_vals, bvals])
            )
            rebuilt = type(node)(merged_k, merged_v, node.level, node.epsilon)
            return rebuilt, int(merged_k.size) - int(old_keys.size)
        n = node.n_subtree_keys
        if n <= self.BULK_SMALL_SUBTREE or bkeys.size >= self.BULK_REBUILD_FRACTION * n:
            old_keys, old_vals = node.collect_arrays()
            merged_k, merged_v = dedupe_last_wins(
                np.concatenate([old_keys, bkeys]), np.concatenate([old_vals, bvals])
            )
            rebuilt = LippNode.from_keys(
                merged_k, merged_v, node.level, self._slot_factor
            )
            return rebuilt, int(merged_k.size) - int(old_keys.size)
        # Sparse batch: group by predicted slot, patch terminals in
        # place and recurse into child subtrees.
        slots = np.clip(
            np.rint(node.model.predict_array(bkeys)).astype(np.int64), 0, node.m - 1
        )
        net_total = 0
        for group in group_runs(slots):
            slot = int(slots[group[0]])
            gkeys = bkeys[group]
            gvals = bvals[group]
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                child = node.children[slot]
                replacement, net = self._bulk_into(child, gkeys, gvals)
                if replacement is not child:
                    replacement.parent = node
                    replacement.parent_slot = slot
                    node.children[slot] = replacement
            elif kind == SLOT_EMPTY:
                if gkeys.size == 1:
                    node.slot_type[slot] = SLOT_DATA
                    node.slot_keys[slot] = gkeys[0]
                    node.slot_values[slot] = gvals[0]
                else:
                    self._attach_bulk_child(node, slot, gkeys, gvals)
                net = int(gkeys.size)
            else:  # SLOT_DATA
                existing_key = int(node.slot_keys[slot])
                if gkeys.size == 1 and int(gkeys[0]) == existing_key:
                    node.slot_values[slot] = gvals[0]
                    net = 0
                else:
                    merged_k, merged_v = dedupe_last_wins(
                        np.concatenate(
                            [np.asarray([existing_key], dtype=np.int64), gkeys]
                        ),
                        np.concatenate(
                            [np.asarray([int(node.slot_values[slot])], dtype=np.int64), gvals]
                        ),
                    )
                    node.slot_keys[slot] = 0
                    node.slot_values[slot] = 0
                    self._attach_bulk_child(node, slot, merged_k, merged_v)
                    node.conflicts_since_build += 1
                    net = int(merged_k.size) - 1
            net_total += net
        node.n_subtree_keys += net_total
        return node, net_total

    def _attach_bulk_child(
        self, node: LippNode, slot: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Build a subtree from a sorted run and install it at *slot*."""
        child = LippNode.from_keys(keys, values, node.level + 1, self._slot_factor)
        child.parent = node
        child.parent_slot = slot
        node.slot_type[slot] = SLOT_CHILD
        node.children[slot] = child

    def _maybe_rebuild(self, path: list[LippNode]) -> None:
        """Rebuild the shallowest over-conflicted node on *path*."""
        for node in path:
            if node.level == 1 and node is self._root and len(path) == 1:
                # Root rebuilds are allowed but only when truly needed;
                # fall through to the threshold test like any node.
                pass
            threshold = max(self.REBUILD_MIN_CONFLICTS, self.REBUILD_RATIO * node.n_subtree_keys)
            if node.conflicts_since_build < threshold:
                continue
            keys, values = node.collect_arrays()
            rebuilt = LippNode.from_keys(keys, values, node.level, self._slot_factor)
            if node.parent is None:
                self._root = rebuilt
            else:
                parent = node.parent
                slot = node.parent_slot
                assert slot is not None
                parent.children[slot] = rebuilt
                rebuilt.parent = parent
                rebuilt.parent_slot = slot
            return

    # ------------------------------------------------------------------
    @property
    def n_keys(self) -> int:
        return self._root.n_subtree_keys

    def height(self) -> int:
        return max(node.level for node in self._root.walk())

    def node_count(self) -> int:
        return sum(1 for __ in self._root.walk())

    def size_bytes(self) -> int:
        total = 0
        for node in self._root.walk():
            total += NODE_HEADER_BYTES + node.m * SLOT_BYTES
            total += len(node.children) * POINTER_BYTES
        return total

    def key_level(self, key: int) -> int:
        key = int(key)
        node, slot, levels = self._descend(key)
        if int(node.slot_type[slot]) == SLOT_DATA and int(node.slot_keys[slot]) == key:
            return levels
        raise IndexStateError(f"key {key} is not stored in this LIPP index")

    def iter_keys(self) -> Iterator[int]:
        for key, __ in self._root.iter_entries():
            yield key

    # ------------------------------------------------------------------
    # Structure reports used by the evaluation harness
    # ------------------------------------------------------------------
    def level_histogram(self) -> dict[int, int]:
        """Number of keys stored at each level (reproduces Fig. 1's x-axis)."""
        histogram: dict[int, int] = {}

        def visit(key: int, level: int) -> None:
            histogram[level] = histogram.get(level, 0) + 1

        self._root.visit_data_levels(visit)
        return dict(sorted(histogram.items()))

    def keys_at_or_below(self, level: int) -> np.ndarray:
        """Keys stored at *level* or deeper ("promotable data")."""
        out: list[int] = []

        def visit(key: int, key_level: int) -> None:
            if key_level >= level:
                out.append(key)

        self._root.visit_data_levels(visit)
        return np.asarray(sorted(out), dtype=np.int64)

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``.

        LIPP stores entries in slot order, so an in-order subtree walk
        bounded by the range suffices; cost is proportional to the
        number of slots overlapping the range.
        """
        low = int(low)
        high = int(high)
        out: list[tuple[int, int]] = []
        for key, value in self._root.iter_entries():
            if key > high:
                break
            if key >= low:
                out.append((key, value))
        return out

    def node_levels(self) -> list[int]:
        """Level of every node (for the node-reduction metric)."""
        return [node.level for node in self._root.walk()]

    def empty_slot_fraction(self) -> float:
        """Share of EMPTY slots over all nodes (gap availability)."""
        empty = 0
        total = 0
        for node in self._root.walk():
            empty += int(np.count_nonzero(node.slot_type == SLOT_EMPTY))
            total += node.m
        return empty / total if total else 0.0
