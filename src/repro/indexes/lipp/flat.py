"""Level-ordered flat (struct-of-arrays) view of a LIPP/SALI tree.

The node-object representation (:class:`~repro.indexes.lipp.node.
LippNode`) is ideal for mutation but terrible for batch traversal: the
grouped frontier sweep pays a Python dispatch per visited node, and a
LIPP tree built at slot factor 1.0 has *thousands* of two-key conflict
children, so batch lookups were structure-bound at ~1.5x over the
scalar loop while every array-backed index family enjoyed 10-850x.

:class:`FlatLipp` compiles the tree into contiguous level-ordered
arrays:

* per node (BFS order, so each level occupies one contiguous id
  range): ``node_level``, the model coefficients ``node_a`` /
  ``node_b`` / ``node_c`` / ``node_pivot`` (quadratic form with
  ``a = 0`` for the ubiquitous linear models, evaluated as
  ``(a*t + b)*t + c`` with ``t = key - pivot`` so linear predictions
  are bit-identical to :meth:`LinearModel.predict`), and the CSR-style
  ``slot_start`` offsets mapping node ``i`` to its slot range
  ``[slot_start[i], slot_start[i+1])``;
* per slot (concatenated in node order): ``slot_type`` /
  ``slot_keys`` / ``slot_values`` exactly as in the nodes, plus
  ``slot_child`` holding the child *node id* for CHILD slots (or an
  encoded index into :attr:`leaves` when the child is one of SALI's
  flattened subtrees).

A batch lookup is then a few vectorised gathers per level over the
whole surviving frontier — predict slots for every active query at
once, resolve DATA/EMPTY terminals with array compares, and route
CHILD survivors down by assigning their next node ids — instead of a
Python-object walk per node.  The same ``locate`` sweep drives the
in-place gapped bulk merge in
:meth:`~repro.indexes.lipp.index.LippIndex.bulk_insert_many`.

**Buffer sharing.**  ``compile`` does not *copy* the tree: after
concatenating the slot arrays it re-points every node's
``slot_type`` / ``slot_keys`` / ``slot_values`` at views into the big
buffers.  The node objects remain the authoritative mutable structure,
and any in-place slot write (an EMPTY slot filled by ``insert``, a
DATA value overwritten) is immediately visible to the flat view with
no invalidation.  Only *structural* changes — a conflict child
created, a subtree rebuilt, a hot subtree flattened — stale the
compiled mapping; the index invalidates and lazily recompiles.
``StaleFlatError`` is the safety net for structural edits that bypass
the index API (tests performing direct tree surgery must call
``invalidate_flat``).
"""

from __future__ import annotations

import numpy as np

from ...core.linear_model import LinearModel, QuadraticModel
from ..base import group_runs
from .node import SLOT_CHILD, SLOT_DATA, SLOT_EMPTY, LippNode

__all__ = ["FlatLipp", "StaleFlatError"]

#: ``slot_child`` encoding: ``>= 0`` is a node id, ``NO_CHILD`` marks a
#: non-CHILD slot, and ``<= FLAT_LEAF_BASE`` encodes flattened-leaf
#: index ``FLAT_LEAF_BASE - value``.
NO_CHILD = -1
FLAT_LEAF_BASE = -2


class StaleFlatError(RuntimeError):
    """The compiled flat view no longer matches the node tree.

    Raised before any output is written, so callers can invalidate,
    recompile and retry the sweep.
    """


def _leaf_like(node) -> bool:
    """Whether *node* is a flattened leaf (duck-typed, non-LippNode)."""
    return not isinstance(node, LippNode)


class FlatLipp:
    """Compiled level-ordered slot arrays over a LIPP/SALI subtree."""

    __slots__ = (
        "nodes",
        "leaves",
        "node_level",
        "node_a",
        "node_b",
        "node_c",
        "node_pivot",
        "slot_start",
        "slot_type",
        "slot_keys",
        "slot_values",
        "slot_child",
    )

    def __init__(self) -> None:
        self.nodes: list[LippNode] = []
        self.leaves: list = []

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def compile(cls, root) -> "FlatLipp | None":
        """Flatten the tree under *root* (BFS), sharing slot buffers.

        Returns None when the tree cannot be represented (non-LippNode
        root, or a node model that is neither linear nor quadratic) —
        callers fall back to the node-object sweep.
        """
        if _leaf_like(root):
            return None
        flat = cls()
        nodes = flat.nodes
        leaves = flat.leaves
        nodes.append(root)
        node_of: dict[int, int] = {id(root): 0}
        # BFS: children are appended strictly after their parents, so
        # node ids are level-ordered and each level is contiguous.
        head = 0
        while head < len(nodes):
            node = nodes[head]
            head += 1
            if not isinstance(node.model, (LinearModel, QuadraticModel)):
                return None
            for __, child in sorted(node.children.items()):
                if _leaf_like(child):
                    continue  # registered while emitting slot_child
                node_of[id(child)] = len(nodes)
                nodes.append(child)
        n_nodes = len(nodes)
        level = np.empty(n_nodes, dtype=np.int64)
        a = np.zeros(n_nodes, dtype=np.float64)
        b = np.empty(n_nodes, dtype=np.float64)
        c = np.empty(n_nodes, dtype=np.float64)
        pivot = np.empty(n_nodes, dtype=np.int64)
        slot_start = np.empty(n_nodes + 1, dtype=np.int64)
        type_parts: list[np.ndarray] = []
        key_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray] = []
        child_parts: list[np.ndarray] = []
        offset = 0
        for i, node in enumerate(nodes):
            level[i] = node.level
            model = node.model
            if isinstance(model, QuadraticModel):
                a[i] = model.a
                b[i] = model.b
                c[i] = model.c
            else:
                b[i] = model.slope
                c[i] = model.intercept
            pivot[i] = model.pivot
            m = node.m
            slot_start[i] = offset
            offset += m
            type_parts.append(node.slot_type)
            key_parts.append(node.slot_keys)
            val_parts.append(node.slot_values)
            child = np.full(m, NO_CHILD, dtype=np.int64)
            for slot, sub in node.children.items():
                if _leaf_like(sub):
                    child[slot] = FLAT_LEAF_BASE - len(leaves)
                    leaves.append(sub)
                else:
                    child[slot] = node_of[id(sub)]
            child_parts.append(child)
        slot_start[n_nodes] = offset
        flat.node_level = level
        flat.node_a = a
        flat.node_b = b
        flat.node_c = c
        flat.node_pivot = pivot
        flat.slot_start = slot_start
        flat.slot_type = np.concatenate(type_parts) if type_parts else np.empty(0, np.uint8)
        flat.slot_keys = np.concatenate(key_parts) if key_parts else np.empty(0, np.int64)
        flat.slot_values = np.concatenate(val_parts) if val_parts else np.empty(0, np.int64)
        flat.slot_child = np.concatenate(child_parts) if child_parts else np.empty(0, np.int64)
        # Re-point every node's slot arrays at views into the shared
        # buffers: in-place slot writes through the node API stay
        # visible to the flat view with no recompile.
        for i, node in enumerate(nodes):
            base = int(slot_start[i])
            end = int(slot_start[i + 1])
            node.slot_type = flat.slot_type[base:end]
            node.slot_keys = flat.slot_keys[base:end]
            node.slot_values = flat.slot_values[base:end]
        return flat

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of (non-leaf) LIPP nodes in the compiled view."""
        return len(self.nodes)

    @property
    def total_slots(self) -> int:
        """Total slot count across every compiled node."""
        return int(self.slot_start[-1])

    def _check_fresh(self) -> None:
        """Raise :class:`StaleFlatError` on a detectable structural skew.

        A CHILD slot whose ``slot_child`` mapping is missing means a
        conflict child was created through the shared buffers without
        an ``invalidate_flat`` — refuse to traverse."""
        bad = (self.slot_type == SLOT_CHILD) & (self.slot_child == NO_CHILD)
        if bool(np.any(bad)):
            raise StaleFlatError("flat view is stale: unmapped CHILD slot")

    def _predict_slots(self, ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Global slot index each node model assigns to its query key."""
        t = (keys - self.node_pivot[ids]).astype(np.float64)
        pos = (self.node_a[ids] * t + self.node_b[ids]) * t + self.node_c[ids]
        base = self.slot_start[ids]
        width = (self.slot_start[ids + 1] - base).astype(np.float64)
        # Clamp in float space before rounding: identical result to the
        # scalar round-then-clamp (bounds are integers and rounding is
        # monotone) without int64 overflow on wild extrapolations.
        pos = np.rint(np.clip(pos, 0.0, width - 1.0)).astype(np.int64)
        return base + pos

    # ------------------------------------------------------------------
    # Batched traversal
    # ------------------------------------------------------------------
    def lookup_many_into(
        self,
        q: np.ndarray,
        found: np.ndarray,
        values: np.ndarray,
        levels: np.ndarray,
        steps: np.ndarray,
        visit_counts: np.ndarray | None = None,
        leaf_visits: np.ndarray | None = None,
    ) -> None:
        """Vectorised multi-level lookup sweep, scattered into outputs.

        All four output arrays parallel *q*.  With *visit_counts* (one
        int64 cell per node) every node on each query's path is
        credited one visit — the aggregate equivalent of SALI's
        per-query ``record_path``; *leaf_visits* does the same for
        flattened leaves.  Raises :class:`StaleFlatError` (before
        writing anything) when the view no longer matches the tree.
        """
        self._check_fresh()
        active = np.arange(q.size)
        cur = np.zeros(q.size, dtype=np.int64)  # everyone starts at the root
        depth = 1
        while active.size:
            if visit_counts is not None:
                visit_counts += np.bincount(cur, minlength=self.n_nodes)
            keys = q[active]
            gslot = self._predict_slots(cur, keys)
            kinds = self.slot_type[gslot]
            is_child = kinds == SLOT_CHILD
            terminal = ~is_child
            if np.any(terminal):
                t_active = active[terminal]
                t_slot = gslot[terminal]
                levels[t_active] = depth
                hit = (kinds[terminal] == SLOT_DATA) & (self.slot_keys[t_slot] == keys[terminal])
                hit_active = t_active[hit]
                found[hit_active] = True
                values[hit_active] = self.slot_values[t_slot[hit]]
            c_active = active[is_child]
            nxt = self.slot_child[gslot[is_child]]
            leaf_sel = nxt <= FLAT_LEAF_BASE
            if np.any(leaf_sel):
                l_active = c_active[leaf_sel]
                l_ids = FLAT_LEAF_BASE - nxt[leaf_sel]
                levels[l_active] = depth + 1
                if leaf_visits is not None:
                    leaf_visits += np.bincount(l_ids, minlength=len(self.leaves))
                for group in group_runs(l_ids):
                    leaf = self.leaves[int(l_ids[group[0]])]
                    sel = l_active[group]
                    g_found, g_values, g_steps = leaf.lookup_batch(q[sel])
                    found[sel] = g_found
                    values[sel] = g_values
                    steps[sel] = g_steps
                keep = ~leaf_sel
                c_active = c_active[keep]
                nxt = nxt[keep]
            active = c_active
            cur = nxt
            depth += 1

    def locate(
        self, bkeys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Terminal position of each key: ``(node, gslot, kind, leaf)``.

        The same per-level sweep as :meth:`lookup_many_into`, but it
        returns where each key's descent *ends* instead of resolving
        hits: ``node[i]`` / ``gslot[i]`` / ``kind[i]`` identify the
        terminal node id, global slot and slot type, or ``leaf[i]``
        (else -1) the flattened leaf the key routed into.  This is the
        addressing pass of the in-place gapped bulk merge.
        """
        self._check_fresh()
        n = int(bkeys.size)
        term_node = np.full(n, -1, dtype=np.int64)
        term_slot = np.full(n, -1, dtype=np.int64)
        term_kind = np.full(n, -1, dtype=np.int64)
        leaf_of = np.full(n, -1, dtype=np.int64)
        active = np.arange(n)
        cur = np.zeros(n, dtype=np.int64)
        while active.size:
            gslot = self._predict_slots(cur, bkeys[active])
            kinds = self.slot_type[gslot]
            is_child = kinds == SLOT_CHILD
            terminal = ~is_child
            if np.any(terminal):
                t_active = active[terminal]
                term_node[t_active] = cur[terminal]
                term_slot[t_active] = gslot[terminal]
                term_kind[t_active] = kinds[terminal]
            active = active[is_child]
            nxt = self.slot_child[gslot[is_child]]
            leaf_sel = nxt <= FLAT_LEAF_BASE
            if np.any(leaf_sel):
                leaf_of[active[leaf_sel]] = FLAT_LEAF_BASE - nxt[leaf_sel]
                keep = ~leaf_sel
                active = active[keep]
                nxt = nxt[keep]
            cur = nxt
        return term_node, term_slot, term_kind, leaf_of

    def credit_access(
        self, visit_counts: np.ndarray, leaf_visits: np.ndarray
    ) -> None:
        """Scatter sweep visit counters back onto the node objects.

        Keeps the node tree the single source of truth for SALI's
        access statistics (``AccessTracker`` reads ``access_count``
        off the objects when picking flattening targets)."""
        for i in np.nonzero(visit_counts)[0].tolist():
            self.nodes[i].access_count += int(visit_counts[i])
        for i in np.nonzero(leaf_visits)[0].tolist():
            self.leaves[i].access_count += int(leaf_visits[i])

    # ------------------------------------------------------------------
    # Vectorised structural introspection
    # ------------------------------------------------------------------
    def _data_slot_nodes(self) -> tuple[np.ndarray, np.ndarray]:
        """(global DATA slot indexes, owning node id per slot)."""
        data_slots = np.nonzero(self.slot_type == SLOT_DATA)[0]
        node_of = np.searchsorted(self.slot_start, data_slots, side="right") - 1
        return data_slots, node_of

    def level_histogram(self) -> dict[int, int]:
        """Keys stored per level — one bincount over the DATA slots."""
        __, node_of = self._data_slot_nodes()
        max_level = int(self.node_level.max(initial=0))
        for leaf in self.leaves:
            max_level = max(max_level, int(leaf.level))
        counts = np.bincount(self.node_level[node_of], minlength=max_level + 1)
        for leaf in self.leaves:
            counts[int(leaf.level)] += int(leaf.keys.size)
        return {int(lvl): int(c) for lvl, c in enumerate(counts) if c}

    def keys_at_or_below(self, level: int) -> np.ndarray:
        """Sorted keys stored at *level* or deeper — masked gathers."""
        data_slots, node_of = self._data_slot_nodes()
        deep = self.node_level[node_of] >= level
        parts = [self.slot_keys[data_slots[deep]]]
        parts.extend(leaf.keys for leaf in self.leaves if leaf.level >= level)
        return np.sort(np.concatenate(parts)) if parts else np.empty(0, np.int64)

    def node_levels(self) -> list[int]:
        """Level of every node (leaves included), unordered."""
        return self.node_level.tolist() + [int(leaf.level) for leaf in self.leaves]

    def height(self) -> int:
        """Deepest level of any node or flattened leaf."""
        deepest = int(self.node_level.max(initial=1))
        for leaf in self.leaves:
            deepest = max(deepest, int(leaf.level))
        return deepest

    def empty_and_total_slots(self) -> tuple[int, int]:
        """(EMPTY slots, total slots) with flattened leaves' dense
        entries counted as fully occupied slots."""
        empty = int(np.count_nonzero(self.slot_type == SLOT_EMPTY))
        total = self.total_slots + sum(int(leaf.keys.size) for leaf in self.leaves)
        return empty, total

    def child_slot_count(self) -> int:
        """CHILD slots across every node (= child pointers stored)."""
        return int(np.count_nonzero(self.slot_type == SLOT_CHILD))
