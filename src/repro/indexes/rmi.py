"""Two-stage Recursive Model Index (Kraska et al. [12]).

The original learned-index architecture: a root linear model routes a
key to one of ``branching`` second-stage linear models; each
second-stage model remembers the worst under/over-prediction observed
over its keys at build time, so a lookup binary-searches only inside
``[pos + min_err, pos + max_err]``.  Static (bulk-load only), used as
a baseline in the benches.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.linear_model import LinearModel, fit_linear
from .base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_query_array,
    _range_from_sorted_arrays,
    prepare_key_values,
)

__all__ = ["RMIIndex"]


@dataclass(frozen=True)
class _SecondStage:
    model: LinearModel
    min_err: int
    max_err: int


class RMIIndex(LearnedIndex):
    """Classic 2-stage RMI with per-model error bounds."""

    name = "rmi"

    def __init__(self, keys: np.ndarray, values: np.ndarray, branching: int):
        self._keys = keys
        self._values = values
        self._branching = max(1, int(branching))
        n = int(keys.size)
        root = fit_linear(keys)  # predicts rank in [0, n)
        self._root = root.scaled(self._branching / max(n, 1))
        assignments = np.clip(
            np.round(self._root.predict_array(keys)).astype(np.int64),
            0,
            self._branching - 1,
        )
        self._stages: list[_SecondStage] = []
        for model_idx in range(self._branching):
            mask = assignments == model_idx
            if not np.any(mask):
                self._stages.append(_SecondStage(LinearModel(0.0, 0.0), 0, 0))
                continue
            segment_keys = keys[mask]
            segment_pos = np.nonzero(mask)[0].astype(np.float64)
            model = fit_linear(segment_keys, segment_pos)
            err = np.round(model.predict_array(segment_keys)).astype(np.int64) - np.nonzero(mask)[0]
            self._stages.append(
                _SecondStage(model=model, min_err=int(err.min()), max_err=int(err.max()))
            )
        # Struct-of-arrays mirror of the stages for the batch path.
        self._stage_slope = np.asarray([s.model.slope for s in self._stages])
        self._stage_intercept = np.asarray([s.model.intercept for s in self._stages])
        self._stage_pivot = np.asarray([s.model.pivot for s in self._stages], dtype=np.int64)
        self._stage_min_err = np.asarray([s.min_err for s in self._stages], dtype=np.int64)
        self._stage_max_err = np.asarray([s.max_err for s in self._stages], dtype=np.int64)

    @classmethod
    def build(cls, keys, values=None, branching: int | None = None) -> "RMIIndex":
        arr, vals = prepare_key_values(keys, values)
        if branching is None:
            branching = max(1, arr.size // 512)
        return cls(arr, vals, branching)

    def insert(self, key: int, value: int) -> None:
        raise NotImplementedError("this RMI reproduction is static (bulk-load only)")

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        n = int(self._keys.size)
        stage_idx = min(max(int(round(self._root.predict(key))), 0), self._branching - 1)
        stage = self._stages[stage_idx]
        predicted = int(round(stage.model.predict(key)))
        lo = min(max(predicted - stage.max_err, 0), n)
        hi = min(max(predicted - stage.min_err + 1, 0), n)
        if lo >= hi:
            lo, hi = 0, n
        keys_list = self._keys
        pos = int(np.searchsorted(keys_list[lo:hi], key)) + lo
        steps = max(1, int(np.ceil(np.log2((hi - lo) + 1))))
        found = pos < n and int(keys_list[pos]) == key
        value = int(self._values[pos]) if found else None
        return QueryStats(key=key, found=found, value=value, levels=2, search_steps=steps)

    def lookup_many(self, keys) -> BatchQueryStats:
        """Vectorised batch lookup: root routing, per-stage predictions
        and the error-bounded binary search as pure array ops."""
        q = _as_query_array(keys)
        m = q.size
        n = int(self._keys.size)
        root_pred = np.rint(self._root.predict_array(q)).astype(np.int64)
        stage = np.clip(root_pred, 0, self._branching - 1)
        delta = (q - self._stage_pivot[stage]).astype(np.float64)
        predicted = np.rint(
            self._stage_slope[stage] * delta + self._stage_intercept[stage]
        ).astype(np.int64)
        lo = np.clip(predicted - self._stage_max_err[stage], 0, n)
        hi = np.clip(predicted - self._stage_min_err[stage] + 1, 0, n)
        degenerate = lo >= hi
        lo[degenerate] = 0
        hi[degenerate] = n
        pos = np.clip(np.searchsorted(self._keys, q, side="left"), lo, hi)
        steps = np.maximum(1, np.ceil(np.log2(hi - lo + 1)).astype(np.int64))
        found = np.zeros(m, dtype=bool)
        in_range = pos < n
        found[in_range] = self._keys[pos[in_range]] == q[in_range]
        values = np.zeros(m, dtype=np.int64)
        values[found] = self._values[pos[found]]
        return BatchQueryStats(
            keys=q,
            found=found,
            values=values,
            levels=np.full(m, 2, dtype=np.int64),
            search_steps=steps,
        )

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high`` — RMI
        stores the data as one dense sorted array, so a range is the
        slice between the bounds' positions."""
        return _range_from_sorted_arrays(self._keys, self._values, low, high)

    @property
    def n_keys(self) -> int:
        return int(self._keys.size)

    def height(self) -> int:
        return 2

    def node_count(self) -> int:
        return 1 + self._branching

    def size_bytes(self) -> int:
        per_model = 8 + 8 + 2 * 8  # slope, intercept, error bounds
        total = NODE_HEADER_BYTES + per_model  # root
        total += self._branching * per_model
        total += self._keys.size * (KEY_BYTES + VALUE_BYTES)
        return total

    def key_level(self, key: int) -> int:
        return 2

    def iter_keys(self) -> Iterator[int]:
        yield from (int(k) for k in self._keys)
