"""Binary-searched sorted array — the simplest possible baseline.

One "node", ``log2(n)`` search steps per lookup.  Used as the ground
truth oracle in tests and as the classical lower bound on structural
complexity in benches.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    VALUE_BYTES,
    LearnedIndex,
    QueryStats,
    prepare_key_values,
)

__all__ = ["SortedArrayIndex"]


class SortedArrayIndex(LearnedIndex):
    """Dense sorted array with binary search."""

    name = "sorted_array"

    def __init__(self, keys: np.ndarray, values: np.ndarray):
        self._keys = keys
        self._values = values

    @classmethod
    def build(cls, keys, values=None) -> "SortedArrayIndex":
        arr, vals = prepare_key_values(keys, values)
        return cls(arr, vals)

    def insert(self, key: int, value: int) -> None:
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and int(self._keys[pos]) == int(key):
            self._values[pos] = value
            return
        self._keys = np.insert(self._keys, pos, key)
        self._values = np.insert(self._values, pos, value)

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        # Count the probes an iterative binary search performs.
        lo, hi = 0, self._keys.size - 1
        steps = 0
        found = False
        value: int | None = None
        while lo <= hi:
            steps += 1
            mid = (lo + hi) // 2
            mid_key = int(self._keys[mid])
            if mid_key == key:
                found = True
                value = int(self._values[mid])
                break
            if mid_key < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return QueryStats(key=key, found=found, value=value, levels=1, search_steps=steps)

    @property
    def n_keys(self) -> int:
        return int(self._keys.size)

    def height(self) -> int:
        return 1

    def node_count(self) -> int:
        return 1

    def size_bytes(self) -> int:
        return NODE_HEADER_BYTES + self._keys.size * (KEY_BYTES + VALUE_BYTES)

    def key_level(self, key: int) -> int:
        return 1

    def iter_keys(self) -> Iterator[int]:
        yield from (int(k) for k in self._keys)
