"""Binary-searched sorted array — the simplest possible baseline.

One "node", ``log2(n)`` search steps per lookup.  Used as the ground
truth oracle in tests and as the classical lower bound on structural
complexity in benches.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .base import (
    KEY_BYTES,
    NODE_HEADER_BYTES,
    VALUE_BYTES,
    BatchQueryStats,
    LearnedIndex,
    QueryStats,
    _as_query_array,
    _range_from_sorted_arrays,
    prepare_key_values,
)

__all__ = ["SortedArrayIndex"]


class SortedArrayIndex(LearnedIndex):
    """Dense sorted array with binary search."""

    name = "sorted_array"

    def __init__(self, keys: np.ndarray, values: np.ndarray):
        self._keys = keys
        self._values = values
        #: Lazily built probe-count tables for the batch path
        #: (invalidated whenever the array changes size).
        self._probe_tables: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def build(cls, keys, values=None) -> "SortedArrayIndex":
        arr, vals = prepare_key_values(keys, values)
        return cls(arr, vals)

    def insert(self, key: int, value: int) -> None:
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and int(self._keys[pos]) == int(key):
            self._values[pos] = value
            return
        self._keys = np.insert(self._keys, pos, key)
        self._values = np.insert(self._values, pos, value)
        self._probe_tables = None

    def insert_many(self, keys, values=None) -> None:
        """Vectorised bulk insert: one merged reallocation per batch.

        Equivalent to per-key :meth:`insert` in batch order — existing
        keys are updated in place, new keys are spliced in with a
        single ``np.insert`` (duplicates within the batch: last value
        wins, as in the sequential loop).
        """
        arr = _as_query_array(keys)
        if values is None:
            vals = arr
        else:
            vals = np.ascontiguousarray(np.asarray(values), dtype=np.int64)
            if vals.shape != arr.shape:
                raise ValueError("values must parallel keys")
        if arr.size == 0:
            return
        # Stable sort: within equal keys, the LAST input occurrence
        # ends each run and must win (sequential-loop semantics).
        order = np.argsort(arr, kind="stable")
        sorted_keys = arr[order]
        sorted_vals = vals[order]
        last_of_run = np.ones(sorted_keys.size, dtype=bool)
        last_of_run[:-1] = sorted_keys[:-1] != sorted_keys[1:]
        unique_keys = sorted_keys[last_of_run]
        unique_vals = sorted_vals[last_of_run]
        pos = np.searchsorted(self._keys, unique_keys)
        in_range = pos < self._keys.size
        present = np.zeros(unique_keys.size, dtype=bool)
        present[in_range] = self._keys[pos[in_range]] == unique_keys[in_range]
        self._values[pos[present]] = unique_vals[present]
        fresh = ~present
        if np.any(fresh):
            self._keys = np.insert(self._keys, pos[fresh], unique_keys[fresh])
            self._values = np.insert(self._values, pos[fresh], unique_vals[fresh])
            self._probe_tables = None

    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        # Count the probes an iterative binary search performs.
        lo, hi = 0, self._keys.size - 1
        steps = 0
        found = False
        value: int | None = None
        while lo <= hi:
            steps += 1
            mid = (lo + hi) // 2
            mid_key = int(self._keys[mid])
            if mid_key == key:
                found = True
                value = int(self._values[mid])
                break
            if mid_key < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return QueryStats(key=key, found=found, value=value, levels=1, search_steps=steps)

    def lookup_many(self, keys) -> BatchQueryStats:
        """Vectorised batch lookup.

        Runs every query's iterative binary search in lock-step — one
        array operation per probe round instead of one Python loop per
        key — so the probe counts (and therefore the simulated costs)
        are identical to :meth:`lookup_stats`.
        """
        q = _as_query_array(keys)
        m = q.size
        n = int(self._keys.size)
        steps_hit, steps_miss = self._probe_counts()
        pos = np.searchsorted(self._keys, q, side="left")
        found = np.zeros(m, dtype=bool)
        in_range = pos < n
        found[in_range] = self._keys[pos[in_range]] == q[in_range]
        values = np.zeros(m, dtype=np.int64)
        values[found] = self._values[pos[found]]
        steps = np.where(found, steps_hit[np.clip(pos, 0, max(n - 1, 0))], steps_miss[pos])
        return BatchQueryStats(
            keys=q,
            found=found,
            values=values,
            levels=np.ones(m, dtype=np.int64),
            search_steps=steps,
        )

    def _probe_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Probe-count tables of the iterative binary search.

        The probe sequence depends only on which position a query hits
        (or would be inserted at), never on the key values, so one
        O(n) sweep over the implicit search tree yields ``steps_hit[p]``
        (probes to find the key stored at ``p``) and ``steps_miss[i]``
        (probes until ``lo > hi`` for a miss with insertion point
        ``i``) — exactly the counts :meth:`lookup_stats` reports.
        """
        n = int(self._keys.size)
        if self._probe_tables is not None and self._probe_tables[0].size == n:
            return self._probe_tables
        steps_hit = np.zeros(max(n, 1), dtype=np.int64)
        steps_miss = np.zeros(n + 1, dtype=np.int64)
        stack = [(0, n - 1, 1)]
        while stack:
            lo, hi, depth = stack.pop()
            if lo > hi:
                steps_miss[lo] = depth - 1
                continue
            mid = (lo + hi) >> 1
            steps_hit[mid] = depth
            stack.append((lo, mid - 1, depth + 1))
            stack.append((mid + 1, hi, depth + 1))
        self._probe_tables = (steps_hit[:n] if n else steps_hit[:0], steps_miss)
        return self._probe_tables

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high`` — a
        contiguous slice of the backing arrays."""
        return _range_from_sorted_arrays(self._keys, self._values, low, high)

    @property
    def n_keys(self) -> int:
        return int(self._keys.size)

    def height(self) -> int:
        return 1

    def node_count(self) -> int:
        return 1

    def size_bytes(self) -> int:
        return NODE_HEADER_BYTES + self._keys.size * (KEY_BYTES + VALUE_BYTES)

    def key_level(self, key: int) -> int:
        return 1

    def iter_keys(self) -> Iterator[int]:
        yield from (int(k) for k in self._keys)
