"""SALI index: LIPP + probability-driven hot-subtree flattening [9].

SALI keeps LIPP's precise-position core (it is "based on LIPP", which
is why the paper reports near-identical CSV behaviour on the two) and
adds workload adaptation: per-node access statistics identify the most
frequently traversed subtrees, which get flattened into PGM-segmented
nodes to cut their traversal depth at the price of an extra search
step (see :mod:`repro.indexes.sali.flatten`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ...core.exceptions import IndexStateError
from ..base import (
    MODEL_BYTES,
    NODE_HEADER_BYTES,
    OFFSET_BYTES,
    POINTER_BYTES,
    BatchQueryStats,
    QueryStats,
    _as_query_array,
    alloc_batch_outputs,
)
from ..lipp.index import SLOT_BYTES, LippIndex
from ..lipp.node import DEFAULT_SLOT_FACTOR, SLOT_CHILD, SLOT_DATA, LippNode
from .flatten import DEFAULT_EPSILON, FlattenedNode
from .probability import AccessTracker

__all__ = ["SaliIndex"]


class SaliIndex(LippIndex):
    """Scalable Adaptive Learned Index (reproduction)."""

    name = "sali"

    def __init__(
        self,
        root: LippNode,
        slot_factor: float,
        flatten_epsilon: int = DEFAULT_EPSILON,
        use_flat: bool = True,
    ):
        super().__init__(root, slot_factor, use_flat=use_flat)
        self.tracker = AccessTracker()
        self._flatten_epsilon = int(flatten_epsilon)

    @classmethod
    def build(
        cls,
        keys,
        values=None,
        slot_factor: float = DEFAULT_SLOT_FACTOR,
        flatten_epsilon: int = DEFAULT_EPSILON,
        use_flat: bool = True,
    ) -> "SaliIndex":
        base = LippIndex.build(keys, values, slot_factor)
        return cls(base.root, slot_factor, flatten_epsilon, use_flat=use_flat)

    # ------------------------------------------------------------------
    # Queries (track access statistics; handle flattened children)
    # ------------------------------------------------------------------
    def lookup_stats(self, key: int) -> QueryStats:
        key = int(key)
        path: list = []
        node = self._root
        levels = 1
        while True:
            path.append(node)
            if isinstance(node, FlattenedNode):
                found, value, steps = node.lookup(key)
                self.tracker.record_path(path)
                return QueryStats(key=key, found=found, value=value, levels=levels, search_steps=steps)
            slot = node.slot_of(key)
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                node = node.children[slot]
                levels += 1
                continue
            self.tracker.record_path(path)
            if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
                return QueryStats(
                    key=key, found=True, value=int(node.slot_values[slot]),
                    levels=levels, search_steps=0,
                )
            return QueryStats(key=key, found=False, value=None, levels=levels, search_steps=0)

    def lookup_many(self, keys) -> BatchQueryStats:
        """Batched lookups with workload tracking.

        Routes through LIPP's flat-view sweep with tracking enabled:
        per-level visit counters are accumulated with one ``bincount``
        per level and scattered back onto the nodes' ``access_count``
        (aggregate-equivalent to per-query ``record_path``); flattened
        subtrees answer their groups via
        :meth:`~repro.indexes.sali.flatten.FlattenedNode.lookup_batch`.
        The node-object sweep remains the ``use_flat=False`` oracle.
        """
        q = _as_query_array(keys)
        found, values, levels, steps = alloc_batch_outputs(q.size)
        if q.size:
            self.tracker.total_queries += int(q.size)
            self._batch_lookup(q, found, values, levels, steps, track=True)
        return BatchQueryStats(keys=q, found=found, values=values, levels=levels, search_steps=steps)

    def key_level(self, key: int) -> int:
        key = int(key)
        node = self._root
        levels = 1
        while True:
            if isinstance(node, FlattenedNode):
                found, __, __steps = node.lookup(key)
                if found:
                    return levels
                raise IndexStateError(f"key {key} is not stored in this SALI index")
            slot = node.slot_of(key)
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                node = node.children[slot]
                levels += 1
                continue
            if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
                return levels
            raise IndexStateError(f"key {key} is not stored in this SALI index")

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        key = int(key)
        value = int(value)
        node = self._root
        path: list[LippNode] = []
        while True:
            if isinstance(node, FlattenedNode):
                before = node.n_subtree_keys
                node.insert(key, value)
                if node.n_subtree_keys > before:
                    for visited in path:
                        visited.n_subtree_keys += 1
                return
            path.append(node)
            slot = node.slot_of(key)
            kind = int(node.slot_type[slot])
            if kind == SLOT_CHILD:
                node = node.children[slot]
                continue
            break
        if kind == SLOT_DATA and int(node.slot_keys[slot]) == key:
            node.slot_values[slot] = value
            return
        for visited in path:
            visited.n_subtree_keys += 1
        if kind == SLOT_DATA:
            node.make_conflict_child(slot, key, value, self._slot_factor)
            self.invalidate_flat()
            for visited in path:
                visited.conflicts_since_build += 1
            self._maybe_rebuild([n for n in path if isinstance(n, LippNode)])
        else:
            node.slot_type[slot] = SLOT_DATA
            node.slot_keys[slot] = key
            node.slot_values[slot] = value

    # Bulk ingest is inherited from LippIndex: `bulk_insert_many`'s
    # recursive sorted-merge (`_bulk_into`) duck-types non-LippNode
    # leaves, so batches landing in a flattened subtree merge into its
    # dense arrays and rebuild it *as a flattened node* — one
    # re-segmentation per touched flat leaf, preserving SALI's
    # adaptation instead of per-key `FlattenedNode.insert` rebuilds.

    # ------------------------------------------------------------------
    # SALI's own adaptation: flattening hot subtrees
    # ------------------------------------------------------------------
    def flatten_hot_subtrees(self, min_probability: float = 0.05) -> int:
        """Flatten subtrees whose access probability exceeds the bound.

        Walks top-down; once a subtree is flattened its descendants are
        gone, so nested candidates resolve to the shallowest hot node.
        The root is never flattened (that would degenerate to one big
        PGM node).  Returns the number of subtrees flattened.
        """
        flattened = 0
        stack: list[LippNode] = []
        if isinstance(self._root, LippNode):
            stack.append(self._root)
        while stack:
            node = stack.pop()
            for slot, child in list(node.children.items()):
                if not isinstance(child, LippNode):
                    continue
                if child.has_subtree and self.tracker.is_hot(child, min_probability):
                    keys, values = child.collect_arrays()
                    flat = FlattenedNode(keys, values, child.level, self._flatten_epsilon)
                    flat.parent = node
                    flat.parent_slot = slot
                    node.children[slot] = flat
                    flattened += 1
                else:
                    stack.append(child)
        if flattened:
            self.invalidate_flat()
        return flattened

    def flattened_nodes(self) -> list[FlattenedNode]:
        """Every flattened node currently in the structure."""
        return [n for n in self._root.walk() if isinstance(n, FlattenedNode)]

    # ------------------------------------------------------------------
    # Structure metrics (flattened nodes accounted separately)
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Resident bytes: LIPP's flat accounting + flattened leaves.

        LIPP nodes are charged header + slots + model + CSR offset
        exactly as in :meth:`LippIndex.size_bytes`; flattened leaves
        report their dense arrays and PLA segments through
        :meth:`~repro.indexes.sali.flatten.FlattenedNode.leaf_size_bytes`.
        """
        flat = self._flat_view()
        if flat is not None:
            total = flat.n_nodes * (NODE_HEADER_BYTES + MODEL_BYTES + OFFSET_BYTES)
            total += flat.total_slots * SLOT_BYTES
            total += flat.child_slot_count() * POINTER_BYTES
            return total + sum(leaf.leaf_size_bytes() for leaf in flat.leaves)
        total = 0
        for node in self._root.walk():
            if isinstance(node, FlattenedNode):
                total += node.leaf_size_bytes()
            else:
                total += NODE_HEADER_BYTES + MODEL_BYTES + OFFSET_BYTES
                total += node.m * SLOT_BYTES
                total += len(node.children) * POINTER_BYTES
        return total

    def iter_keys(self) -> Iterator[int]:
        for key, __ in self._root.iter_entries():
            yield key

    # ------------------------------------------------------------------
    # Range queries (flattening-aware)
    # ------------------------------------------------------------------
    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``.

        Same in-order bounded walk as LIPP, except flattened subtrees —
        whose entries are dense sorted arrays — are answered with a
        single ``searchsorted`` slice instead of entry-by-entry
        iteration.  Returns True from the helper once a key above
        *high* is seen, which cuts the remainder of the walk.
        """
        low = int(low)
        high = int(high)
        out: list[tuple[int, int]] = []

        def scan(node) -> bool:
            if isinstance(node, FlattenedNode):
                lo = int(np.searchsorted(node.keys, low, side="left"))
                hi = int(np.searchsorted(node.keys, high, side="right"))
                out.extend(zip(node.keys[lo:hi].tolist(), node.values[lo:hi].tolist()))
                return hi < int(node.keys.size)
            for slot in range(node.m):
                kind = int(node.slot_type[slot])
                if kind == SLOT_DATA:
                    key = int(node.slot_keys[slot])
                    if key > high:
                        return True
                    if key >= low:
                        out.append((key, int(node.slot_values[slot])))
                elif kind == SLOT_CHILD:
                    if scan(node.children[slot]):
                        return True
            return False

        scan(self._root)
        return out
