"""Access-probability model for SALI (Ge et al. [9]).

SALI drives its structural adaptations with per-node access
probabilities estimated from the query workload.  We keep the faithful
core — every traversal bumps the counter of each node on the path, and
a node's probability is its share of all recorded traversals — plus an
exponential-decay refresh so shifting workloads age out (SALI's
probability model is likewise workload-windowed).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["AccessTracker"]


class AccessTracker:
    """Aggregates access counts recorded on nodes into probabilities."""

    def __init__(self) -> None:
        self.total_queries = 0

    def record_path(self, path: Iterable) -> None:
        """Credit one query's traversal to every node on *path*."""
        self.total_queries += 1
        for node in path:
            node.access_count += 1

    def probability(self, node) -> float:
        """Estimated probability a query traverses *node*."""
        if self.total_queries == 0:
            return 0.0
        return node.access_count / self.total_queries

    def decay(self, factor: float = 0.5, nodes: Iterable = ()) -> None:
        """Age the statistics by *factor* (0 forgets everything)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        self.total_queries = int(self.total_queries * factor)
        for node in nodes:
            node.access_count = int(node.access_count * factor)

    def is_hot(self, node, min_probability: float) -> bool:
        """Whether *node* qualifies as a flattening target."""
        return self.probability(node) >= min_probability
