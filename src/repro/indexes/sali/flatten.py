"""Flattened subtree node for SALI (Ge et al. [9]).

SALI identifies frequently accessed subtrees and *flattens* them: the
subtree's keys move into a single node indexed by an error-bounded
piecewise-linear segmentation (the same construction as the PGM
index, Section 2.2).  A lookup then costs one traversal step into the
flattened node plus a segment search — this extra search step is the
trade-off the paper highlights when comparing CSV to SALI's own
flattening.

The node duck-types the parts of :class:`~repro.indexes.lipp.node.
LippNode` that the shared traversal/metric code touches (``children``,
``level``, ``iter_entries`` …) so it can live inside a LIPP subtree.
"""

from __future__ import annotations

import bisect
from typing import Iterator

import numpy as np

from ...core.exceptions import IndexStateError
from ..base import KEY_BYTES, NODE_HEADER_BYTES, VALUE_BYTES
from ..pgm import PlaSegment, build_pla_segments

__all__ = ["FlattenedNode"]

DEFAULT_EPSILON = 8

#: Bytes per PLA segment: first key + slope + intercept + position.
SEGMENT_BYTES = KEY_BYTES + 8 + 8 + 8


class FlattenedNode:
    """A PGM-segmented flat node replacing a hot LIPP subtree."""

    __slots__ = (
        "keys",
        "values",
        "segments",
        "segment_first_keys",
        "_seg_first_key",
        "_seg_slope",
        "_seg_intercept",
        "_seg_first_pos",
        "_seg_last_pos",
        "epsilon",
        "level",
        "parent",
        "parent_slot",
        "children",
        "n_subtree_keys",
        "access_count",
        "virtual_slots",
    )

    def __init__(self, keys: np.ndarray, values: np.ndarray, level: int, epsilon: int = DEFAULT_EPSILON):
        if keys.size == 0:
            raise IndexStateError("cannot flatten an empty subtree")
        self.keys = keys
        self.values = values
        self.epsilon = int(epsilon)
        self.level = level
        self.parent = None
        self.parent_slot: int | None = None
        #: Duck-typing shims so LIPP's generic walks terminate here.
        self.children: dict[int, object] = {}
        self.n_subtree_keys = int(keys.size)
        self.access_count = 0
        self.virtual_slots = 0
        self._rebuild_segments()

    def _rebuild_segments(self) -> None:
        self.segments = build_pla_segments(self.keys, self.epsilon)
        self.segment_first_keys = [seg.first_key for seg in self.segments]
        # Struct-of-arrays mirror for the vectorised batch lookup.
        self._seg_first_key = np.asarray(self.segment_first_keys, dtype=np.int64)
        self._seg_slope = np.asarray([s.slope for s in self.segments])
        self._seg_intercept = np.asarray([s.intercept for s in self.segments])
        self._seg_first_pos = np.asarray([s.first_pos for s in self.segments], dtype=np.int64)
        self._seg_last_pos = np.asarray([s.last_pos for s in self.segments], dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Slot-count equivalent (dense layout)."""
        return int(self.keys.size)

    @property
    def segment_count(self) -> int:
        return len(self.segments)

    def lookup(self, key: int) -> tuple[bool, int | None, int]:
        """``(found, value, search_steps)``.

        Steps = locating the segment (binary search over segment first
        keys) + the ε-bounded search inside it.
        """
        key = int(key)
        seg_idx = bisect.bisect_right(self.segment_first_keys, key) - 1
        seg_idx = max(seg_idx, 0)
        seg: PlaSegment = self.segments[seg_idx]
        steps = max(1, int(np.ceil(np.log2(len(self.segments) + 1))))
        predicted = seg.predict(key)
        lo = max(predicted - self.epsilon, 0)
        hi = min(predicted + self.epsilon + 1, int(self.keys.size))
        pos = int(np.searchsorted(self.keys[lo:hi], key)) + lo
        steps += max(1, int(np.ceil(np.log2(hi - lo + 1))))
        if pos < self.keys.size and int(self.keys[pos]) == key:
            return True, int(self.values[pos]), steps
        return False, None, steps

    def lookup_batch(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised :meth:`lookup` over a query array.

        Returns ``(found, values, search_steps)`` parallel to
        *queries*; segment routing, prediction and the ε-bounded search
        are all array ops (the bounded bisect is a full-array
        ``searchsorted`` clipped into the window, valid because the
        keys are globally sorted).
        """
        q = np.asarray(queries, dtype=np.int64)
        m = int(q.size)
        seg_idx = np.maximum(np.searchsorted(self._seg_first_key, q, side="right") - 1, 0)
        seg_steps = max(1, int(np.ceil(np.log2(len(self.segments) + 1))))
        delta = (q - self._seg_first_key[seg_idx]).astype(np.float64)
        predicted = np.rint(
            self._seg_slope[seg_idx] * delta + self._seg_intercept[seg_idx]
        ).astype(np.int64)
        predicted = np.clip(predicted, self._seg_first_pos[seg_idx], self._seg_last_pos[seg_idx])
        lo = np.maximum(predicted - self.epsilon, 0)
        hi = np.minimum(predicted + self.epsilon + 1, int(self.keys.size))
        pos = np.clip(np.searchsorted(self.keys, q, side="left"), lo, hi)
        steps = seg_steps + np.maximum(1, np.ceil(np.log2(hi - lo + 1)).astype(np.int64))
        found = np.zeros(m, dtype=bool)
        in_range = pos < self.keys.size
        found[in_range] = self.keys[pos[in_range]] == q[in_range]
        values = np.zeros(m, dtype=np.int64)
        values[found] = self.values[pos[found]]
        return found, values, steps

    def insert(self, key: int, value: int) -> None:
        """Insert (rare path: flattening targets read-hot subtrees)."""
        key = int(key)
        pos = int(np.searchsorted(self.keys, key))
        if pos < self.keys.size and int(self.keys[pos]) == key:
            self.values[pos] = value
            return
        self.keys = np.insert(self.keys, pos, key)
        self.values = np.insert(self.values, pos, int(value))
        self.n_subtree_keys += 1
        self._rebuild_segments()

    # ------------------------------------------------------------------
    # LIPP-walk compatibility
    # ------------------------------------------------------------------
    def local_entries(self) -> Iterator[tuple[int, int]]:
        """All entries live directly in a flattened node."""
        yield from self.iter_entries()

    def iter_entries(self) -> Iterator[tuple[int, int]]:
        """Yield (key, value) pairs in ascending key order."""
        for key, value in zip(self.keys.tolist(), self.values.tolist()):
            yield int(key), int(value)

    def collect_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Keys and values as sorted parallel arrays."""
        return self.keys.copy(), self.values.copy()

    def leaf_size_bytes(self) -> int:
        """Resident bytes: header + dense entries + PLA segments."""
        return (
            NODE_HEADER_BYTES
            + int(self.keys.size) * (KEY_BYTES + VALUE_BYTES)
            + self.segment_count * SEGMENT_BYTES
        )

    def walk(self):
        """A flattened node is a leaf of the LIPP-style walk."""
        yield self

    def visit_data_levels(self, visit) -> None:
        """Call ``visit(key, level)`` for every stored key."""
        for key in self.keys.tolist():
            visit(int(key), self.level)

    def subtree_loss(self) -> float:
        """Flattened nodes hold no conflict subtrees (loss 0)."""
        return 0.0
