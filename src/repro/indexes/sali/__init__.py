"""SALI — Scalable Adaptive Learned Index framework [9]."""

from .flatten import FlattenedNode
from .index import SaliIndex
from .probability import AccessTracker

__all__ = ["AccessTracker", "FlattenedNode", "SaliIndex"]
