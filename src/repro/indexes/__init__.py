"""Index substrates: the learned indexes CSV integrates with (ALEX,
LIPP, SALI) plus classical and learned baselines."""

from .adapters import AlexCsvAdapter, LippCsvAdapter, SaliCsvAdapter, adapter_for
from .alex import AlexDataNode, AlexIndex, AlexInnerNode
from .base import BatchQueryStats, LearnedIndex, QueryStats
from .btree import BPlusTree
from .lipp import LippIndex, LippNode
from .pgm import PGMIndex, PlaSegment, build_pla_segments
from .rmi import RMIIndex
from .sali import AccessTracker, FlattenedNode, SaliIndex
from .sorted_array import SortedArrayIndex

#: Registry used by the evaluation harness and the examples.
INDEX_FAMILIES = {
    "alex": AlexIndex,
    "lipp": LippIndex,
    "sali": SaliIndex,
    "btree": BPlusTree,
    "pgm": PGMIndex,
    "rmi": RMIIndex,
    "sorted_array": SortedArrayIndex,
}

__all__ = [
    "AccessTracker",
    "AlexCsvAdapter",
    "AlexDataNode",
    "AlexIndex",
    "AlexInnerNode",
    "BPlusTree",
    "BatchQueryStats",
    "FlattenedNode",
    "INDEX_FAMILIES",
    "LearnedIndex",
    "LippCsvAdapter",
    "LippIndex",
    "LippNode",
    "PGMIndex",
    "PlaSegment",
    "QueryStats",
    "RMIIndex",
    "SaliCsvAdapter",
    "SaliIndex",
    "SortedArrayIndex",
    "adapter_for",
    "build_pla_segments",
]
