"""CSV adapters: bind Algorithm 2 to concrete index structures.

Each adapter implements :class:`repro.core.csv_algorithm.CsvAdapter`
for one index family, encoding the paper's per-index decisions
(Section 5.1):

* **LIPP / SALI** — no in-node search exists, so the smoothing loss
  change alone is the cost condition; a rebuilt subtree becomes one
  precise-position node sized to the smoothed point set, with virtual
  points materialising as EMPTY slots.
* **ALEX** — leaf search is real, so Eq. 22 prices the trade between
  removed traversal levels and the merged node's expected search
  steps; a rebuilt subtree becomes one gapped data node laid out at
  the smoothed ranks.
"""

from __future__ import annotations

import numpy as np

from ..core.cost_model import CostConstants, expected_search_steps
from ..core.exceptions import IndexStateError
from ..core.smoothing import SmoothingResult
from .alex.data_node import AlexDataNode
from .alex.index import AlexIndex
from .alex.inner_node import AlexInnerNode
from .lipp.index import LippIndex
from .lipp.node import LippNode
from .sali.index import SaliIndex

__all__ = ["LippCsvAdapter", "SaliCsvAdapter", "AlexCsvAdapter", "adapter_for"]


def _level_map(node) -> dict[int, int]:
    """key → level over a (duck-typed) subtree."""
    levels: dict[int, int] = {}
    node.visit_data_levels(lambda key, level: levels.__setitem__(key, level))
    return levels


class LippCsvAdapter:
    """CSV adapter for :class:`~repro.indexes.lipp.index.LippIndex`.

    Handles are :class:`LippNode` objects that root a subtree.  The
    root is never a handle (CSV stops at the second level from the
    top; the engine's ``stop_level`` enforces this, and the adapter
    additionally requires a parent so rebuilds have an attachment
    point).
    """

    def __init__(self, index: LippIndex):
        self.index = index

    # -- enumeration ----------------------------------------------------
    def _subtree_nodes(self) -> list[LippNode]:
        return [
            node
            for node in self.index.root.walk()
            if isinstance(node, LippNode) and node.has_subtree and node.parent is not None
        ]

    def max_level(self) -> int:
        """Deepest level with a subtree-rooting node (0 if none)."""
        nodes = self._subtree_nodes()
        if not nodes:
            return 0
        return max(node.level for node in nodes)

    def subtree_handles(self, level: int) -> list[LippNode]:
        """Subtree-rooting nodes at *level* (excluding the root)."""
        return [node for node in self._subtree_nodes() if node.level == level]

    # -- Algorithm 2 hooks ----------------------------------------------
    def collect_keys(self, handle: LippNode) -> np.ndarray:
        """Sorted keys of the subtree rooted at *handle*."""
        keys, __ = handle.collect_arrays()
        return keys

    def cost_delta(self, handle: LippNode, smoothing: SmoothingResult) -> float:
        """Loss change (Section 5.1: the loss *is* the condition)."""
        return smoothing.final_loss - smoothing.original_loss

    def rebuild(self, handle: LippNode, smoothing: SmoothingResult) -> int:
        """Replace the subtree with one smoothed node; count promotions."""
        keys, values = handle.collect_arrays()
        levels_before = _level_map(handle)
        merged = LippNode.from_keys(
            keys,
            values,
            level=handle.level,
            slot_factor=self.index.slot_factor,
            m=int(smoothing.points.size),
            model=smoothing.model,
        )
        merged.virtual_slots = smoothing.n_virtual
        self._attach(handle, merged)
        levels_after = _level_map(merged)
        return sum(
            1
            for key, before in levels_before.items()
            if levels_after.get(key, before) < before
        )

    def _attach(self, old: LippNode, new: LippNode) -> None:
        parent = old.parent
        if parent is None:
            raise IndexStateError("CSV never rebuilds the root node")
        slot = old.parent_slot
        assert slot is not None
        parent.children[slot] = new
        new.parent = parent
        new.parent_slot = slot
        # Direct tree surgery: the index's compiled flat view no
        # longer matches the structure.
        self.index.invalidate_flat()


class SaliCsvAdapter(LippCsvAdapter):
    """CSV adapter for SALI — identical mechanics to LIPP (SALI keeps
    LIPP's precise-position query path; flattened nodes are left
    untouched because they are SALI's own optimisation)."""

    def __init__(self, index: SaliIndex):
        super().__init__(index)


class AlexCsvAdapter:
    """CSV adapter for :class:`~repro.indexes.alex.index.AlexIndex`.

    Handles are inner nodes; a rebuild replaces the inner node with a
    single gapped data node laid out at the smoothed ranks (virtual
    points become the gaps).  The Eq. 22 cost model decides.
    """

    def __init__(self, index: AlexIndex, constants: CostConstants | None = None):
        self.index = index
        self.constants = constants or CostConstants()

    # -- enumeration ----------------------------------------------------
    def _inner_nodes(self) -> list[AlexInnerNode]:
        root = self.index.root
        if not isinstance(root, AlexInnerNode):
            return []
        return [n for n in root.walk() if isinstance(n, AlexInnerNode)]

    def max_level(self) -> int:
        """Deepest level with a non-root inner node (0 if none)."""
        nodes = [n for n in self._inner_nodes() if n.parent is not None]
        if not nodes:
            return 0
        return max(node.level for node in nodes)

    def subtree_handles(self, level: int) -> list[AlexInnerNode]:
        """Non-root inner nodes at *level*."""
        return [
            node
            for node in self._inner_nodes()
            if node.level == level and node.parent is not None
        ]

    # -- Algorithm 2 hooks ----------------------------------------------
    def collect_keys(self, handle: AlexInnerNode) -> np.ndarray:
        """Sorted keys of the subtree rooted at *handle*."""
        keys, __ = handle.collect_arrays()
        return keys

    def _subtree_profile(self, handle: AlexInnerNode) -> tuple[float, float, int]:
        """(weighted expected search steps, weighted key level, keys)."""
        step_sum = 0.0
        level_sum = 0.0
        total = 0
        for node in handle.walk():
            if isinstance(node, AlexDataNode) and node.n_keys:
                step_sum += node.expected_search_steps() * node.n_keys
                level_sum += node.level * node.n_keys
                total += node.n_keys
        if total == 0:
            return 1.0, float(handle.level), 0
        return step_sum / total, level_sum / total, total

    def cost_delta(self, handle: AlexInnerNode, smoothing: SmoothingResult) -> float:
        """Eq. 22 applied before/after the hypothetical merge."""
        steps_before, level_before, total = self._subtree_profile(handle)
        if total == 0:
            return 0.0
        n = int(smoothing.original_keys.size)
        loss_on_keys = smoothing.loss_over_original_keys()
        steps_after = expected_search_steps(loss_on_keys, n)
        cost_before = (
            self.constants.search_ns * steps_before
            + self.constants.traversal_ns * level_before
        )
        cost_after = (
            self.constants.search_ns * steps_after
            + self.constants.traversal_ns * handle.level
        )
        return cost_after - cost_before

    def rebuild(self, handle: AlexInnerNode, smoothing: SmoothingResult) -> int:
        """Replace the subtree with one gapped data node; count promotions."""
        keys, values = handle.collect_arrays()
        promoted = 0
        for node in handle.walk():
            if isinstance(node, AlexDataNode) and node.level > handle.level:
                promoted += node.n_keys
        # Size the merged node to whichever gap budget is larger: the
        # smoothed point set (virtual points = gaps) or ALEX's normal
        # density headroom.  Taking the max instead of stacking both
        # keeps the storage overhead an α-fraction (Fig. 8h) while a
        # near-full node would otherwise double on the first insert.
        from .alex.data_node import TARGET_DENSITY

        n_points = int(smoothing.points.size)
        capacity = max(
            n_points + 1,
            int(np.ceil(smoothing.original_keys.size / TARGET_DENSITY)),
        )
        model = smoothing.model.scaled(capacity / n_points)
        merged = AlexDataNode.from_model(
            keys,
            values,
            capacity=capacity,
            model=model,
            level=handle.level,
        )
        merged.virtual_slots = smoothing.n_virtual
        parent = handle.parent
        if parent is None:
            raise IndexStateError("CSV never rebuilds the root node")
        assert handle.parent_slot is not None
        parent.attach(handle.parent_slot, merged)
        return promoted


def adapter_for(index, constants: CostConstants | None = None):
    """Pick the right CSV adapter for *index*."""
    if isinstance(index, SaliIndex):
        return SaliCsvAdapter(index)
    if isinstance(index, LippIndex):
        return LippCsvAdapter(index)
    if isinstance(index, AlexIndex):
        return AlexCsvAdapter(index, constants)
    raise IndexStateError(f"no CSV adapter for index type {type(index).__name__}")
