"""Common interface for every index in the library.

The paper's evaluation decomposes a lookup into (1) *traversal* — the
levels descended to reach the node holding the key — and (2) *leaf-node
search* — the probes needed inside that node because the model's
prediction is inexact.  Every index here therefore reports a
:class:`QueryStats` per lookup, from which the deterministic
cost-model timer (:class:`repro.core.cost_model.CostConstants`)
derives a simulated latency.  This is the substitution for the paper's
wall-clock nanoseconds (see DESIGN.md §3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..core.cost_model import CostConstants
from ..core.exceptions import IndexStateError, KeyNotFoundError
from ..core.segment_stats import validate_keys

__all__ = ["QueryStats", "LearnedIndex", "prepare_key_values"]

#: Bytes charged per stored key / value / pointer in the size model.
KEY_BYTES = 8
VALUE_BYTES = 8
POINTER_BYTES = 8
NODE_HEADER_BYTES = 32


@dataclass(frozen=True)
class QueryStats:
    """Cost breakdown of a single lookup.

    Attributes:
        key: the queried key.
        found: whether the key was present.
        value: the associated value (None on miss).
        levels: nodes traversed from the root inclusive (root hit = 1).
        search_steps: in-node probes beyond the first model-predicted
            slot (0 for precise-position indexes such as LIPP).
    """

    key: int
    found: bool
    value: int | None
    levels: int
    search_steps: int

    def simulated_ns(self, constants: CostConstants | None = None) -> float:
        """Deterministic latency under the cost model (see module doc)."""
        consts = constants or CostConstants()
        return consts.query_ns(self.levels, self.search_steps)


def prepare_key_values(
    keys: np.ndarray | list,
    values: np.ndarray | list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate keys and produce the parallel value array.

    Values default to the keys themselves (the evaluation only needs a
    payload to verify lookups return the right record).
    """
    arr = validate_keys(keys)
    if values is None:
        vals = arr.copy()
    else:
        vals = np.asarray(values, dtype=np.int64)
        if vals.shape != arr.shape:
            raise IndexStateError("values must parallel keys")
    return arr, vals


class LearnedIndex(ABC):
    """Abstract base class for all indexes in :mod:`repro.indexes`.

    Concrete classes implement point lookups with cost accounting,
    plus (for the updatable indexes) inserts.  The structural
    inspection hooks (:meth:`height`, :meth:`node_count`,
    :meth:`key_level`, :meth:`size_bytes`) power the paper's
    promoted-data / node-reduction / storage metrics.
    """

    #: Human-readable index family name, e.g. "lipp".
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Construction and updates
    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def build(cls, keys: np.ndarray | list, values: np.ndarray | list | None = None) -> "LearnedIndex":
        """Bulk-load the index from sorted unique *keys*."""

    @abstractmethod
    def insert(self, key: int, value: int) -> None:
        """Insert one key (indexes without update support raise)."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abstractmethod
    def lookup_stats(self, key: int) -> QueryStats:
        """Point lookup returning the full cost breakdown."""

    def lookup(self, key: int) -> int | None:
        """Point lookup returning the value, or None if absent."""
        return self.lookup_stats(key).value

    def lookup_strict(self, key: int) -> int:
        """Point lookup that raises :class:`KeyNotFoundError` on a miss."""
        stats = self.lookup_stats(key)
        if not stats.found:
            raise KeyNotFoundError(key)
        assert stats.value is not None
        return stats.value

    def __contains__(self, key: int) -> bool:
        return self.lookup_stats(int(key)).found

    # ------------------------------------------------------------------
    # Structure inspection
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def n_keys(self) -> int:
        """Number of (real) keys currently stored."""

    @abstractmethod
    def height(self) -> int:
        """Number of levels; a root-only index has height 1."""

    @abstractmethod
    def node_count(self) -> int:
        """Total number of nodes (inner + leaf/data)."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Modelled storage footprint (keys, values, slots, pointers)."""

    @abstractmethod
    def key_level(self, key: int) -> int:
        """Level (root = 1) of the node in which *key* is stored."""

    @abstractmethod
    def iter_keys(self) -> Iterator[int]:
        """Yield every stored key in ascending order."""

    # ------------------------------------------------------------------
    # Convenience batch helpers used by the evaluation harness
    # ------------------------------------------------------------------
    def key_levels(self, keys: np.ndarray) -> np.ndarray:
        """Vector of :meth:`key_level` over *keys*."""
        return np.asarray([self.key_level(int(k)) for k in keys], dtype=np.int64)

    def batch_stats(self, keys: np.ndarray) -> list[QueryStats]:
        """:meth:`lookup_stats` over *keys* (order preserved)."""
        return [self.lookup_stats(int(k)) for k in keys]

    def verify_against(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Assert every (key, value) pair is retrievable — test helper."""
        for key, value in zip(keys.tolist(), values.tolist()):
            got = self.lookup(int(key))
            if got != int(value):
                raise IndexStateError(
                    f"{self.name}: lookup({key}) returned {got}, expected {value}"
                )
