"""Common interface for every index in the library.

The paper's evaluation decomposes a lookup into (1) *traversal* — the
levels descended to reach the node holding the key — and (2) *leaf-node
search* — the probes needed inside that node because the model's
prediction is inexact.  Every index here therefore reports a
:class:`QueryStats` per lookup, from which the deterministic
cost-model timer (:class:`repro.core.cost_model.CostConstants`)
derives a simulated latency.  This is the substitution for the paper's
wall-clock nanoseconds (see DESIGN.md §3).

Batch query engine
------------------

Workload drivers never loop over keys in Python: they call
:meth:`LearnedIndex.lookup_many` / :meth:`LearnedIndex.insert_many`
and receive a :class:`BatchQueryStats` — a struct-of-arrays mirror of
:class:`QueryStats` whose aggregation (hit rate, average levels/steps,
simulated nanoseconds) is pure numpy.  Every backend overrides
``lookup_many`` with a vectorised implementation (model predictions,
``searchsorted`` probes and step accounting as array ops); the base
class supplies a per-key fallback with identical semantics, so a new
backend is correct before it is fast.  Batch results are positionally
parallel to the query array and bit-identical to the per-key loop —
``tests/indexes/test_batch_api.py`` asserts exact parity for every
backend.
"""

from __future__ import annotations

import io
import pickle
import sys
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..core.cost_model import CostConstants
from ..core.exceptions import IndexStateError, KeyNotFoundError
from ..core.segment_stats import validate_keys

__all__ = [
    "QueryStats",
    "BatchQueryStats",
    "LearnedIndex",
    "alloc_batch_outputs",
    "attach_from_buffers",
    "dedupe_last_wins",
    "group_runs",
    "prepare_key_values",
]

#: Bytes charged per stored key / value / pointer in the size model.
KEY_BYTES = 8
VALUE_BYTES = 8
POINTER_BYTES = 8
NODE_HEADER_BYTES = 32
#: Bytes charged per per-node model (quadratic/linear coefficients +
#: integer pivot: a, b, c, pivot at 8 bytes each).
MODEL_BYTES = 32
#: Bytes charged per node for its entry in a flat layout's CSR-style
#: slot-offset array (LIPP/SALI level-ordered representation).
OFFSET_BYTES = 8


@dataclass(frozen=True)
class QueryStats:
    """Cost breakdown of a single lookup.

    Attributes:
        key: the queried key.
        found: whether the key was present.
        value: the associated value (None on miss).
        levels: nodes traversed from the root inclusive (root hit = 1).
        search_steps: in-node probes beyond the first model-predicted
            slot (0 for precise-position indexes such as LIPP).
    """

    key: int
    found: bool
    value: int | None
    levels: int
    search_steps: int

    def simulated_ns(self, constants: CostConstants | None = None) -> float:
        """Deterministic latency under the cost model (see module doc)."""
        consts = constants or CostConstants()
        return consts.query_ns(self.levels, self.search_steps)


@dataclass(frozen=True)
class BatchQueryStats:
    """Cost breakdown of a lookup batch, as parallel arrays.

    The struct-of-arrays counterpart of :class:`QueryStats`: entry
    ``i`` of every array describes the lookup of ``keys[i]``, in the
    caller's query order.  ``values[i]`` is meaningful only where
    ``found[i]`` is True (misses store 0).
    """

    keys: np.ndarray          # int64, the queried keys
    found: np.ndarray         # bool
    values: np.ndarray        # int64 (0 where not found)
    levels: np.ndarray        # int64, nodes traversed (root hit = 1)
    search_steps: np.ndarray  # int64, in-node probes

    def __post_init__(self) -> None:
        n = self.keys.size
        for name in ("found", "values", "levels", "search_steps"):
            if getattr(self, name).size != n:
                raise IndexStateError(f"BatchQueryStats.{name} must parallel keys")

    @property
    def n_queries(self) -> int:
        return int(self.keys.size)

    def __len__(self) -> int:
        return self.n_queries

    @property
    def hit_rate(self) -> float:
        return float(np.mean(self.found)) if self.keys.size else 0.0

    def simulated_ns(self, constants: CostConstants | None = None) -> np.ndarray:
        """Per-query deterministic latencies under the cost model."""
        consts = constants or CostConstants()
        return consts.query_ns_batch(self.levels, self.search_steps)

    def stat(self, i: int) -> QueryStats:
        """The *i*-th lookup as a scalar :class:`QueryStats`."""
        found = bool(self.found[i])
        return QueryStats(
            key=int(self.keys[i]),
            found=found,
            value=int(self.values[i]) if found else None,
            levels=int(self.levels[i]),
            search_steps=int(self.search_steps[i]),
        )

    def to_list(self) -> list[QueryStats]:
        """Scalar :class:`QueryStats` objects, in query order."""
        return [self.stat(i) for i in range(self.n_queries)]

    @classmethod
    def from_query_stats(cls, stats: Sequence[QueryStats]) -> "BatchQueryStats":
        """Pack scalar lookups into the array form."""
        return cls(
            keys=np.asarray([s.key for s in stats], dtype=np.int64),
            found=np.asarray([s.found for s in stats], dtype=bool),
            values=np.asarray(
                [s.value if s.value is not None else 0 for s in stats], dtype=np.int64
            ),
            levels=np.asarray([s.levels for s in stats], dtype=np.int64),
            search_steps=np.asarray([s.search_steps for s in stats], dtype=np.int64),
        )


def _as_query_array(keys: np.ndarray | list) -> np.ndarray:
    """Normalise a query batch to a contiguous int64 array."""
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise IndexStateError("query keys must be one-dimensional")
    return np.ascontiguousarray(arr, dtype=np.int64)


def alloc_batch_outputs(
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Zeroed ``(found, values, levels, search_steps)`` output arrays.

    The scatter targets every vectorised ``lookup_many`` writes into;
    shared so each backend allocates the :class:`BatchQueryStats`
    parallel arrays identically.
    """
    return (
        np.zeros(n, dtype=bool),
        np.zeros(n, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
    )


def _as_batch_kv(
    keys: np.ndarray | list,
    values: np.ndarray | list | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Normalise a write batch to parallel contiguous int64 arrays.

    Values default to the keys; a shape mismatch raises.  Shared by
    every batched write entry point (indexes, router, service).
    """
    arr = _as_query_array(keys)
    if values is None:
        return arr, arr
    vals = np.ascontiguousarray(np.asarray(values), dtype=np.int64)
    if vals.shape != arr.shape:
        raise IndexStateError("values must parallel keys")
    return arr, vals


def dedupe_last_wins(
    keys: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Sort a key/value run keeping the last occurrence of each key.

    The batch-order last-wins semantics of sequential ``insert`` calls,
    as sorted unique arrays ready for a bulk ``build`` or sorted merge
    — shared by the bulk-ingest paths, the router's empty-shard
    materialisation and the service's merge path.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    sorted_vals = values[order]
    last = np.ones(sorted_keys.size, dtype=bool)
    last[:-1] = sorted_keys[:-1] != sorted_keys[1:]
    return sorted_keys[last], sorted_vals[last]


def group_runs(values: np.ndarray) -> list[np.ndarray]:
    """Index groups of equal entries in *values* (stable within groups).

    The grouped-frontier idiom shared by every tree backend's batch
    routing: one stable argsort splits a slot-assignment array into
    per-slot index runs, each preserving the input order.  Returns an
    empty list for empty input.
    """
    if values.size == 0:
        return []
    order = np.argsort(values, kind="stable")
    run_starts = np.nonzero(np.diff(values[order]))[0] + 1
    return np.split(order, run_starts)


def _range_from_sorted_arrays(
    keys: np.ndarray, values: np.ndarray, low: int, high: int
) -> list[tuple[int, int]]:
    """Range scan over parallel sorted arrays (shared by the
    array-backed indexes' ``range_query`` implementations)."""
    lo = int(np.searchsorted(keys, int(low), side="left"))
    hi = int(np.searchsorted(keys, int(high), side="right"))
    return list(zip(keys[lo:hi].tolist(), values[lo:hi].tolist()))


#: Arrays at or above this size are extracted into the buffer list by
#: :meth:`LearnedIndex.export_buffers` instead of travelling inside the
#: pickle payload.  Small per-node arrays (a handful of slots) stay in
#: the payload: extracting thousands of tiny buffers would cost more in
#: bookkeeping than the copy it avoids.
SHM_MIN_BUFFER_BYTES = 4096

_BUFFER_TAG = "repro-index-buffer"


class _BufferExtractor(pickle.Pickler):
    """Pickler that swaps large numpy arrays out of the stream.

    Every array of at least *min_bytes* is appended to :attr:`buffers`
    and replaced by a persistent id, so the resulting payload is the
    index's *structure* (node objects, scalars, small arrays) while the
    heavy struct-of-arrays buffers can be published out-of-band — e.g.
    into a shared-memory segment that worker processes attach zero-copy
    (:mod:`repro.serving.shm`).  Arrays are deduplicated by identity:
    a buffer shared between a node object and a flat compiled view is
    extracted once and re-shared on attach.
    """

    def __init__(self, file, min_bytes: int):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.buffers: list[np.ndarray] = []
        self._refs: dict[int, int] = {}
        self._min_bytes = int(min_bytes)

    def persistent_id(self, obj):  # noqa: D102 (pickle hook)
        if (
            isinstance(obj, np.ndarray)
            and obj.dtype != object
            and obj.nbytes >= self._min_bytes
        ):
            ref = self._refs.get(id(obj))
            if ref is None:
                ref = len(self.buffers)
                self._refs[id(obj)] = ref
                self.buffers.append(obj)
            return (_BUFFER_TAG, ref)
        return None


class _BufferAttacher(pickle.Unpickler):
    """Unpickler that resolves persistent ids against a buffer list."""

    def __init__(self, file, buffers: Sequence[np.ndarray]):
        super().__init__(file)
        self._buffers = buffers

    def persistent_load(self, pid):  # noqa: D102 (pickle hook)
        tag, ref = pid
        if tag != _BUFFER_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._buffers[ref]


def attach_from_buffers(
    payload: bytes, buffers: Sequence[np.ndarray]
) -> "LearnedIndex":
    """Rebuild an index from :meth:`LearnedIndex.export_buffers` output.

    *buffers* may be the original arrays, or views of the same bytes in
    a different address space (the shared-memory serving path); the
    reconstructed index answers lookups bit-identically either way.
    """
    index = _BufferAttacher(io.BytesIO(payload), buffers).load()
    if not isinstance(index, LearnedIndex):
        raise IndexStateError(
            f"payload decoded to {type(index).__name__}, not a LearnedIndex"
        )
    return index


def prepare_key_values(
    keys: np.ndarray | list,
    values: np.ndarray | list | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate keys and produce the parallel value array.

    Values default to the keys themselves (the evaluation only needs a
    payload to verify lookups return the right record).
    """
    arr = validate_keys(keys)
    if values is None:
        vals = arr.copy()
    else:
        vals = np.asarray(values, dtype=np.int64)
        if vals.shape != arr.shape:
            raise IndexStateError("values must parallel keys")
    return arr, vals


class LearnedIndex(ABC):
    """Abstract base class for all indexes in :mod:`repro.indexes`.

    Concrete classes implement point lookups with cost accounting,
    plus (for the updatable indexes) inserts.  The structural
    inspection hooks (:meth:`height`, :meth:`node_count`,
    :meth:`key_level`, :meth:`size_bytes`) power the paper's
    promoted-data / node-reduction / storage metrics.
    """

    #: Human-readable index family name, e.g. "lipp".
    name: str = "abstract"

    # ------------------------------------------------------------------
    # Construction and updates
    # ------------------------------------------------------------------
    @classmethod
    @abstractmethod
    def build(cls, keys: np.ndarray | list, values: np.ndarray | list | None = None) -> "LearnedIndex":
        """Bulk-load the index from sorted unique *keys*."""

    @abstractmethod
    def insert(self, key: int, value: int) -> None:
        """Insert one key (indexes without update support raise)."""

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @abstractmethod
    def lookup_stats(self, key: int) -> QueryStats:
        """Point lookup returning the full cost breakdown."""

    def lookup(self, key: int) -> int | None:
        """Point lookup returning the value, or None if absent."""
        return self.lookup_stats(key).value

    def lookup_strict(self, key: int) -> int:
        """Point lookup that raises :class:`KeyNotFoundError` on a miss."""
        stats = self.lookup_stats(key)
        if not stats.found:
            raise KeyNotFoundError(key)
        assert stats.value is not None
        return stats.value

    def __contains__(self, key: int) -> bool:
        return self.lookup_stats(int(key)).found

    def range_query(self, low: int, high: int) -> list[tuple[int, int]]:
        """All (key, value) pairs with ``low <= key <= high``.

        Generic implementation: walk :meth:`iter_keys` (ascending) and
        resolve each in-range key's value, stopping past *high*.
        Backends with an ordered physical layout override this with a
        direct scan; the serving layer's block cache and range path
        rely on every backend answering it.
        """
        low = int(low)
        high = int(high)
        out: list[tuple[int, int]] = []
        for key in self.iter_keys():
            if key > high:
                break
            if key >= low:
                out.append((key, self.lookup_strict(key)))
        return out

    # ------------------------------------------------------------------
    # Structure inspection
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def n_keys(self) -> int:
        """Number of (real) keys currently stored."""

    @abstractmethod
    def height(self) -> int:
        """Number of levels; a root-only index has height 1."""

    @abstractmethod
    def node_count(self) -> int:
        """Total number of nodes (inner + leaf/data)."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Modelled storage footprint (keys, values, slots, pointers)."""

    @abstractmethod
    def key_level(self, key: int) -> int:
        """Level (root = 1) of the node in which *key* is stored."""

    @abstractmethod
    def iter_keys(self) -> Iterator[int]:
        """Yield every stored key in ascending order."""

    # ------------------------------------------------------------------
    # Batch queries and updates (the workload drivers' entry points)
    # ------------------------------------------------------------------
    def lookup_many(self, keys: np.ndarray | list) -> BatchQueryStats:
        """Batched point lookups with full cost accounting.

        Returns one :class:`BatchQueryStats` positionally parallel to
        *keys*.  This generic implementation loops over
        :meth:`lookup_stats`; every concrete backend overrides it with
        a vectorised version whose results are exactly identical.
        """
        arr = _as_query_array(keys)
        return BatchQueryStats.from_query_stats(
            [self.lookup_stats(int(k)) for k in arr]
        )

    def insert_many(
        self,
        keys: np.ndarray | list,
        values: np.ndarray | list | None = None,
    ) -> None:
        """Insert a batch of keys (values default to the keys).

        Semantically equivalent to calling :meth:`insert` per key in
        batch order (duplicates within the batch: last value wins).
        Backends whose layout allows it override this with a vectorised
        implementation; structural indexes keep the per-key loop but
        hide it behind this entry point so drivers stay loop-free.
        """
        arr = np.asarray(keys)
        if values is None:
            vals = arr
        else:
            vals = np.asarray(values)
            if vals.shape != arr.shape:
                raise IndexStateError("values must parallel keys")
        for key, value in zip(arr.tolist(), vals.tolist()):
            self.insert(int(key), int(value))

    def bulk_insert_many(
        self,
        keys: np.ndarray | list,
        values: np.ndarray | list | None = None,
    ) -> None:
        """Bulk-ingest a write batch (values default to the keys).

        *Content*-equivalent to :meth:`insert_many` — duplicates within
        the batch resolve last-wins, keys already stored are
        overwritten, and afterwards every batch key looks up to its
        batch value with all other stored keys untouched.  The tree
        backends override this with sorted-merge implementations that
        amortise structural maintenance across the whole batch (bulk
        rebuilds of the touched nodes/subtrees instead of one
        root-to-leaf descent per key), so the *physical layout* after a
        bulk ingest may legitimately differ from the per-key loop's —
        typically it is the fresher, better-packed structure a bulk
        load would produce.  Lookup results (found/value) are exactly
        identical; ``tests/indexes/test_bulk_insert.py`` asserts this
        parity per backend.

        This generic implementation simply delegates to
        :meth:`insert_many`, so a new backend is correct before it is
        fast.
        """
        self.insert_many(keys, values)

    # ------------------------------------------------------------------
    # Buffer export / attach (the process-serving handoff)
    # ------------------------------------------------------------------
    def export_buffers(
        self, min_bytes: int = SHM_MIN_BUFFER_BYTES
    ) -> tuple[bytes, list[np.ndarray]]:
        """Split the index into ``(payload, buffers)`` for re-attach.

        *payload* is a pickle of the index structure with every numpy
        array of at least *min_bytes* replaced by a reference into
        *buffers* (the struct-of-arrays key/value/prefix buffers that
        dominate an index's footprint).  :func:`attach_from_buffers`
        inverts the split — in this process, or in a worker process
        that maps the buffers from shared memory without copying them.
        The exported index is untouched and stays fully usable.
        """
        stream = io.BytesIO()
        extractor = _BufferExtractor(stream, min_bytes)
        # Pickling recurses through linked node structures (e.g. the
        # B+-tree leaf chain), so the depth scales with node count —
        # size the limit to the index, not the interpreter default.
        # Unpickling is a stack machine and needs no such bump.
        limit = sys.getrecursionlimit()
        needed = max(limit, 1000 + 8 * max(self.node_count(), 0))
        sys.setrecursionlimit(needed)
        try:
            extractor.dump(self)
        finally:
            sys.setrecursionlimit(limit)
        return stream.getvalue(), extractor.buffers

    # ------------------------------------------------------------------
    # Convenience batch helpers used by the evaluation harness
    # ------------------------------------------------------------------
    def key_levels(self, keys: np.ndarray) -> np.ndarray:
        """Vector of :meth:`key_level` over *keys*."""
        return np.asarray([self.key_level(int(k)) for k in keys], dtype=np.int64)

    def batch_stats(self, keys: np.ndarray) -> list[QueryStats]:
        """:meth:`lookup_stats` over *keys* (order preserved).

        Kept for API compatibility; routed through the vectorised
        :meth:`lookup_many`.
        """
        return self.lookup_many(keys).to_list()

    def verify_against(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Assert every (key, value) pair is retrievable — test helper.

        Runs through the batch engine, so verification itself exercises
        the fast path instead of a per-key Python loop.
        """
        batch = self.lookup_many(np.asarray(keys))
        expected = np.asarray(values, dtype=np.int64)
        bad = ~batch.found | (batch.values != expected)
        if np.any(bad):
            i = int(np.argmax(bad))
            got = int(batch.values[i]) if batch.found[i] else None
            raise IndexStateError(
                f"{self.name}: lookup({int(batch.keys[i])}) returned {got}, "
                f"expected {int(expected[i])}"
            )
