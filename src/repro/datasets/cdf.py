"""CDF inspection utilities (reproduces Fig. 5 and quantifies
"dataset hardness").

The paper motivates its dataset choice with CDF plots: global shape
(Figs. 5a-5d) and a zoomed window of one thousand keys starting at the
100-millionth point (Figs. 5e-5h).  The helpers here compute the same
views numerically, plus two hardness measures used in tests and
benches: the R² of a straight-line fit (global/local linearity) and
the number of ε-bounded PLA segments needed to cover the CDF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import InvalidKeysError
from ..core.loss import fit_and_loss
from ..indexes.pgm import build_pla_segments

__all__ = [
    "empirical_cdf",
    "zoomed_window",
    "linearity_r2",
    "local_linearity_profile",
    "pla_segment_count",
    "CdfSummary",
    "summarize",
]


def empirical_cdf(keys: np.ndarray, points: int = 256) -> tuple[np.ndarray, np.ndarray]:
    """``(key_quantiles, cdf_values)`` subsampled to *points* entries."""
    keys = np.asarray(keys)
    if keys.size == 0:
        raise InvalidKeysError("keys must be non-empty")
    idx = np.linspace(0, keys.size - 1, min(points, keys.size)).astype(np.int64)
    return keys[idx], idx.astype(np.float64) / max(keys.size - 1, 1)


def zoomed_window(keys: np.ndarray, start_fraction: float = 0.5, width: int = 1000) -> np.ndarray:
    """A *width*-key window starting at *start_fraction* of the data.

    Fig. 5e-5h zoom from the 100-millionth key (fraction 0.5 of 200M)
    across the next thousand points.
    """
    keys = np.asarray(keys)
    start = int(keys.size * start_fraction)
    start = min(max(start, 0), max(keys.size - 2, 0))
    return keys[start : min(start + width, keys.size)]


def linearity_r2(keys: np.ndarray) -> float:
    """R² of the best straight line through the CDF (1 = perfectly linear)."""
    keys = np.asarray(keys, dtype=np.float64)
    n = keys.size
    if n < 3:
        return 1.0
    ranks = np.arange(n, dtype=np.float64)
    __, loss = fit_and_loss(keys, ranks)
    total = float(np.sum((ranks - ranks.mean()) ** 2))
    if total == 0.0:
        return 1.0
    return max(0.0, 1.0 - loss / total)


def local_linearity_profile(
    keys: np.ndarray, window: int = 1000, samples: int = 32
) -> np.ndarray:
    """R² of straight-line fits over evenly spaced local windows."""
    keys = np.asarray(keys)
    if keys.size <= window:
        return np.asarray([linearity_r2(keys)])
    starts = np.linspace(0, keys.size - window, samples).astype(np.int64)
    return np.asarray([linearity_r2(keys[s : s + window]) for s in starts])


def pla_segment_count(keys: np.ndarray, epsilon: int = 32) -> int:
    """ε-bounded PLA segments needed to cover the CDF (hardness proxy).

    Harder distributions need more segments — OSM/Genome analogues
    should report substantially more than Facebook/Covid analogues.
    """
    return len(build_pla_segments(np.asarray(keys, dtype=np.int64), epsilon))


@dataclass(frozen=True)
class CdfSummary:
    """Hardness summary of one dataset (used in Fig. 5's bench)."""

    name: str
    n: int
    global_r2: float
    local_r2_mean: float
    local_r2_min: float
    pla_segments: int


def summarize(name: str, keys: np.ndarray, window: int = 1000) -> CdfSummary:
    """Compute the Fig. 5 shape summary for one dataset."""
    profile = local_linearity_profile(keys, window=window)
    return CdfSummary(
        name=name,
        n=int(np.asarray(keys).size),
        global_r2=linearity_r2(keys),
        local_r2_mean=float(profile.mean()),
        local_r2_min=float(profile.min()),
        pla_segments=pla_segment_count(keys),
    )
