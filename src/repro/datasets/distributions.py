"""Distribution building blocks for the synthetic dataset generators.

The paper evaluates on four real 200M-key datasets whose raw files are
not redistributable (DESIGN.md §3).  What the smoothing machinery
actually responds to is the *shape* of the key CDF — global linearity,
local linearity, cluster structure, block/step structure — so the
generators in :mod:`repro.datasets.synthetic` compose the primitives
here to match each dataset's shape class.

All primitives take a :class:`numpy.random.Generator` and return
sorted, unique ``int64`` arrays.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import InvalidKeysError

__all__ = [
    "gap_process",
    "cluster_mixture",
    "block_process",
    "dedupe_to_size",
]

MAX_KEY = np.iinfo(np.int64).max // 4


def dedupe_to_size(raw: np.ndarray, n: int) -> np.ndarray:
    """Sort, deduplicate, and reduce *raw* to exactly *n* keys.

    If more than *n* unique keys exist, an evenly spaced subsample
    keeps the distribution shape (the same trick the paper uses to
    downsample: dropping every j-th key).  Raises if fewer than *n*
    unique keys are available — callers should oversample.
    """
    unique = np.unique(raw.astype(np.int64))
    if unique.size < n:
        raise InvalidKeysError(
            f"generator produced {unique.size} unique keys, need {n}; oversample more"
        )
    if unique.size == n:
        return unique
    positions = np.linspace(0, unique.size - 1, n).astype(np.int64)
    return unique[positions]


def gap_process(
    rng: np.random.Generator,
    n: int,
    mean_gap: float,
    heavy_tail: float = 0.0,
    start: int = 1_000_000,
) -> np.ndarray:
    """Keys as a cumulative sum of i.i.d. positive gaps.

    With ``heavy_tail == 0`` the gaps are geometric (a discretised
    Poisson arrival process — globally *and* locally near-linear CDF,
    like the Covid tweet ids).  A positive *heavy_tail* mixes in
    occasional lognormal jumps, producing local variability around a
    linear global shape (like the Facebook user ids).
    """
    gaps = rng.geometric(1.0 / mean_gap, size=n).astype(np.float64)
    if heavy_tail > 0.0:
        jump_mask = rng.random(n) < heavy_tail
        jumps = rng.lognormal(mean=np.log(mean_gap * 20), sigma=1.0, size=n)
        gaps = np.where(jump_mask, gaps + jumps, gaps)
    keys = start + np.cumsum(gaps).astype(np.int64)
    if keys[-1] >= MAX_KEY:
        raise InvalidKeysError("gap process overflowed the key range; lower mean_gap")
    return dedupe_to_size(keys, n)


def cluster_mixture(
    rng: np.random.Generator,
    n: int,
    n_clusters: int,
    span: int = 2**55,
    sigma: float = 2.0,
    oversample: float = 1.6,
) -> np.ndarray:
    """Keys from a mixture of lognormal clusters across a huge range.

    Cluster centres are uniform over *span*; within-cluster offsets are
    lognormal, so the CDF is a staircase of steep ramps — globally
    non-linear with strong local structure, the shape class of the OSM
    cell ids the paper calls a "hard" dataset.
    """
    if n_clusters < 1:
        raise InvalidKeysError("need at least one cluster")
    total = int(n * oversample)
    sizes = rng.multinomial(total, np.full(n_clusters, 1.0 / n_clusters))
    centers = np.sort(rng.integers(0, span, size=n_clusters))
    parts = []
    for center, size in zip(centers, sizes):
        if size == 0:
            continue
        offsets = rng.lognormal(mean=8.0, sigma=sigma, size=size)
        parts.append(center + offsets.astype(np.int64))
    return dedupe_to_size(np.concatenate(parts), n)


def block_process(
    rng: np.random.Generator,
    n: int,
    block_size_mean: int,
    intra_gap_mean: float,
    inter_gap_mean: float,
    oversample: float = 1.4,
) -> np.ndarray:
    """Keys in dense blocks separated by large jumps.

    Inside a block, consecutive keys differ by small geometric gaps;
    blocks are separated by much larger gaps.  The local CDF looks like
    a staircase — the shape class of the Genome loci pairs, the paper's
    hardest local distribution.
    """
    total = int(n * oversample)
    keys = []
    current = 1_000_000
    produced = 0
    while produced < total:
        block_len = max(2, int(rng.poisson(block_size_mean)))
        gaps = rng.geometric(1.0 / intra_gap_mean, size=block_len)
        block = current + np.cumsum(gaps)
        keys.append(block)
        produced += block_len
        current = int(block[-1]) + int(rng.geometric(1.0 / inter_gap_mean))
        if current >= MAX_KEY:
            raise InvalidKeysError("block process overflowed the key range")
    return dedupe_to_size(np.concatenate(keys), n)
