"""Dataset access: caching, downsampling, and scale management.

The paper's scalability study (Fig. 9) downsamples 200M-key datasets
to 12.5M/25M/50M/100M by "eliminating every j-th key from the sorted
datasets"; :func:`downsample` reproduces that exact mechanism.  A
small in-process cache keeps repeated experiment runs cheap.
"""

from __future__ import annotations

import os

import numpy as np

from ..core.exceptions import InvalidKeysError
from .synthetic import DATASETS, DEFAULT_SEED, generate

__all__ = ["load", "downsample", "cardinality_series", "default_scale", "clear_cache"]

_CACHE: dict[tuple[str, int, int], np.ndarray] = {}

#: Environment variable overriding the default experiment scale.
SCALE_ENV_VAR = "REPRO_SCALE"
_DEFAULT_SCALE = 20_000


def default_scale() -> int:
    """Default keys-per-dataset for experiments.

    The paper uses 200M keys; pure-Python indexes are ~10^3 times
    slower than the C++ originals, so the default is scaled down by
    the same factor.  Override with the ``REPRO_SCALE`` env var.
    """
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return _DEFAULT_SCALE
    try:
        value = int(raw)
    except ValueError:
        raise InvalidKeysError(f"{SCALE_ENV_VAR} must be an integer, got {raw!r}") from None
    if value < 100:
        raise InvalidKeysError(f"{SCALE_ENV_VAR} must be >= 100, got {value}")
    return value


def load(name: str, n: int | None = None, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Load (and cache) dataset *name* at *n* keys.

    The returned array is read-only; copy before mutating.
    """
    if n is None:
        n = default_scale()
    cache_key = (name, int(n), int(seed))
    if cache_key not in _CACHE:
        keys = generate(name, int(n), seed)
        keys.setflags(write=False)
        _CACHE[cache_key] = keys
    return _CACHE[cache_key]


def clear_cache() -> None:
    """Drop all cached datasets (tests use this for isolation)."""
    _CACHE.clear()


def downsample(keys: np.ndarray, target: int) -> np.ndarray:
    """Reduce *keys* to ~*target* entries by dropping every j-th key.

    Mirrors the paper's Fig. 9 procedure: to remove ``n/j`` points,
    delete every j-th key of the sorted dataset, repeating until the
    target is reached.  Keeps the distribution's shape intact.
    """
    if target < 1:
        raise InvalidKeysError("target must be >= 1")
    out = np.asarray(keys)
    while out.size > target:
        excess = out.size - target
        j = max(2, out.size // max(excess, 1))
        mask = np.ones(out.size, dtype=bool)
        mask[j - 1 :: j] = False
        if mask.all():
            break
        out = out[mask]
    return out


def cardinality_series(
    name: str,
    fractions: tuple[float, ...] = (0.0625, 0.125, 0.25, 0.5, 1.0),
    full_size: int | None = None,
    seed: int = DEFAULT_SEED,
) -> dict[int, np.ndarray]:
    """The Fig. 9 cardinality ladder for one dataset.

    The paper's ladder is 12.5M/25M/50M/100M/200M — i.e. fractions
    1/16 … 1 of the full size; each smaller set is obtained by
    downsampling the full one.
    """
    full = load(name, full_size, seed)
    out: dict[int, np.ndarray] = {}
    for fraction in fractions:
        target = max(10, int(full.size * fraction))
        out[target] = downsample(full, target)
    return out
