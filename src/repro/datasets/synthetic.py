"""Synthetic analogues of the paper's four evaluation datasets.

Paper datasets (Section 6.1) → generators here:

==========  ==========================  =====================================
Paper       Shape class                 Generator
==========  ==========================  =====================================
Facebook    globally linear, local      :func:`facebook` — geometric gaps with
            variability ("easy")        occasional lognormal jumps
Covid       linear globally *and*       :func:`covid` — pure geometric gap
            locally ("easy")            process (discretised Poisson arrivals)
OSM         globally non-linear,        :func:`osm` — lognormal cluster
            clustered ("hard")          mixture over a 2^55 key span
Genome      linear globally, step-like  :func:`genome` — dense blocks split by
            locally ("hard")            large inter-block jumps
==========  ==========================  =====================================

Every generator is deterministic given ``(n, seed)`` and returns
sorted unique ``int64`` keys of exactly ``n`` entries.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.exceptions import InvalidKeysError
from .distributions import block_process, cluster_mixture, gap_process

__all__ = ["facebook", "covid", "osm", "genome", "DATASETS", "generate", "FIG2_TOY_KEYS"]

DEFAULT_SEED = 2024

#: A 10-key toy set reproducing the running example of Fig. 2 / Fig. 3 /
#: Fig. 4 / Table 2 (the paper does not publish the exact keys; this
#: set matches the published losses: original SSE ≈ 8.36 vs the paper's
#: 8.33, smoothed-at-α=0.5 combined SSE ≈ 2.21 vs the paper's 2.29).
FIG2_TOY_KEYS = np.asarray([2, 6, 7, 9, 10, 11, 13, 23, 28, 29], dtype=np.int64)


def _check_n(n: int) -> None:
    if n < 10:
        raise InvalidKeysError(f"dataset size must be >= 10, got {n}")


def facebook(n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Facebook-like user ids: near-linear CDF with local jump noise."""
    _check_n(n)
    rng = np.random.default_rng(seed)
    return gap_process(rng, n, mean_gap=40.0, heavy_tail=0.02)


def covid(n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Covid-like tweet ids: near-linear CDF at global and local scale."""
    _check_n(n)
    rng = np.random.default_rng(seed + 1)
    return gap_process(rng, n, mean_gap=1000.0, heavy_tail=0.0)


def osm(n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """OSM-like cell ids: heavily clustered, globally non-linear CDF."""
    _check_n(n)
    rng = np.random.default_rng(seed + 2)
    n_clusters = max(4, n // 2000)
    return cluster_mixture(rng, n, n_clusters=n_clusters, sigma=2.2)


def genome(n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Genome-like loci: dense blocks with large inter-block jumps."""
    _check_n(n)
    rng = np.random.default_rng(seed + 3)
    return block_process(
        rng,
        n,
        block_size_mean=200,
        intra_gap_mean=3.0,
        inter_gap_mean=2_000_000.0,
    )


DATASETS: dict[str, Callable[[int, int], np.ndarray]] = {
    "facebook": facebook,
    "covid": covid,
    "osm": osm,
    "genome": genome,
}

#: The paper's dataset difficulty classes (Section 6.1).
EASY_DATASETS = ("facebook", "covid")
HARD_DATASETS = ("osm", "genome")


def generate(name: str, n: int, seed: int = DEFAULT_SEED) -> np.ndarray:
    """Generate dataset *name* with *n* keys (registry front-end)."""
    try:
        maker = DATASETS[name]
    except KeyError:
        raise InvalidKeysError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        ) from None
    return maker(n, seed)
