"""Synthetic dataset analogues of the paper's evaluation data, plus
CDF inspection and downsampling utilities."""

from .cdf import (
    CdfSummary,
    empirical_cdf,
    linearity_r2,
    local_linearity_profile,
    pla_segment_count,
    summarize,
    zoomed_window,
)
from .loader import cardinality_series, clear_cache, default_scale, downsample, load
from .synthetic import (
    DATASETS,
    EASY_DATASETS,
    FIG2_TOY_KEYS,
    HARD_DATASETS,
    covid,
    facebook,
    generate,
    genome,
    osm,
)

__all__ = [
    "CdfSummary",
    "DATASETS",
    "EASY_DATASETS",
    "FIG2_TOY_KEYS",
    "HARD_DATASETS",
    "cardinality_series",
    "clear_cache",
    "covid",
    "default_scale",
    "downsample",
    "empirical_cdf",
    "facebook",
    "generate",
    "genome",
    "linearity_r2",
    "load",
    "local_linearity_profile",
    "osm",
    "pla_segment_count",
    "summarize",
    "zoomed_window",
]
