"""Mixed read/write workload driver for the sharded serving layer.

Feeds an :class:`~repro.serving.service.IndexService` a stream of
batched operations — uniform or Zipf-skewed point reads over the
stored keys, interleaved with writes of fresh keys — entirely through
the batch APIs, and reports wall-clock throughput next to the
simulated-ns latency percentiles the service accumulates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.exceptions import InvalidKeysError
from .generators import sample_queries, zipf_queries

__all__ = ["ServiceWorkloadReport", "run_service_workload"]


@dataclass(frozen=True)
class ServiceWorkloadReport:
    """Outcome of one driven workload against an IndexService.

    ``worker_restarts`` counts executor worker respawns over the run
    (always 0 for serial/thread executors) — a nonzero value means the
    process backend rode through crashes or timeouts mid-workload.
    """

    n_reads: int
    n_writes: int
    n_batches: int
    read_hit_rate: float
    wall_seconds: float
    avg_simulated_ns: float
    worker_restarts: int = 0

    @property
    def n_ops(self) -> int:
        return self.n_reads + self.n_writes

    @property
    def ops_per_second(self) -> float:
        return self.n_ops / self.wall_seconds if self.wall_seconds > 0 else 0.0


def run_service_workload(
    service,
    keys: np.ndarray,
    n_ops: int,
    read_fraction: float = 0.9,
    batch_size: int = 1024,
    distribution: str = "uniform",
    seed: int = 0,
    on_batch: Callable[[int], None] | None = None,
) -> ServiceWorkloadReport:
    """Drive *service* with ``n_ops`` mixed operations in batches.

    Each batch is split ``read_fraction`` / ``1 - read_fraction``
    between point lookups (sampled from *keys*, uniformly or
    Zipf-skewed) and inserts of fresh keys drawn above the stored key
    range — the fresh keys land in the service's write buffers and are
    read back by later batches once sampled in (buffered reads are
    part of what the driver exercises).

    *on_batch*, when given, is called with the 0-based batch number
    after each batch completes — the hook the serve CLI uses to emit
    periodic metrics snapshots mid-workload.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise InvalidKeysError("read_fraction must be in [0, 1]")
    if distribution not in ("uniform", "zipf"):
        raise InvalidKeysError("distribution must be 'uniform' or 'zipf'")
    keys = np.asarray(keys, dtype=np.int64)
    rng = np.random.default_rng(seed)
    known = keys
    fresh_base = int(keys[-1]) + 1
    n_reads = 0
    n_writes = 0
    n_batches = 0
    hits = 0
    total_ns = 0.0
    start = time.perf_counter()
    remaining = int(n_ops)
    while remaining > 0:
        batch = min(batch_size, remaining)
        n_read = int(round(batch * read_fraction))
        n_write = batch - n_read
        if n_read:
            if distribution == "zipf":
                queries = zipf_queries(known, n_read, rng)
            else:
                queries = sample_queries(known, n_read, rng)
            stats = service.lookup_many(queries)
            hits += int(np.count_nonzero(stats.found))
            total_ns += float(stats.simulated_ns(service.constants).sum())
            n_reads += n_read
        if n_write:
            span = max(int(known[-1] - known[0]), 1)
            fresh = fresh_base + rng.integers(0, span, n_write)
            service.insert_many(fresh)
            known = np.concatenate([known, np.unique(fresh)])
            n_writes += n_write
        if on_batch is not None:
            on_batch(n_batches)
        n_batches += 1
        remaining -= batch
    wall = time.perf_counter() - start
    restarts = getattr(service, "worker_restarts", lambda: 0)()
    return ServiceWorkloadReport(
        n_reads=n_reads,
        n_writes=n_writes,
        n_batches=n_batches,
        read_hit_rate=hits / n_reads if n_reads else 0.0,
        wall_seconds=wall,
        avg_simulated_ns=total_ns / n_reads if n_reads else 0.0,
        worker_restarts=int(restarts),
    )
