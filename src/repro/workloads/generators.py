"""Query and insertion workload generators (Section 6.1).

The paper evaluates two workloads: read-only (build on the full key
set, optimise, query) and read-write (build on a random half, optimise
once, then insert the other half in batches of ``0.1 n`` with queries
after each batch).  Queries focus on the *promoted* keys — the data
CSV moved to upper levels — because that is where the method acts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import InvalidKeysError

__all__ = ["ReadWriteSplit", "sample_queries", "split_read_write", "zipf_queries"]


def sample_queries(
    keys: np.ndarray,
    n_queries: int,
    rng: np.random.Generator,
    replace: bool = True,
) -> np.ndarray:
    """Uniformly sample query keys from *keys*."""
    keys = np.asarray(keys)
    if keys.size == 0:
        raise InvalidKeysError("cannot sample queries from an empty key set")
    if not replace and n_queries > keys.size:
        n_queries = int(keys.size)
    return rng.choice(keys, size=n_queries, replace=replace)


def zipf_queries(
    keys: np.ndarray,
    n_queries: int,
    rng: np.random.Generator,
    exponent: float = 1.2,
) -> np.ndarray:
    """Skewed (Zipf-rank) query sample — used by the SALI experiments,
    whose probability model needs a hot set to identify."""
    keys = np.asarray(keys)
    if keys.size == 0:
        raise InvalidKeysError("cannot sample queries from an empty key set")
    ranks = rng.zipf(exponent, size=n_queries)
    ranks = np.minimum(ranks - 1, keys.size - 1)
    # Shuffle the rank→key mapping so the hot set is not simply the
    # smallest keys (deterministic per rng state).
    permutation = rng.permutation(keys.size)
    return keys[permutation[ranks]]


@dataclass(frozen=True)
class ReadWriteSplit:
    """The paper's read-write workload: half bulk-loaded, half inserted.

    Attributes:
        build_keys: random half used for the initial bulk load (sorted).
        batches: insertion batches, each of size ``batch_fraction * n``
            where ``n`` is the size of *build_keys* (the paper's 0.1n).
    """

    build_keys: np.ndarray
    batches: tuple[np.ndarray, ...]

    @property
    def total_inserts(self) -> int:
        return int(sum(b.size for b in self.batches))


def split_read_write(
    keys: np.ndarray,
    rng: np.random.Generator,
    batch_fraction: float = 0.1,
    n_batches: int = 5,
) -> ReadWriteSplit:
    """Split *keys* for the read-write workload.

    A random half becomes the bulk-load set; the other half is dealt
    into *n_batches* random batches of ``batch_fraction`` of the build
    size each (0.1n × 5 = the full second half, as in Fig. 10).
    """
    keys = np.asarray(keys)
    if keys.size < 4:
        raise InvalidKeysError("need at least 4 keys for a read-write split")
    shuffled = rng.permutation(keys)
    half = keys.size // 2
    build = np.sort(shuffled[:half])
    rest = shuffled[half:]
    batch_size = max(1, int(half * batch_fraction))
    batches = []
    for i in range(n_batches):
        chunk = rest[i * batch_size : (i + 1) * batch_size]
        if chunk.size == 0:
            break
        batches.append(chunk)
    return ReadWriteSplit(build_keys=build, batches=tuple(batches))
