"""Workload generators and drivers for the paper's two evaluation
protocols (read-only and read-write)."""

from .generators import ReadWriteSplit, sample_queries, split_read_write, zipf_queries
from .readonly import QueryProfile, profile_queries
from .readwrite import BatchObservation, run_insert_batches

__all__ = [
    "BatchObservation",
    "QueryProfile",
    "ReadWriteSplit",
    "profile_queries",
    "run_insert_batches",
    "sample_queries",
    "split_read_write",
    "zipf_queries",
]
