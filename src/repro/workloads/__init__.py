"""Workload generators and drivers for the paper's two evaluation
protocols (read-only and read-write)."""

from .generators import ReadWriteSplit, sample_queries, split_read_write, zipf_queries
from .readonly import QueryProfile, profile_queries
from .readwrite import BatchObservation, run_insert_batches
from .service_driver import ServiceWorkloadReport, run_service_workload

__all__ = [
    "BatchObservation",
    "QueryProfile",
    "ReadWriteSplit",
    "ServiceWorkloadReport",
    "profile_queries",
    "run_insert_batches",
    "run_service_workload",
    "sample_queries",
    "split_read_write",
    "zipf_queries",
]
